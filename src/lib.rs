//! # rtsm — Run-time Spatial Mapping for Heterogeneous MPSoCs
//!
//! A complete, from-scratch reproduction of *Hölzenspies, Hurink, Kuper,
//! Smit — "Run-time Spatial Mapping of Streaming Applications to a
//! Heterogeneous Multi-Processor System-on-Chip (MPSOC)", DATE 2008*.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`dataflow`] — cyclo-static dataflow modelling and analysis (phase
//!   vectors, repetition vectors, self-timed simulation, throughput,
//!   buffer sizing, latency, HSDF/MCR);
//! * [`platform`] — heterogeneous tiled MPSoC with a guaranteed-throughput
//!   mesh NoC, capacity-aware routing, occupancy ledger, and energy model;
//! * [`app`] — application models: Kahn process networks, QoS constraints,
//!   implementation libraries, and the paper's HIPERLAN/2 receiver;
//! * [`core`] — the paper's four-step run-time spatial mapper with
//!   iterative refinement;
//! * [`baselines`] — optimal (branch & bound), simulated-annealing,
//!   random, and greedy comparators;
//! * [`workloads`] — synthetic generators, constructed realistic DSP
//!   applications, and multi-application run-time scenarios.
//!
//! ## Quickstart
//!
//! ```
//! use rtsm::app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
//! use rtsm::core::mapper::{MapperConfig, SpatialMapper};
//! use rtsm::platform::paper::paper_platform;
//!
//! // The paper's case study: map a HIPERLAN/2 receiver onto the 3×3 MPSoC.
//! let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
//! let platform = paper_platform();
//! let result = SpatialMapper::new(MapperConfig::default())
//!     .map(&spec, &platform, &platform.initial_state())
//!     .expect("feasible");
//! assert_eq!(result.communication_hops, 7); // Table 2's final cost
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use rtsm_app as app;
pub use rtsm_baselines as baselines;
pub use rtsm_core as core;
pub use rtsm_dataflow as dataflow;
pub use rtsm_platform as platform;
pub use rtsm_workloads as workloads;
