//! # rtsm — Run-time Spatial Mapping for Heterogeneous MPSoCs
//!
//! A complete, from-scratch reproduction of *Hölzenspies, Hurink, Kuper,
//! Smit — "Run-time Spatial Mapping of Streaming Applications to a
//! Heterogeneous Multi-Processor System-on-Chip (MPSOC)", DATE 2008*.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`dataflow`] — cyclo-static dataflow modelling and analysis (phase
//!   vectors, repetition vectors, self-timed simulation, throughput,
//!   buffer sizing, latency, HSDF/MCR);
//! * [`platform`] — heterogeneous tiled MPSoC with a guaranteed-throughput
//!   mesh NoC, capacity-aware routing, occupancy ledger, and energy model;
//! * [`app`] — application models: Kahn process networks, QoS constraints,
//!   implementation libraries, and the paper's HIPERLAN/2 receiver;
//! * [`core`] — the paper's four-step run-time spatial mapper with
//!   iterative refinement, the workspace-wide
//!   [`MappingAlgorithm`](core::MappingAlgorithm) interface, and the
//!   handle-based [`RuntimeManager`](core::RuntimeManager) for
//!   multi-application lifecycles;
//! * [`baselines`] — optimal (branch & bound), simulated-annealing,
//!   random, and greedy comparators behind the same trait;
//! * [`workloads`] — synthetic generators, constructed realistic DSP
//!   applications, and scripted multi-application run-time scenarios;
//! * [`sim`] — a seeded discrete-event simulator driving the
//!   [`RuntimeManager`](core::RuntimeManager) with stochastic workloads
//!   (Poisson arrivals, exponential holding times, mode switches) and
//!   collecting long-horizon admission metrics into a serializable
//!   [`SimReport`](sim::SimReport);
//! * [`exp`] — the sharded experiment harness: declarative sweep
//!   matrices ([`ExperimentSpec`](exp::ExperimentSpec)) expanded into
//!   independent trials, fanned across a vendored worker pool, and
//!   sealed into byte-stable aggregate reports with Pareto fronts;
//! * [`obs`] — zero-dependency observability for the admission path:
//!   the [`Probe`](obs::Probe) trait with thread-local installation,
//!   span/counter instrumentation through mapper steps 1–4 and the
//!   transactional runtime, log2-bucketed
//!   [`LatencyHistogram`](obs::LatencyHistogram)s, and the ring-buffer
//!   [`FlightRecorder`](obs::FlightRecorder) with Chrome trace-event
//!   export. Probes never change behaviour: fixed-seed deterministic
//!   reports stay byte-identical with probes on or off.
//!
//! ## Quickstart
//!
//! The run-time flow of the paper (§1.3): a [`RuntimeManager`](core::RuntimeManager)
//! owns the occupancy ledger, admits applications by mapping them against
//! the *actual* current state, and releases their resources when they stop.
//!
//! ```
//! use rtsm::app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
//! use rtsm::core::{RuntimeManager, SpatialMapper};
//! use rtsm::platform::paper::paper_platform;
//!
//! // The paper's case study: the HIPERLAN/2 receiver on the 3×3 MPSoC.
//! let mut manager = RuntimeManager::new(paper_platform(), SpatialMapper::default());
//!
//! let handle = manager
//!     .start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34))
//!     .expect("feasible on the empty platform");
//! let app = manager.get(handle).unwrap();
//! assert_eq!(app.outcome.communication_hops, 7); // Table 2's final cost
//!
//! // A second receiver is rejected while the MONTIUMs are taken…
//! assert!(manager.start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34)).is_err());
//! // …and admitted once the first one stops.
//! manager.stop(handle).expect("running app stops");
//! assert!(manager.start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34)).is_ok());
//! ```
//!
//! ## Swapping the mapping algorithm
//!
//! Every mapper implements [`MappingAlgorithm`](core::MappingAlgorithm)
//! and returns the same [`MappingOutcome`](core::MappingOutcome), so the
//! manager (and the scenario replay in [`workloads`]) is generic over the
//! algorithm:
//!
//! ```
//! use rtsm::baselines::AnnealingMapper;
//! use rtsm::core::RuntimeManager;
//! use rtsm::platform::paper::paper_platform;
//! use rtsm::app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
//!
//! // Same lifecycle, simulated-annealing admission instead of the paper's
//! // heuristic.
//! let mut manager = RuntimeManager::new(paper_platform(), AnnealingMapper::default());
//! let handle = manager.start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34)).unwrap();
//! manager.stop(handle).unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use rtsm_app as app;
pub use rtsm_baselines as baselines;
pub use rtsm_core as core;
pub use rtsm_dataflow as dataflow;
pub use rtsm_exp as exp;
pub use rtsm_obs as obs;
pub use rtsm_platform as platform;
pub use rtsm_sim as sim;
pub use rtsm_workloads as workloads;
