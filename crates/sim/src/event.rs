//! Virtual-time events and the deterministic event queue.
//!
//! Time is a dimensionless `u64` tick count ([`SimTime`]); workload
//! configurations give it meaning (e.g. 1 tick = 1 µs). The queue is a
//! binary min-heap ordered by `(time, insertion sequence)`, so
//! simultaneous events pop in the order they were scheduled — a total,
//! reproducible order that the determinism guarantee of the whole
//! simulator rests on.

use serde::{Deserialize, Serialize};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Virtual time, in ticks.
pub type SimTime = u64;

/// Identifies one application *instance* across its whole simulated
/// lifecycle. Unlike an [`AppHandle`](rtsm_core::runtime::AppHandle) —
/// which changes when a mode switch stops and restarts the application —
/// the instance id stays stable from arrival to departure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstanceId(pub u64);

/// One discrete event of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimEvent {
    /// An application instance arrives and requests admission.
    Arrival {
        /// The arriving instance.
        instance: InstanceId,
        /// Index into the workload [`Catalog`](crate::workload::Catalog)
        /// of the spec it requests (drawn when the arrival was scheduled).
        catalog_index: usize,
    },
    /// A running instance finishes and releases its resources. Stale
    /// departures (the instance already ended at a blocked mode switch)
    /// are ignored.
    Departure {
        /// The departing instance.
        instance: InstanceId,
    },
    /// A running instance switches configuration mid-life (the paper's
    /// §4.1 HIPERLAN/2 mode change): its old mapping is released and a
    /// freshly drawn spec is admitted against the then-current occupancy.
    ModeSwitch {
        /// The switching instance.
        instance: InstanceId,
    },
    /// A blocked arrival retries admission *with reconfiguration*: the
    /// manager may migrate up to the policy's bound of running
    /// applications inside one transaction to defragment the platform.
    /// Scheduled at the same virtual instant as the blocked arrival, only
    /// when the simulation's reconfiguration policy is set; its success is
    /// a *recovered admission*, its failure the instance's definitive
    /// blocking.
    Reconfigure {
        /// The instance whose arrival was blocked.
        instance: InstanceId,
        /// Catalog index the blocked arrival requested.
        catalog_index: usize,
    },
    /// A tile fails (fault injection): the runtime manager quarantines it
    /// and evacuates its tenants. A matching [`SimEvent::Repair`] is
    /// scheduled one repair time later.
    TileFail {
        /// The failing tile.
        tile: rtsm_platform::TileId,
    },
    /// A link fails (fault injection): routes through it are invalid; apps
    /// using it are re-routed or evicted. A matching [`SimEvent::Repair`]
    /// is scheduled one repair time later.
    LinkFail {
        /// The failing link.
        link: rtsm_platform::LinkId,
    },
    /// A previously injected failure is repaired: the resource becomes
    /// claimable again (evacuated applications stay where evacuation put
    /// them).
    Repair {
        /// The failure being repaired.
        failure: rtsm_core::FailureEvent,
    },
}

/// A scheduled event: ordering key `(time, seq)` where `seq` is the
/// insertion sequence number (unique per queue).
#[derive(Debug, Clone, Copy)]
struct QueuedEvent {
    time: SimTime,
    seq: u64,
    event: SimEvent,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}

impl Eq for QueuedEvent {}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The discrete-event queue: a min-heap over `(time, insertion order)`.
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<QueuedEvent>>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at `time`. Events at equal times pop in push
    /// order.
    pub fn push(&mut self, time: SimTime, event: SimEvent) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(QueuedEvent { time, seq, event }));
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, SimEvent)> {
        self.heap.pop().map(|Reverse(q)| (q.time, q.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q = EventQueue::new();
        let ev = |n| SimEvent::Departure {
            instance: InstanceId(n),
        };
        q.push(10, ev(0));
        q.push(5, ev(1));
        q.push(10, ev(2));
        q.push(7, ev(3));
        let order: Vec<(SimTime, SimEvent)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![(5, ev(1)), (7, ev(3)), (10, ev(0)), (10, ev(2))],
            "ties at t=10 pop in insertion order"
        );
    }

    #[test]
    fn len_and_is_empty_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(
            1,
            SimEvent::Departure {
                instance: InstanceId(0),
            },
        );
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
