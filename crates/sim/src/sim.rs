//! The discrete-event simulation loop: stochastic workloads driving a
//! [`RuntimeManager`] through virtual time.

use crate::event::{EventQueue, InstanceId, SimEvent, SimTime};
use crate::metrics::{MetricsCollector, SimReport};
use crate::workload::{exponential_ticks, ArrivalProcess, Catalog, HoldingTime};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rtsm_app::ApplicationSpec;
use rtsm_core::runtime::{
    AdmissionError, AdmissionErrorKind, AppHandle, EvacuationPolicy, FailureEvent,
    ReconfigurationPolicy, RuntimeError, RuntimeManager,
};
use rtsm_core::{MapError, MappingAlgorithm};
use rtsm_obs::LatencyHistogram;
use rtsm_platform::{LinkId, Platform, TileId};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// Salt XORed into the workload seed to derive the *fault* RNG stream:
/// fault draws never consume workload randomness, so enabling faults
/// leaves the arrival/holding/switch sequence bit-identical.
const FAULT_SEED_SALT: u64 = 0xFA17_FA17_FA17_FA17;

/// Parameters of the seeded fault process: exponential inter-failure
/// times (mean `mttf`), a fixed repair time (`mttr`), and the policy the
/// [`RuntimeManager::evacuate`] call recovers with. Failures alternate
/// 50/50 between tiles and links, uniform over the platform's resources;
/// a failure drawn for an already-quarantined resource is skipped (no
/// double repair). Failure injection stops with the arrival process, and
/// every injected failure's repair is processed before the queue drains,
/// so teardown always sees a healthy platform.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Mean time to failure: inter-failure gaps are Exp(1/mttf), ticks.
    pub mttf: SimTime,
    /// Fixed time from a failure's injection to its repair, ticks.
    pub mttr: SimTime,
    /// How evacuation relocates (or evicts) the failure's victims.
    pub evacuation: EvacuationPolicy,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            mttf: 50_000,
            mttr: 5_000,
            evacuation: EvacuationPolicy::default(),
        }
    }
}

/// Parameters of one simulation run. Everything stochastic derives from
/// `seed`; two runs with equal configs produce identical [`SimReport`]s.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed of the single RNG that drives arrivals, catalog draws,
    /// holding times, and mode switches.
    pub seed: u64,
    /// Number of arrival events to generate.
    pub arrivals: u64,
    /// When applications arrive.
    pub arrival_process: ArrivalProcess,
    /// How long admitted applications hold their resources.
    pub holding: HoldingTime,
    /// Probability that an admitted instance attempts one mid-life mode
    /// switch (redraws its spec from the catalog).
    pub mode_switch_probability: f64,
    /// Occupancy sampling interval, in ticks.
    pub sample_interval: SimTime,
    /// Optional virtual-time cut-off: events after it are dropped and the
    /// instances still running are torn down via
    /// [`RuntimeManager::stop_all`]. `None` drains the queue naturally.
    pub horizon: Option<SimTime>,
    /// When set, blocked arrivals retry admission through
    /// [`RuntimeManager::start_with_reconfiguration`] (a
    /// [`SimEvent::Reconfigure`] at the same virtual instant), and the
    /// report carries reconfiguration counters. `None` — the default —
    /// reproduces the plain admit-or-reject behaviour byte-for-byte.
    pub reconfiguration: Option<ReconfigurationPolicy>,
    /// Record the fragmentation figure in every occupancy sample. Off by
    /// default so plain reports stay byte-identical to pre-fragmentation
    /// runs.
    pub track_fragmentation: bool,
    /// When set, a seeded fault process injects tile/link failures
    /// (recovered via [`RuntimeManager::evacuate`]) and the report carries
    /// a [`crate::SurvivabilityReport`]. The fault RNG is derived from
    /// `seed ^` a fixed salt, so `None` — the default — reproduces
    /// fault-free reports byte-for-byte.
    pub faults: Option<FaultConfig>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1,
            arrivals: 1000,
            arrival_process: ArrivalProcess::Poisson { mean_gap: 500 },
            holding: HoldingTime::Exponential { mean: 2000 },
            mode_switch_probability: 0.1,
            sample_interval: 1000,
            horizon: None,
            reconfiguration: None,
            track_fragmentation: false,
            faults: None,
        }
    }
}

/// The result of [`run_sim`]: the deterministic report plus the
/// wall-clock mapping-latency statistics (deliberately outside the
/// report — see [`crate::metrics`]).
#[derive(Debug, Clone)]
pub struct SimRun {
    /// The deterministic, serializable report.
    pub report: SimReport,
    /// Wall-clock mapping-latency distribution (one sample per timed
    /// admission attempt), with p50/p90/p99/max.
    pub wall: LatencyHistogram,
}

/// Attempt count a rejection reports, when its error carries one.
fn rejected_attempts(err: &AdmissionError) -> u64 {
    match err {
        AdmissionError::Rejected(MapError::NoFeasibleMapping { attempts, .. }) => *attempts as u64,
        _ => 0,
    }
}

/// Result of one timed admission attempt (shared by arrivals and mode
/// switches, which only differ in which counters they bump).
enum Admission {
    /// Admitted: the handle plus the outcome's search effort.
    Admitted {
        handle: AppHandle,
        evaluated: u64,
        attempts: u64,
    },
    /// Rejected: the reason discriminant and reported attempt count.
    Blocked {
        kind: AdmissionErrorKind,
        attempts: u64,
    },
}

/// Times one `manager.start` call and classifies its result; fatal ledger
/// errors propagate. The spec arrives as a shared handle — admitting a
/// catalog entry never deep-copies the specification.
fn try_admit<A: MappingAlgorithm>(
    manager: &mut RuntimeManager<A>,
    wall: &mut LatencyHistogram,
    spec: std::sync::Arc<ApplicationSpec>,
) -> Result<Admission, AdmissionError> {
    let started = Instant::now();
    let admission = manager.start(spec);
    wall.record(started.elapsed());
    match admission {
        Ok(handle) => {
            let outcome = &manager.get(handle).expect("just admitted").outcome;
            Ok(Admission::Admitted {
                handle,
                evaluated: outcome.evaluated,
                attempts: outcome.attempts as u64,
            })
        }
        Err(err @ AdmissionError::Rejected(_)) => Ok(Admission::Blocked {
            kind: err.kind(),
            attempts: rejected_attempts(&err),
        }),
        Err(fatal) => Err(fatal),
    }
}

/// Runs one seeded simulation of `config` over `platform`, admitting every
/// arrival through `algorithm` with specs drawn from `catalog`.
///
/// Event semantics:
///
/// * **Arrival** — the instance requests admission; if mapped, a departure
///   is scheduled after a drawn holding time (and possibly one mode
///   switch strictly before it); if rejected, the instance is *blocked*
///   and leaves (no retry — blocked-calls-cleared, the classic admission
///   model) — unless a reconfiguration policy is set, in which case a
///   [`SimEvent::Reconfigure`] at the same instant decides its fate.
/// * **Departure** — the instance stops and releases its resources.
/// * **ModeSwitch** — the instance redraws a spec from the catalog and
///   switches to it at the same virtual instant. In plain runs this is
///   stop-then-readmit: if rejected the instance leaves (its scheduled
///   departure becomes stale and is ignored). With a reconfiguration
///   policy set, the switch goes through the transactional
///   [`RuntimeManager::switch`] instead: a rejected switch is still a
///   switching loss (it counts as blocked), but the instance *keeps
///   running under its old configuration* — the loss is measurable
///   (`mode_switches_survived`) and partially recovered. Mode switches
///   never search migration plans: the instance already holds resources.
/// * **Reconfigure** — the blocked instance retries through
///   [`RuntimeManager::start_with_reconfiguration`]: bounded migration
///   plans may move running applications (all-or-nothing) to make room.
///   Success is counted as a *recovered admission*; failure is the
///   instance's definitive blocking.
/// * **TileFail / LinkFail** — fault injection (only with
///   [`SimConfig::faults`] set): the resource is quarantined and its
///   tenants are evacuated through [`RuntimeManager::evacuate`] — victims
///   with an admissible relocation move, the rest are *evicted* (their
///   scheduled departures become stale). A [`SimEvent::Repair`] lands a
///   fixed `mttr` later. Failures drawn for an already-failed resource
///   are skipped.
/// * **Repair** — the quarantined resource becomes claimable again;
///   evacuated applications stay where evacuation put them.
///
/// # Errors
///
/// [`AdmissionError::CommitFailed`] / [`RuntimeError::ReleaseFailed`]
/// if the manager's own ledger rejects a commit or release — impossible
/// unless the platform state is mutated outside the simulation.
///
/// # Panics
///
/// Panics if `catalog` is empty.
pub fn run_sim<A: MappingAlgorithm>(
    platform: &Platform,
    algorithm: A,
    catalog: &Catalog,
    config: &SimConfig,
) -> Result<SimRun, RuntimeError> {
    assert!(
        !catalog.is_empty(),
        "the workload catalog must not be empty"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut manager = RuntimeManager::new(platform.clone(), algorithm);
    let mut queue = EventQueue::new();
    let mut metrics = MetricsCollector::new(config.sample_interval);
    if config.track_fragmentation {
        metrics = metrics.with_fragmentation_tracking();
    }
    if let Some(policy) = &config.reconfiguration {
        metrics = metrics.with_reconfiguration_counters(
            policy.admission.label(),
            policy.objective.lambda_permille,
        );
    }
    if let Some(faults) = &config.faults {
        metrics = metrics.with_survivability_counters(faults.mttf, faults.mttr);
    }
    let mut wall = LatencyHistogram::new();
    // Instance → current handle; absent once departed, blocked, or
    // evicted.
    let mut handles: BTreeMap<InstanceId, AppHandle> = BTreeMap::new();
    let mut scheduled_arrivals: u64 = 0;

    let schedule_arrival =
        |rng: &mut StdRng, queue: &mut EventQueue, scheduled: &mut u64, now: SimTime| {
            if *scheduled < config.arrivals {
                let instance = InstanceId(*scheduled);
                let index = *scheduled;
                *scheduled += 1;
                queue.push(
                    now + config.arrival_process.next_gap(rng, index),
                    SimEvent::Arrival {
                        instance,
                        catalog_index: catalog.sample(rng),
                    },
                );
            }
        };

    schedule_arrival(&mut rng, &mut queue, &mut scheduled_arrivals, 0);

    // The fault process draws from its own salted RNG stream, so enabling
    // it never perturbs the workload sequence. Targets are drawn when the
    // failure is scheduled (like arrivals draw their catalog entry).
    let mut fault_rng = StdRng::seed_from_u64(config.seed ^ FAULT_SEED_SALT);
    let tile_ids: Vec<TileId> = platform.tiles().map(|(id, _)| id).collect();
    let link_ids: Vec<LinkId> = platform.links().map(|(id, _)| id).collect();
    let schedule_fault = |fault_rng: &mut StdRng, queue: &mut EventQueue, now: SimTime| {
        let Some(faults) = &config.faults else {
            return;
        };
        let gap = exponential_ticks(fault_rng, faults.mttf);
        let event = if !link_ids.is_empty() && fault_rng.random_bool(0.5) {
            SimEvent::LinkFail {
                link: link_ids[fault_rng.random_range(0..link_ids.len())],
            }
        } else {
            SimEvent::TileFail {
                tile: tile_ids[fault_rng.random_range(0..tile_ids.len())],
            }
        };
        queue.push(now + gap, event);
    };
    schedule_fault(&mut fault_rng, &mut queue, 0);
    // Failure → injection instant, for recovery-time accounting.
    let mut failed_at: BTreeMap<FailureEvent, SimTime> = BTreeMap::new();

    let mut end_time: SimTime = 0;
    while let Some((now, event)) = queue.pop() {
        if let Some(horizon) = config.horizon {
            if now > horizon {
                end_time = horizon;
                break;
            }
        }
        end_time = now;
        metrics.advance(now, &manager.utilization(), manager.running_energy_pj());
        match event {
            SimEvent::Arrival {
                instance,
                catalog_index,
            } => {
                // Arrivals are chained: processing one schedules the next.
                schedule_arrival(&mut rng, &mut queue, &mut scheduled_arrivals, now);
                metrics.record_arrival();
                // Which operating regime this arrival lands in: degraded
                // while any resource is quarantined.
                let degraded = config.faults.is_some() && manager.state().any_failed();
                if config.faults.is_some() {
                    metrics.record_window_arrival(degraded);
                }
                let entry = &catalog.entries()[catalog_index];
                match try_admit(&mut manager, &mut wall, entry.spec.clone())? {
                    Admission::Admitted {
                        handle,
                        evaluated,
                        attempts,
                    } => {
                        metrics.record_admission(&entry.name, evaluated, attempts);
                        metrics.note_running(manager.n_running());
                        handles.insert(instance, handle);
                        let holding = config.holding.draw(&mut rng);
                        queue.push(now + holding, SimEvent::Departure { instance });
                        // A switch, if any, lands strictly before the
                        // departure, so the ordering never races.
                        if holding >= 2 && rng.random_bool(config.mode_switch_probability) {
                            let at = now + rng.random_range(1..holding);
                            queue.push(at, SimEvent::ModeSwitch { instance });
                        }
                    }
                    Admission::Blocked { kind, attempts } => {
                        if config.reconfiguration.is_some() {
                            // The retry at the same instant decides whether
                            // this counts as blocked or recovered; the
                            // failed attempt's search effort is booked now.
                            metrics.record_retry_scheduled(attempts);
                            queue.push(
                                now,
                                SimEvent::Reconfigure {
                                    instance,
                                    catalog_index,
                                },
                            );
                        } else {
                            metrics.record_blocked(kind, attempts);
                            if config.faults.is_some() {
                                metrics.record_window_blocked(degraded);
                            }
                        }
                    }
                }
            }
            SimEvent::Reconfigure {
                instance,
                catalog_index,
            } => {
                let policy = config
                    .reconfiguration
                    .as_ref()
                    .expect("Reconfigure events are only scheduled with a policy");
                let entry = &catalog.entries()[catalog_index];
                let started = Instant::now();
                let result = manager.start_with_reconfiguration(entry.spec.clone(), policy);
                wall.record(started.elapsed());
                match result {
                    Ok(reconfiguration) => {
                        let outcome = &manager
                            .get(reconfiguration.handle)
                            .expect("just admitted")
                            .outcome;
                        metrics.record_admission_recovered(
                            &entry.name,
                            outcome.evaluated,
                            outcome.attempts as u64,
                            reconfiguration.plans_tried,
                            reconfiguration.migrations_attempted,
                            reconfiguration.migrations.len() as u64,
                            reconfiguration.migration_energy_pj,
                            reconfiguration.plans_refused,
                        );
                        metrics.note_running(manager.n_running());
                        handles.insert(instance, reconfiguration.handle);
                        let holding = config.holding.draw(&mut rng);
                        queue.push(now + holding, SimEvent::Departure { instance });
                        if holding >= 2 && rng.random_bool(config.mode_switch_probability) {
                            let at = now + rng.random_range(1..holding);
                            queue.push(at, SimEvent::ModeSwitch { instance });
                        }
                    }
                    Err(failure) => {
                        if let AdmissionError::CommitFailed(_) = &failure.error {
                            return Err(RuntimeError::Admission(failure.error));
                        }
                        metrics.record_reconfigure_blocked(
                            failure.error.kind(),
                            rejected_attempts(&failure.error),
                            failure.plans_tried,
                            failure.migrations_attempted,
                            failure.plans_refused,
                        );
                        // The retry ran at the arrival's own virtual
                        // instant, so its regime is the arrival's.
                        if config.faults.is_some() {
                            metrics.record_window_blocked(manager.state().any_failed());
                        }
                    }
                }
            }
            SimEvent::Departure { instance } => {
                // Stale departures (instance already left at a blocked
                // mode switch) are ignored.
                if let Some(handle) = handles.remove(&instance) {
                    manager.stop(handle)?;
                    metrics.record_departure();
                }
            }
            SimEvent::ModeSwitch { instance } => {
                if let Some(&handle) = handles.get(&instance) {
                    if config.reconfiguration.is_some() {
                        // Reconfiguration-aware runs route the switch
                        // through the transactional
                        // [`RuntimeManager::switch`]: a blocked switch is a
                        // measurable switching loss, but the instance keeps
                        // running under its old configuration instead of
                        // being evicted — the loss is partially recovered.
                        metrics.record_mode_switch_attempt();
                        let entry = &catalog.entries()[catalog.sample(&mut rng)];
                        let started = Instant::now();
                        let result = manager.switch(handle, entry.spec.clone());
                        wall.record(started.elapsed());
                        match result {
                            Ok(_old_outcome) => {
                                let outcome = &manager.get(handle).expect("still running").outcome;
                                metrics.record_mode_switch_admitted(
                                    &entry.name,
                                    outcome.evaluated,
                                    outcome.attempts as u64,
                                );
                                metrics.note_running(manager.n_running());
                            }
                            Err(RuntimeError::Admission(err @ AdmissionError::Rejected(_))) => {
                                metrics.record_mode_switch_blocked(
                                    err.kind(),
                                    rejected_attempts(&err),
                                );
                                metrics.record_mode_switch_survived();
                                // The old configuration keeps running; the
                                // scheduled departure stays valid.
                            }
                            Err(fatal) => return Err(fatal),
                        }
                    } else {
                        // Plain runs keep the historical stop-then-readmit
                        // semantics (and their byte-identical reports): a
                        // blocked switch evicts the instance.
                        manager.stop(handle)?;
                        metrics.record_mode_switch_attempt();
                        let entry = &catalog.entries()[catalog.sample(&mut rng)];
                        match try_admit(&mut manager, &mut wall, entry.spec.clone())? {
                            Admission::Admitted {
                                handle: new_handle,
                                evaluated,
                                attempts,
                            } => {
                                metrics.record_mode_switch_admitted(
                                    &entry.name,
                                    evaluated,
                                    attempts,
                                );
                                metrics.note_running(manager.n_running());
                                handles.insert(instance, new_handle);
                            }
                            Admission::Blocked { kind, attempts } => {
                                // The instance lost its resources and
                                // leaves; its pending departure becomes
                                // stale.
                                handles.remove(&instance);
                                metrics.record_mode_switch_blocked(kind, attempts);
                            }
                        }
                    }
                }
            }
            ev @ (SimEvent::TileFail { .. } | SimEvent::LinkFail { .. }) => {
                // Faults are chained like arrivals, but the chain stops
                // with the arrival process so the queue can drain.
                if scheduled_arrivals < config.arrivals {
                    schedule_fault(&mut fault_rng, &mut queue, now);
                }
                let failure = match ev {
                    SimEvent::TileFail { tile } => FailureEvent::Tile(tile),
                    SimEvent::LinkFail { link } => FailureEvent::Link(link),
                    _ => unreachable!("the outer pattern admits only failures"),
                };
                if manager.is_failed(failure) {
                    // Drawn for an already-quarantined resource: a repair
                    // is pending; injecting again would double-repair.
                    continue;
                }
                let faults = config
                    .faults
                    .as_ref()
                    .expect("failure events are only scheduled with faults configured");
                match failure {
                    FailureEvent::Tile(_) => metrics.record_tile_failure(),
                    FailureEvent::Link(_) => metrics.record_link_failure(),
                }
                let evacuation = manager.evacuate(failure, &faults.evacuation)?;
                if !evacuation.evicted.is_empty() {
                    // Evicted instances leave; their scheduled departures
                    // (and mode switches) become stale and are ignored.
                    let evicted: BTreeSet<AppHandle> = evacuation.evicted.iter().copied().collect();
                    handles.retain(|_, h| !evicted.contains(h));
                }
                metrics.record_evacuation(
                    evacuation.evacuated.len() as u64,
                    evacuation.evicted.len() as u64,
                    evacuation
                        .evacuated
                        .iter()
                        .map(|e| e.processes_moved as u64)
                        .sum(),
                    evacuation.migration_energy_pj,
                );
                failed_at.insert(failure, now);
                queue.push(now + faults.mttr, SimEvent::Repair { failure });
            }
            SimEvent::Repair { failure } => {
                manager.repair(failure);
                if let Some(injected_at) = failed_at.remove(&failure) {
                    metrics.record_repair(now - injected_at);
                }
            }
        }
    }

    // Teardown: account the tail interval, then release whatever the
    // horizon cut off mid-run.
    metrics.advance(
        end_time,
        &manager.utilization(),
        manager.running_energy_pj(),
    );
    let final_running = manager.n_running() as u64;
    manager.stop_all().map_err(|e| e.error)?;
    let ledger_idle_at_end = manager.utilization().is_idle();
    let report = metrics.finish(
        manager.algorithm().name(),
        config.seed,
        final_running,
        ledger_idle_at_end,
    );
    Ok(SimRun { report, wall })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtsm_core::SpatialMapper;
    use rtsm_platform::paper::paper_platform;

    fn small_config(seed: u64) -> SimConfig {
        SimConfig {
            seed,
            arrivals: 200,
            ..SimConfig::default()
        }
    }

    #[test]
    fn conservation_laws_hold() {
        let run = run_sim(
            &paper_platform(),
            SpatialMapper::default(),
            &Catalog::hiperlan2(),
            &small_config(42),
        )
        .expect("simulation never breaks its own ledger");
        let r = &run.report;
        assert_eq!(r.arrivals, 200);
        assert_eq!(r.admitted + r.blocked, r.arrivals);
        assert!(
            r.departures <= r.admitted,
            "departures never exceed admissions"
        );
        // Every admitted instance either departed naturally or left at a
        // blocked mode switch (queue drained, horizon unset).
        assert_eq!(r.departures + r.mode_switch_blocked, r.admitted);
        assert_eq!(r.final_running, 0);
        assert!(r.ledger_idle_at_end);
        assert_eq!(
            r.rejection_histogram.values().sum::<u64>(),
            r.blocked + r.mode_switch_blocked
        );
        assert!(r.peak_running >= 1);
        assert!(r.end_time > 0);
        assert_eq!(r.samples.first().map(|s| s.time), Some(0));
    }

    #[test]
    fn horizon_cuts_and_stop_all_tears_down() {
        let config = SimConfig {
            horizon: Some(5_000),
            arrivals: 10_000,
            ..small_config(7)
        };
        let run = run_sim(
            &paper_platform(),
            SpatialMapper::default(),
            &Catalog::hiperlan2(),
            &config,
        )
        .unwrap();
        assert!(run.report.end_time <= 5_000);
        assert!(
            run.report.arrivals < 10_000,
            "the horizon cut arrivals short"
        );
        assert!(run.report.ledger_idle_at_end, "stop_all drains the ledger");
    }

    #[test]
    fn same_seed_same_report() {
        let mk = || {
            run_sim(
                &paper_platform(),
                SpatialMapper::default(),
                &Catalog::hiperlan2(),
                &small_config(9),
            )
            .unwrap()
            .report
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            run_sim(
                &paper_platform(),
                SpatialMapper::default(),
                &Catalog::hiperlan2(),
                &small_config(seed),
            )
            .unwrap()
            .report
        };
        assert_ne!(mk(1), mk(2), "distinct seeds should produce distinct runs");
    }

    #[test]
    fn fault_injection_is_deterministic_and_conserves_instances() {
        let mk = || {
            let config = SimConfig {
                faults: Some(FaultConfig {
                    mttf: 3_000,
                    mttr: 2_000,
                    evacuation: EvacuationPolicy::default(),
                }),
                ..small_config(2008)
            };
            run_sim(
                &paper_platform(),
                SpatialMapper::default(),
                &Catalog::hiperlan2(),
                &config,
            )
            .expect("fault recovery never breaks the ledger")
            .report
        };
        let report = mk();
        assert_eq!(report, mk(), "same seed, same fault-injected report");
        let s = report.survivability.as_ref().expect("faults were enabled");
        assert!(
            s.tile_failures + s.link_failures > 0,
            "an MTTF far below the run length injects failures"
        );
        assert_eq!(
            s.repairs,
            s.tile_failures + s.link_failures,
            "every injected failure is repaired before the queue drains"
        );
        assert_eq!(s.mean_recovery_ticks, 2_000, "repair time is fixed");
        assert_eq!(
            s.degraded_arrivals + s.healthy_arrivals,
            report.arrivals,
            "every arrival is classified into exactly one regime"
        );
        assert_eq!(
            s.degraded_blocked + s.healthy_blocked,
            report.blocked,
            "every definitive blocking is classified too"
        );
        // Instance conservation with the new terminal outcome: admitted
        // instances depart, leave at a blocked mode switch, or are
        // evicted by an evacuation that could not re-place them.
        assert_eq!(
            report.departures + report.mode_switch_blocked + s.apps_evicted,
            report.admitted
        );
        assert_eq!(report.final_running, 0);
        assert!(
            report.ledger_idle_at_end,
            "failure/repair cycles leak no slots or bandwidth"
        );
    }

    #[test]
    fn faults_disabled_reports_never_mention_survivability() {
        let run = run_sim(
            &paper_platform(),
            SpatialMapper::default(),
            &Catalog::hiperlan2(),
            &small_config(2008),
        )
        .unwrap();
        assert!(run.report.survivability.is_none());
        let json = serde_json::to_string(&run.report).expect("serialize");
        assert!(!json.contains("survivability"));
    }

    #[test]
    #[should_panic(expected = "catalog must not be empty")]
    fn empty_catalog_panics() {
        let _ = run_sim(
            &paper_platform(),
            SpatialMapper::default(),
            &Catalog::new(),
            &SimConfig::default(),
        );
    }
}
