//! Long-horizon admission metrics and the serializable [`SimReport`].
//!
//! The collector splits its measurements by determinism:
//!
//! * everything derived from *virtual* time and the mapping outcomes —
//!   counts, blocking probability, utilization-over-time samples, the
//!   energy integral, rejection histograms, search effort — goes into the
//!   [`SimReport`], which is byte-identical across re-runs of the same
//!   seed;
//! * *wall-clock* mapping latency (how long the algorithm itself took) is
//!   kept in a [`LatencyHistogram`](rtsm_obs::LatencyHistogram), outside
//!   the report, precisely because it can never be reproducible.

use crate::event::SimTime;
use rtsm_core::runtime::{AdmissionErrorKind, Utilization};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Platform occupancy at one sample instant. Ratios are in permille
/// (integers keep the serialized report byte-stable).
///
/// Serialization is hand-written so the optional fragmentation figure is
/// *omitted* — not `null` — when tracking is off: runs without
/// fragmentation tracking serialize byte-identically to reports from
/// before the field existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UtilizationSample {
    /// Sample instant, in ticks.
    pub time: SimTime,
    /// Applications running at this instant.
    pub running_apps: u32,
    /// Compute slots in use, ‰ of the platform total.
    pub slots_permille: u32,
    /// Tile memory in use, ‰ of the platform total.
    pub memory_permille: u32,
    /// Link bandwidth in use, ‰ of the platform total.
    pub link_permille: u32,
    /// Energy of the running set, pJ per application period.
    pub energy_pj_per_period: u64,
    /// Fragmentation of the free compute capacity, ‰ (see
    /// [`Utilization::fragmentation_permille`]); `None` when the run did
    /// not track fragmentation.
    pub frag_permille: Option<u32>,
}

fn permille(used: u64, total: u64) -> u32 {
    used.saturating_mul(1000).checked_div(total).unwrap_or(0) as u32
}

impl UtilizationSample {
    /// Captures `util` at `time`, with the energy of the running set
    /// (`running_energy_pj`, pJ per period). `track_fragmentation`
    /// controls whether the sample carries the fragmentation figure.
    pub fn capture(
        time: SimTime,
        util: &Utilization,
        running_energy_pj: u64,
        track_fragmentation: bool,
    ) -> Self {
        UtilizationSample {
            time,
            running_apps: util.running_apps as u32,
            slots_permille: permille(u64::from(util.used_slots), u64::from(util.total_slots)),
            memory_permille: permille(util.used_memory_bytes, util.total_memory_bytes),
            link_permille: permille(util.used_link_bandwidth, util.total_link_bandwidth),
            energy_pj_per_period: running_energy_pj,
            frag_permille: track_fragmentation.then_some(util.fragmentation_permille),
        }
    }
}

impl Serialize for UtilizationSample {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            ("time".to_string(), self.time.to_value()),
            ("running_apps".to_string(), self.running_apps.to_value()),
            ("slots_permille".to_string(), self.slots_permille.to_value()),
            (
                "memory_permille".to_string(),
                self.memory_permille.to_value(),
            ),
            ("link_permille".to_string(), self.link_permille.to_value()),
            (
                "energy_pj_per_period".to_string(),
                self.energy_pj_per_period.to_value(),
            ),
        ];
        if let Some(frag) = self.frag_permille {
            entries.push(("frag_permille".to_string(), frag.to_value()));
        }
        serde::Value::Map(entries)
    }
}

impl Deserialize for UtilizationSample {
    fn from_value(value: &serde::Value) -> Result<Self, serde::de::Error> {
        Ok(UtilizationSample {
            time: serde::de::field(value, "time")?,
            running_apps: serde::de::field(value, "running_apps")?,
            slots_permille: serde::de::field(value, "slots_permille")?,
            memory_permille: serde::de::field(value, "memory_permille")?,
            link_permille: serde::de::field(value, "link_permille")?,
            energy_pj_per_period: serde::de::field(value, "energy_pj_per_period")?,
            frag_permille: serde::de::field(value, "frag_permille")?,
        })
    }
}

/// Reconfiguration counters of one simulation run — present in the
/// [`SimReport`] only when the run was configured with a
/// [`ReconfigurationPolicy`](rtsm_core::ReconfigurationPolicy), so plain
/// runs serialize byte-identically to pre-reconfiguration reports.
///
/// Together with the report's `blocking_permille` this is one *Pareto
/// point* per (policy, λ) configuration: recovered admissions and
/// blocking on one axis, total migration energy on the other. Sweeping
/// λ and the [`AdmissionPolicy`](rtsm_core::AdmissionPolicy) set traces
/// the front (see the `bench_map` `pareto` section).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconfigurationReport {
    /// Label of the run's [`AdmissionPolicy`](rtsm_core::AdmissionPolicy).
    pub policy: String,
    /// The run's migration-energy weight λ, in permille (see
    /// [`ReconfigurationObjective`](rtsm_core::ReconfigurationObjective)).
    pub lambda_permille: u64,
    /// Blocked arrivals that retried with reconfiguration.
    pub reconfigure_attempts: u64,
    /// Retries that admitted the application (blocked → running). The
    /// headline: each one is an admission the plain policy lost.
    pub admissions_recovered: u64,
    /// Migration plans evaluated across all retries.
    pub plans_tried: u64,
    /// Victim re-mappings attempted, including plans that were not
    /// committed.
    pub migrations_attempted: u64,
    /// Migrations actually committed (running apps moved).
    pub migrations_committed: u64,
    /// Total modelled state-transfer energy of committed migrations, pJ.
    pub migration_energy_pj: u64,
    /// Feasible plans the admission policy refused to commit — blocking
    /// that was a *policy* decision, not a placement failure.
    pub plans_refused: u64,
    /// Blocked mode switches whose instance kept running under its old
    /// configuration (switch-through-remap): switching losses that no
    /// longer evict.
    pub mode_switches_survived: u64,
}

/// Survivability counters of one simulation run — present in the
/// [`SimReport`] only when the run injected faults (a
/// [`FaultConfig`](crate::FaultConfig) was set), so fault-free runs
/// serialize byte-identically to pre-fault-injection reports.
///
/// The degraded/healthy split classifies every arrival by whether *any*
/// resource was quarantined at its instant, so the blocking figures can
/// be compared between the two operating regimes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SurvivabilityReport {
    /// Configured mean time to failure, in ticks.
    pub mttf: u64,
    /// Configured (fixed) time to repair, in ticks.
    pub mttr: u64,
    /// Tile failures injected.
    pub tile_failures: u64,
    /// Link failures injected.
    pub link_failures: u64,
    /// Repairs processed (equals injected failures once the queue drains).
    pub repairs: u64,
    /// Applications relocated off a failed resource by evacuation.
    pub apps_evacuated: u64,
    /// Applications evicted — no admissible relocation existed. A
    /// terminal outcome distinct from blocking: the app *was* running.
    pub apps_evicted: u64,
    /// Processes physically moved across all evacuations.
    pub processes_moved: u64,
    /// Total modelled state-transfer energy of evacuations, pJ.
    pub evacuation_energy_pj: u64,
    /// Mean ticks from a failure's injection to its repair (0 when no
    /// repair was processed).
    pub mean_recovery_ticks: u64,
    /// Arrivals that landed while at least one resource was quarantined.
    pub degraded_arrivals: u64,
    /// Of those, how many were blocked.
    pub degraded_blocked: u64,
    /// Arrivals that landed on a fully healthy platform.
    pub healthy_arrivals: u64,
    /// Of those, how many were blocked.
    pub healthy_blocked: u64,
}

/// Template-library counters of one simulation run — present in the
/// [`SimReport`] only when the run admitted through a
/// [`TemplatedMapper`](rtsm_core::TemplatedMapper), so untemplated runs
/// serialize byte-identically to pre-template reports. All figures derive
/// from virtual-time admission decisions, never from wall-clock timing, so
/// they are as deterministic as the rest of the report.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemplateReport {
    /// Configured per-spec shape cap (`--template-cap`).
    pub cap: u64,
    /// Admissions served by instantiating a cached shape.
    pub hits: u64,
    /// Admissions that fell back to the full heuristic.
    pub misses: u64,
    /// hits ÷ (hits + misses), in permille (0 when nothing was attempted).
    pub hit_permille: u64,
    /// Shapes cached across all specs at the end of the run.
    pub shapes_cached: u64,
    /// Shapes learned by design-time seeding (first arrival per spec).
    pub seeded: u64,
    /// Shapes evicted by the per-spec cap.
    pub evictions: u64,
    /// Shapes invalidated because they stopped fitting the platform.
    pub invalidations: u64,
}

impl TemplateReport {
    /// Builds the report section from the mapper's lifetime statistics.
    pub fn from_stats(stats: rtsm_core::TemplateStats, cap: usize) -> Self {
        let attempts = stats.hits + stats.misses;
        TemplateReport {
            cap: cap as u64,
            hits: stats.hits,
            misses: stats.misses,
            hit_permille: (stats.hits * 1000).checked_div(attempts).unwrap_or(0),
            shapes_cached: stats.shapes_cached,
            seeded: stats.seeded,
            evictions: stats.evictions,
            invalidations: stats.invalidations,
        }
    }
}

/// The deterministic result of one simulation run: same seed, same
/// platform, same algorithm ⇒ byte-identical serialized report.
///
/// Serialization is hand-written: the optional
/// [`reconfiguration`](SimReport::reconfiguration),
/// [`survivability`](SimReport::survivability), and
/// [`templates`](SimReport::templates) sections are omitted —
/// not `null` — when absent, keeping plain runs byte-identical to reports
/// from before reconfiguration, fault injection, or templates existed.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Name of the mapping algorithm that admitted applications.
    pub algorithm: String,
    /// The workload seed.
    pub seed: u64,
    /// Virtual time when the simulation ended, in ticks.
    pub end_time: SimTime,
    /// Arrival events processed.
    pub arrivals: u64,
    /// Arrivals admitted with a feasible mapping.
    pub admitted: u64,
    /// Arrivals blocked (no feasible mapping at that moment).
    pub blocked: u64,
    /// Departure events that released a running instance.
    pub departures: u64,
    /// Mode switches attempted by running instances.
    pub mode_switch_attempts: u64,
    /// Mode switches whose new configuration was admitted.
    pub mode_switch_admitted: u64,
    /// Mode switches blocked — the instance lost its resources and left.
    pub mode_switch_blocked: u64,
    /// Blocking probability over all admission attempts (arrivals + mode
    /// switches), in permille.
    pub blocking_permille: u64,
    /// Rejections keyed by [`AdmissionErrorKind`] — why admissions failed.
    pub rejection_histogram: BTreeMap<AdmissionErrorKind, u64>,
    /// Admissions per catalog entry name (which applications got through).
    pub admitted_by_app: BTreeMap<String, u64>,
    /// Total assignments evaluated by the algorithm over all successful
    /// admissions — the deterministic proxy for mapping latency.
    pub evaluated_assignments: u64,
    /// Total refinement attempts over all admission attempts (successful
    /// admissions plus rejections that report their attempt count).
    pub refinement_attempts: u64,
    /// Most applications running at once.
    pub peak_running: u64,
    /// The energy integral ∫ running_energy dt over the run, in pJ·ticks:
    /// each admitted mapping's `energy_pj` (per period, via the platform's
    /// `EnergyModel`) weighted by how long it actually ran.
    pub energy_pj_ticks: u64,
    /// Occupancy over time, one sample per configured interval.
    pub samples: Vec<UtilizationSample>,
    /// Instances still running when the horizon cut the run short (0 when
    /// the queue drained naturally).
    pub final_running: u64,
    /// Whether the ledger was idle after teardown — commit/release stayed
    /// exact inverses over the whole run.
    pub ledger_idle_at_end: bool,
    /// Reconfiguration counters; `Some` exactly when the run was
    /// configured with a reconfiguration policy.
    pub reconfiguration: Option<ReconfigurationReport>,
    /// Survivability counters; `Some` exactly when the run injected
    /// faults.
    pub survivability: Option<SurvivabilityReport>,
    /// Template-library counters; `Some` exactly when the run admitted
    /// through a [`TemplatedMapper`](rtsm_core::TemplatedMapper). Attached
    /// by the caller after the run (the event loop itself is
    /// template-agnostic).
    pub templates: Option<TemplateReport>,
}

impl Serialize for SimReport {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            ("algorithm".to_string(), self.algorithm.to_value()),
            ("seed".to_string(), self.seed.to_value()),
            ("end_time".to_string(), self.end_time.to_value()),
            ("arrivals".to_string(), self.arrivals.to_value()),
            ("admitted".to_string(), self.admitted.to_value()),
            ("blocked".to_string(), self.blocked.to_value()),
            ("departures".to_string(), self.departures.to_value()),
            (
                "mode_switch_attempts".to_string(),
                self.mode_switch_attempts.to_value(),
            ),
            (
                "mode_switch_admitted".to_string(),
                self.mode_switch_admitted.to_value(),
            ),
            (
                "mode_switch_blocked".to_string(),
                self.mode_switch_blocked.to_value(),
            ),
            (
                "blocking_permille".to_string(),
                self.blocking_permille.to_value(),
            ),
            (
                "rejection_histogram".to_string(),
                self.rejection_histogram.to_value(),
            ),
            (
                "admitted_by_app".to_string(),
                self.admitted_by_app.to_value(),
            ),
            (
                "evaluated_assignments".to_string(),
                self.evaluated_assignments.to_value(),
            ),
            (
                "refinement_attempts".to_string(),
                self.refinement_attempts.to_value(),
            ),
            ("peak_running".to_string(), self.peak_running.to_value()),
            (
                "energy_pj_ticks".to_string(),
                self.energy_pj_ticks.to_value(),
            ),
            ("samples".to_string(), self.samples.to_value()),
            ("final_running".to_string(), self.final_running.to_value()),
            (
                "ledger_idle_at_end".to_string(),
                self.ledger_idle_at_end.to_value(),
            ),
        ];
        if let Some(reconfiguration) = &self.reconfiguration {
            entries.push(("reconfiguration".to_string(), reconfiguration.to_value()));
        }
        if let Some(survivability) = &self.survivability {
            entries.push(("survivability".to_string(), survivability.to_value()));
        }
        if let Some(templates) = &self.templates {
            entries.push(("templates".to_string(), templates.to_value()));
        }
        serde::Value::Map(entries)
    }
}

impl Deserialize for SimReport {
    fn from_value(value: &serde::Value) -> Result<Self, serde::de::Error> {
        Ok(SimReport {
            algorithm: serde::de::field(value, "algorithm")?,
            seed: serde::de::field(value, "seed")?,
            end_time: serde::de::field(value, "end_time")?,
            arrivals: serde::de::field(value, "arrivals")?,
            admitted: serde::de::field(value, "admitted")?,
            blocked: serde::de::field(value, "blocked")?,
            departures: serde::de::field(value, "departures")?,
            mode_switch_attempts: serde::de::field(value, "mode_switch_attempts")?,
            mode_switch_admitted: serde::de::field(value, "mode_switch_admitted")?,
            mode_switch_blocked: serde::de::field(value, "mode_switch_blocked")?,
            blocking_permille: serde::de::field(value, "blocking_permille")?,
            rejection_histogram: serde::de::field(value, "rejection_histogram")?,
            admitted_by_app: serde::de::field(value, "admitted_by_app")?,
            evaluated_assignments: serde::de::field(value, "evaluated_assignments")?,
            refinement_attempts: serde::de::field(value, "refinement_attempts")?,
            peak_running: serde::de::field(value, "peak_running")?,
            energy_pj_ticks: serde::de::field(value, "energy_pj_ticks")?,
            samples: serde::de::field(value, "samples")?,
            final_running: serde::de::field(value, "final_running")?,
            ledger_idle_at_end: serde::de::field(value, "ledger_idle_at_end")?,
            reconfiguration: serde::de::field(value, "reconfiguration")?,
            survivability: serde::de::field(value, "survivability")?,
            templates: serde::de::field(value, "templates")?,
        })
    }
}

impl SimReport {
    /// Blocked admission attempts ÷ total admission attempts, as a float
    /// (derived from the stored integers; not itself serialized).
    pub fn blocking_probability(&self) -> f64 {
        self.blocking_permille as f64 / 1000.0
    }

    /// The per-sample fragmentation figures, sorted ascending — the
    /// percentile input for cross-run aggregation. Empty when the run
    /// did not track fragmentation or produced no samples, so callers
    /// can distinguish "untracked" from "fragmentation 0" without
    /// risking an empty-percentile panic.
    pub fn frag_permille_sorted(&self) -> Vec<u32> {
        let mut frag: Vec<u32> = self
            .samples
            .iter()
            .filter_map(|s| s.frag_permille)
            .collect();
        frag.sort_unstable();
        frag
    }

    /// The energy integral per admitted application, in pJ·ticks;
    /// `None` when nothing was admitted (a horizon can elapse before
    /// the first arrival), never a division by zero.
    pub fn energy_pj_ticks_per_admitted(&self) -> Option<u64> {
        self.energy_pj_ticks.checked_div(self.admitted)
    }

    /// Mean platform slot utilization over all samples, in permille.
    pub fn mean_slots_permille(&self) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let total: u64 = self
            .samples
            .iter()
            .map(|s| u64::from(s.slots_permille))
            .sum();
        total / self.samples.len() as u64
    }
}

/// Accumulates statistics while the simulation runs; [`finish`] turns it
/// into a [`SimReport`].
///
/// [`finish`]: MetricsCollector::finish
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    sample_interval: SimTime,
    track_fragmentation: bool,
    next_sample: SimTime,
    last_time: SimTime,
    arrivals: u64,
    admitted: u64,
    blocked: u64,
    departures: u64,
    mode_switch_attempts: u64,
    mode_switch_admitted: u64,
    mode_switch_blocked: u64,
    rejection_histogram: BTreeMap<AdmissionErrorKind, u64>,
    admitted_by_app: BTreeMap<String, u64>,
    evaluated_assignments: u64,
    refinement_attempts: u64,
    peak_running: u64,
    energy_pj_ticks: u64,
    samples: Vec<UtilizationSample>,
    reconfiguration: Option<ReconfigurationReport>,
    survivability: Option<SurvivabilityReport>,
    recovery_ticks_total: u64,
}

impl MetricsCollector {
    /// A collector sampling occupancy every `sample_interval` ticks
    /// (clamped to ≥ 1), without fragmentation tracking or reconfiguration
    /// counters.
    pub fn new(sample_interval: SimTime) -> Self {
        MetricsCollector {
            sample_interval: sample_interval.max(1),
            track_fragmentation: false,
            next_sample: 0,
            last_time: 0,
            arrivals: 0,
            admitted: 0,
            blocked: 0,
            departures: 0,
            mode_switch_attempts: 0,
            mode_switch_admitted: 0,
            mode_switch_blocked: 0,
            rejection_histogram: BTreeMap::new(),
            admitted_by_app: BTreeMap::new(),
            evaluated_assignments: 0,
            refinement_attempts: 0,
            peak_running: 0,
            energy_pj_ticks: 0,
            samples: Vec::new(),
            reconfiguration: None,
            survivability: None,
            recovery_ticks_total: 0,
        }
    }

    /// Adds the fragmentation figure to every occupancy sample (builder
    /// style).
    #[must_use]
    pub fn with_fragmentation_tracking(mut self) -> Self {
        self.track_fragmentation = true;
        self
    }

    /// Enables the reconfiguration counters (builder style), stamping them
    /// with the run's admission-policy label and λ so every report is a
    /// self-describing Pareto point; the finished report then carries a
    /// [`ReconfigurationReport`].
    #[must_use]
    pub fn with_reconfiguration_counters(mut self, policy: String, lambda_permille: u64) -> Self {
        self.reconfiguration = Some(ReconfigurationReport {
            policy,
            lambda_permille,
            ..ReconfigurationReport::default()
        });
        self
    }

    /// Enables the survivability counters (builder style), stamping them
    /// with the run's fault-process parameters; the finished report then
    /// carries a [`SurvivabilityReport`].
    #[must_use]
    pub fn with_survivability_counters(mut self, mttf: u64, mttr: u64) -> Self {
        self.survivability = Some(SurvivabilityReport {
            mttf,
            mttr,
            ..SurvivabilityReport::default()
        });
        self
    }

    /// Advances virtual time to `now` given the state that held since the
    /// previous event: integrates the energy and emits any due occupancy
    /// samples. Call *before* applying the event at `now`.
    pub fn advance(&mut self, now: SimTime, util: &Utilization, running_energy_pj: u64) {
        debug_assert!(now >= self.last_time, "virtual time is monotone");
        while self.next_sample <= now {
            self.samples.push(UtilizationSample::capture(
                self.next_sample,
                util,
                running_energy_pj,
                self.track_fragmentation,
            ));
            self.next_sample += self.sample_interval;
        }
        let dt = now - self.last_time;
        self.energy_pj_ticks = self
            .energy_pj_ticks
            .saturating_add(running_energy_pj.saturating_mul(dt));
        self.last_time = now;
    }

    /// Records a processed arrival event.
    pub fn record_arrival(&mut self) {
        self.arrivals += 1;
    }

    /// Shared admission bookkeeping: per-application count and search
    /// effort.
    fn note_admitted(&mut self, app_name: &str, evaluated: u64, attempts: u64) {
        *self
            .admitted_by_app
            .entry(app_name.to_string())
            .or_insert(0) += 1;
        self.evaluated_assignments += evaluated;
        self.refinement_attempts += attempts;
    }

    /// Shared rejection bookkeeping: reason histogram and search effort.
    fn note_rejected(&mut self, kind: AdmissionErrorKind, attempts: u64) {
        *self.rejection_histogram.entry(kind).or_insert(0) += 1;
        self.refinement_attempts += attempts;
    }

    /// Records a successful admission: which catalog entry got in and the
    /// search effort its mapping took.
    pub fn record_admission(&mut self, app_name: &str, evaluated: u64, attempts: u64) {
        self.admitted += 1;
        self.note_admitted(app_name, evaluated, attempts);
    }

    /// Records a blocked arrival and why it was rejected.
    pub fn record_blocked(&mut self, kind: AdmissionErrorKind, attempts: u64) {
        self.blocked += 1;
        self.note_rejected(kind, attempts);
    }

    /// Records a departure that released a running instance.
    pub fn record_departure(&mut self) {
        self.departures += 1;
    }

    /// Records a mode-switch attempt by a running instance.
    pub fn record_mode_switch_attempt(&mut self) {
        self.mode_switch_attempts += 1;
    }

    /// Records a mode switch whose new configuration was admitted.
    pub fn record_mode_switch_admitted(&mut self, app_name: &str, evaluated: u64, attempts: u64) {
        self.mode_switch_admitted += 1;
        self.note_admitted(app_name, evaluated, attempts);
    }

    /// Records a blocked mode switch and why it was rejected.
    pub fn record_mode_switch_blocked(&mut self, kind: AdmissionErrorKind, attempts: u64) {
        self.mode_switch_blocked += 1;
        self.note_rejected(kind, attempts);
    }

    /// Records the search effort of a blocked arrival whose fate is
    /// deferred to a same-instant reconfiguration retry: the failed plain
    /// attempt's refinement effort is accounted immediately (it was really
    /// spent), while the blocked/recovered decision and the rejection
    /// histogram wait for the retry's outcome.
    pub fn record_retry_scheduled(&mut self, attempts: u64) {
        self.refinement_attempts += attempts;
    }

    /// The reconfiguration counters, for in-flight updates. Panics when
    /// the collector was built without
    /// [`with_reconfiguration_counters`](MetricsCollector::with_reconfiguration_counters).
    fn reconfig(&mut self) -> &mut ReconfigurationReport {
        self.reconfiguration
            .as_mut()
            .expect("reconfiguration counters were enabled")
    }

    /// Records a recovered admission: a blocked arrival that the
    /// reconfiguration retry admitted. Counts as the arrival's admission
    /// (so blocking probability reflects the recovery) plus the plan
    /// search's effort, committed migrations, and any feasible plans the
    /// admission policy refused along the way.
    #[allow(clippy::too_many_arguments)]
    pub fn record_admission_recovered(
        &mut self,
        app_name: &str,
        evaluated: u64,
        attempts: u64,
        plans_tried: u64,
        migrations_attempted: u64,
        migrations_committed: u64,
        migration_energy_pj: u64,
        plans_refused: u64,
    ) {
        self.record_admission(app_name, evaluated, attempts);
        let r = self.reconfig();
        r.reconfigure_attempts += 1;
        r.admissions_recovered += 1;
        r.plans_tried += plans_tried;
        r.migrations_attempted += migrations_attempted;
        r.migrations_committed += migrations_committed;
        r.migration_energy_pj += migration_energy_pj;
        r.plans_refused += plans_refused;
    }

    /// Records a reconfiguration retry that still could not admit the
    /// arrival — the instance's definitive blocking, plus the failed
    /// search's effort and refusals.
    pub fn record_reconfigure_blocked(
        &mut self,
        kind: AdmissionErrorKind,
        attempts: u64,
        plans_tried: u64,
        migrations_attempted: u64,
        plans_refused: u64,
    ) {
        self.record_blocked(kind, attempts);
        let r = self.reconfig();
        r.reconfigure_attempts += 1;
        r.plans_tried += plans_tried;
        r.migrations_attempted += migrations_attempted;
        r.plans_refused += plans_refused;
    }

    /// Records a blocked mode switch whose instance kept running under its
    /// old configuration (switch-through-remap). Call *in addition to*
    /// [`record_mode_switch_blocked`](MetricsCollector::record_mode_switch_blocked):
    /// the switch itself still failed; what survived is the instance.
    pub fn record_mode_switch_survived(&mut self) {
        self.reconfig().mode_switches_survived += 1;
    }

    /// The survivability counters, for in-flight updates. Panics when the
    /// collector was built without
    /// [`with_survivability_counters`](MetricsCollector::with_survivability_counters).
    fn surv(&mut self) -> &mut SurvivabilityReport {
        self.survivability
            .as_mut()
            .expect("survivability counters were enabled")
    }

    /// Records an injected tile failure.
    pub fn record_tile_failure(&mut self) {
        self.surv().tile_failures += 1;
    }

    /// Records an injected link failure.
    pub fn record_link_failure(&mut self) {
        self.surv().link_failures += 1;
    }

    /// Records one evacuation's outcome: how many victims were relocated,
    /// how many evicted, and the physical cost of the relocations.
    pub fn record_evacuation(
        &mut self,
        evacuated: u64,
        evicted: u64,
        processes_moved: u64,
        energy_pj: u64,
    ) {
        let s = self.surv();
        s.apps_evacuated += evacuated;
        s.apps_evicted += evicted;
        s.processes_moved += processes_moved;
        s.evacuation_energy_pj += energy_pj;
    }

    /// Records a processed repair, `recovery_ticks` after its failure was
    /// injected.
    pub fn record_repair(&mut self, recovery_ticks: SimTime) {
        self.surv().repairs += 1;
        self.recovery_ticks_total += recovery_ticks;
    }

    /// Classifies an arrival by operating regime: `degraded` when any
    /// resource was quarantined at its instant. Call *in addition to*
    /// [`record_arrival`](MetricsCollector::record_arrival), only on runs
    /// with survivability counters.
    pub fn record_window_arrival(&mut self, degraded: bool) {
        let s = self.surv();
        if degraded {
            s.degraded_arrivals += 1;
        } else {
            s.healthy_arrivals += 1;
        }
    }

    /// Classifies a *definitively blocked* arrival by the regime recorded
    /// at its [`record_window_arrival`](MetricsCollector::record_window_arrival)
    /// call (pass the same flag).
    pub fn record_window_blocked(&mut self, degraded: bool) {
        let s = self.surv();
        if degraded {
            s.degraded_blocked += 1;
        } else {
            s.healthy_blocked += 1;
        }
    }

    /// Notes the current number of running applications (peak tracking).
    pub fn note_running(&mut self, running: usize) {
        self.peak_running = self.peak_running.max(running as u64);
    }

    /// Seals the collector into a [`SimReport`].
    pub fn finish(
        self,
        algorithm: &str,
        seed: u64,
        final_running: u64,
        ledger_idle_at_end: bool,
    ) -> SimReport {
        let attempts_total = self.arrivals + self.mode_switch_attempts;
        let blocked_total = self.blocked + self.mode_switch_blocked;
        let mut survivability = self.survivability;
        if let Some(s) = &mut survivability {
            s.mean_recovery_ticks = self
                .recovery_ticks_total
                .checked_div(s.repairs)
                .unwrap_or(0);
        }
        SimReport {
            algorithm: algorithm.to_string(),
            seed,
            end_time: self.last_time,
            arrivals: self.arrivals,
            admitted: self.admitted,
            blocked: self.blocked,
            departures: self.departures,
            mode_switch_attempts: self.mode_switch_attempts,
            mode_switch_admitted: self.mode_switch_admitted,
            mode_switch_blocked: self.mode_switch_blocked,
            blocking_permille: (blocked_total * 1000)
                .checked_div(attempts_total)
                .unwrap_or(0),
            rejection_histogram: self.rejection_histogram,
            admitted_by_app: self.admitted_by_app,
            evaluated_assignments: self.evaluated_assignments,
            refinement_attempts: self.refinement_attempts,
            peak_running: self.peak_running,
            energy_pj_ticks: self.energy_pj_ticks,
            samples: self.samples,
            final_running,
            ledger_idle_at_end,
            reconfiguration: self.reconfiguration,
            survivability,
            templates: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idle_util() -> Utilization {
        Utilization {
            used_slots: 0,
            total_slots: 10,
            used_memory_bytes: 0,
            total_memory_bytes: 1000,
            used_link_bandwidth: 0,
            total_link_bandwidth: 1000,
            running_apps: 0,
            largest_free_slot_region: 10,
            fragmentation_permille: 0,
            failed_tiles: 0,
            degraded_permille: 0,
        }
    }

    #[test]
    fn energy_integral_weights_by_elapsed_ticks() {
        let mut m = MetricsCollector::new(1_000_000); // no samples in range
        let util = idle_util();
        m.advance(10, &util, 0); // nothing ran yet
        m.advance(30, &util, 500); // 500 pJ/period over 20 ticks
        m.advance(35, &util, 100); // 100 pJ/period over 5 ticks
        let report = m.finish("test", 0, 0, true);
        assert_eq!(report.energy_pj_ticks, 500 * 20 + 100 * 5);
        assert_eq!(report.end_time, 35);
    }

    #[test]
    fn samples_land_on_interval_boundaries() {
        let mut m = MetricsCollector::new(10);
        let util = idle_util();
        m.advance(25, &util, 0);
        let report = m.finish("test", 0, 0, true);
        let times: Vec<SimTime> = report.samples.iter().map(|s| s.time).collect();
        assert_eq!(times, vec![0, 10, 20]);
    }

    #[test]
    fn blocking_permille_covers_arrivals_and_switches() {
        let mut m = MetricsCollector::new(1);
        for _ in 0..3 {
            m.record_arrival();
        }
        m.record_admission("a", 10, 1);
        m.record_blocked(
            AdmissionErrorKind::Rejected(rtsm_core::MapErrorKind::NoFeasibleMapping),
            2,
        );
        m.record_blocked(
            AdmissionErrorKind::Rejected(rtsm_core::MapErrorKind::Unmappable),
            0,
        );
        m.record_mode_switch_attempt();
        m.record_mode_switch_blocked(
            AdmissionErrorKind::Rejected(rtsm_core::MapErrorKind::NoFeasibleMapping),
            1,
        );
        let report = m.finish("test", 0, 0, true);
        // 3 blocked out of 4 attempts.
        assert_eq!(report.blocking_permille, 750);
        assert_eq!(report.rejection_histogram.values().sum::<u64>(), 3);
        assert_eq!(report.refinement_attempts, 1 + 2 + 1);
    }

    #[test]
    fn zero_arrival_runs_seal_a_valid_report() {
        // A horizon that elapses before the first arrival: time advances,
        // but no admission attempt is ever recorded. Everything derived
        // by division must come out as 0 or `None`, never panic.
        let mut m = MetricsCollector::new(10);
        m.advance(25, &idle_util(), 0);
        let report = m.finish("test", 0, 0, true);
        assert_eq!(report.arrivals, 0);
        assert_eq!(report.admitted, 0);
        assert_eq!(report.blocking_permille, 0);
        assert_eq!(report.energy_pj_ticks_per_admitted(), None);
        // Fragmentation was not tracked: the sorted figures are empty
        // (distinct from "tracked and zero").
        assert!(!report.samples.is_empty());
        assert!(report.frag_permille_sorted().is_empty());
        assert_eq!(report.mean_slots_permille(), 0);
    }

    #[test]
    fn aggregation_hooks_report_tracked_runs() {
        let mut m = MetricsCollector::new(10).with_fragmentation_tracking();
        let mut util = idle_util();
        util.fragmentation_permille = 400;
        m.advance(15, &util, 0);
        let mut report = m.finish("test", 0, 0, true);
        report.admitted = 4;
        report.energy_pj_ticks = 100;
        assert_eq!(report.frag_permille_sorted(), vec![400, 400]);
        assert_eq!(report.energy_pj_ticks_per_admitted(), Some(25));
    }

    #[test]
    fn survivability_section_is_omitted_when_faults_are_off() {
        let mut m = MetricsCollector::new(10);
        m.advance(5, &idle_util(), 0);
        let report = m.finish("test", 0, 0, true);
        assert!(report.survivability.is_none());
        let json = serde_json::to_string(&report).expect("serialize");
        assert!(
            !json.contains("survivability"),
            "fault-free reports must not even mention the section"
        );
    }

    #[test]
    fn survivability_counters_aggregate_and_average_recovery() {
        let mut m = MetricsCollector::new(1_000_000).with_survivability_counters(50_000, 3_000);
        m.advance(5, &idle_util(), 0);
        m.record_tile_failure();
        m.record_link_failure();
        m.record_evacuation(2, 1, 3, 400);
        m.record_repair(3_000);
        m.record_repair(5_000);
        m.record_window_arrival(true);
        m.record_window_blocked(true);
        m.record_window_arrival(false);
        let report = m.finish("test", 0, 0, true);
        let s = report.survivability.as_ref().expect("counters enabled");
        assert_eq!((s.mttf, s.mttr), (50_000, 3_000));
        assert_eq!((s.tile_failures, s.link_failures, s.repairs), (1, 1, 2));
        assert_eq!((s.apps_evacuated, s.apps_evicted), (2, 1));
        assert_eq!((s.processes_moved, s.evacuation_energy_pj), (3, 400));
        assert_eq!(s.mean_recovery_ticks, 4_000);
        assert_eq!((s.degraded_arrivals, s.degraded_blocked), (1, 1));
        assert_eq!((s.healthy_arrivals, s.healthy_blocked), (1, 0));
        let json = serde_json::to_string(&report).expect("serialize");
        let back: SimReport = serde_json::from_str(&json).expect("round-trips");
        assert_eq!(back, report);
    }

    #[test]
    fn permille_is_safe_on_zero_totals() {
        assert_eq!(permille(5, 0), 0);
        assert_eq!(permille(1, 4), 250);
    }
}
