//! Stochastic workload generation: weighted application catalogs, arrival
//! processes, and holding-time distributions.
//!
//! Everything here draws from one caller-supplied
//! [`StdRng`], so a whole workload — which
//! applications arrive, when, and for how long — is reproducible from a
//! single `u64` seed.

use crate::event::SimTime;
use rand::rngs::StdRng;
use rand::RngExt;
use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
use rtsm_app::ApplicationSpec;
use rtsm_platform::TileKind;
use rtsm_workloads::apps::{dvbt_rx, jpeg_encoder, mp3_decoder, wlan_tx};
use rtsm_workloads::{synthetic_app, GraphShape, SyntheticConfig};
use std::sync::Arc;

/// One catalog entry: an application specification with a sampling weight.
///
/// The spec is shared behind an [`Arc`]: every arrival that draws this
/// entry hands the same specification to the runtime manager, so admission
/// costs one reference-count bump instead of a deep copy of the process
/// graph and implementation library.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Display name (reports and histograms).
    pub name: String,
    /// Relative sampling weight (> 0).
    pub weight: u64,
    /// The specification arrivals of this entry request.
    pub spec: Arc<ApplicationSpec>,
}

/// A weighted catalog of application specifications; arrivals and mode
/// switches draw from it.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    entries: Vec<CatalogEntry>,
    total_weight: u64,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Adds an entry (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is 0.
    pub fn with(
        mut self,
        name: impl Into<String>,
        weight: u64,
        spec: impl Into<Arc<ApplicationSpec>>,
    ) -> Self {
        assert!(weight > 0, "catalog weights must be positive");
        self.total_weight += weight;
        self.entries.push(CatalogEntry {
            name: name.into(),
            weight,
            spec: spec.into(),
        });
        self
    }

    /// The entries, in insertion order.
    pub fn entries(&self) -> &[CatalogEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the catalog has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Draws one entry index, weighted.
    ///
    /// # Panics
    ///
    /// Panics if the catalog is empty.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        assert!(!self.entries.is_empty(), "cannot sample an empty catalog");
        let mut remaining = rng.random_range(0..self.total_weight);
        for (i, entry) in self.entries.iter().enumerate() {
            if remaining < entry.weight {
                return i;
            }
            remaining -= entry.weight;
        }
        unreachable!("weights sum to total_weight")
    }

    /// All seven HIPERLAN/2 receiver modes (§4.1), equally weighted — the
    /// paper's own application under sustained load on the paper platform.
    pub fn hiperlan2() -> Self {
        Hiperlan2Mode::ALL.iter().fold(Catalog::new(), |c, &mode| {
            c.with(
                format!("hiperlan2 {}", mode.name()),
                1,
                hiperlan2_receiver(mode),
            )
        })
    }

    /// A mixed DSP workload for larger mesh platforms: the constructed
    /// realistic applications plus a HIPERLAN/2 receiver, weighted towards
    /// the lighter applications.
    pub fn mixed_dsp() -> Self {
        Catalog::new()
            .with("wlan-tx", 3, wlan_tx())
            .with("jpeg-encoder", 3, jpeg_encoder())
            .with("mp3-decoder", 2, mp3_decoder())
            .with("dvbt-rx", 1, dvbt_rx())
            .with(
                "hiperlan2 QPSK 3/4",
                2,
                hiperlan2_receiver(Hiperlan2Mode::Qpsk34),
            )
    }

    /// The engineered fragmentation workload
    /// ([`rtsm_workloads::defrag`]): light applications (two share an ARM
    /// tile) heavily outnumber heavy ones (which need an ARM without a
    /// light co-tenant), so churn strands free memory and heavy arrivals
    /// block on placement rather than capacity. Pair with
    /// [`rtsm_workloads::defrag_platform`] and a
    /// [`ReconfigurationPolicy`](rtsm_core::ReconfigurationPolicy) to
    /// measure recovered admissions.
    pub fn defrag() -> Self {
        Catalog::new()
            .with("defrag light", 3, rtsm_workloads::defrag_light())
            .with("defrag heavy", 1, rtsm_workloads::defrag_heavy())
    }

    /// `n` seeded synthetic chain applications (3–7 processes, MONTIUM
    /// preferred with ARM alternatives), equally weighted. Deterministic
    /// per `seed`.
    pub fn synthetic(seed: u64, n: usize) -> Self {
        (0..n).fold(Catalog::new(), |c, i| {
            let config = SyntheticConfig {
                seed: seed.wrapping_add(i as u64),
                n_processes: 3 + i % 5,
                shape: GraphShape::Chain,
                tile_kinds: vec![TileKind::Montium, TileKind::Arm],
                ..SyntheticConfig::default()
            };
            let spec = synthetic_app(&config);
            c.with(spec.name.clone(), 1, spec)
        })
    }
}

/// When the next application arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Poisson arrivals: exponentially distributed inter-arrival gaps with
    /// the given mean (ticks). The textbook model for independent users
    /// starting applications.
    Poisson {
        /// Mean inter-arrival gap, in ticks.
        mean_gap: SimTime,
    },
    /// One arrival every `interval` ticks, exactly.
    Periodic {
        /// Fixed inter-arrival gap, in ticks.
        interval: SimTime,
    },
    /// Flash crowds: arrivals come in bursts of `burst_size` at the same
    /// virtual instant, with exponentially distributed gaps *between*
    /// bursts of mean `mean_gap × burst_size` — so the long-run arrival
    /// rate matches a Poisson process with mean gap `mean_gap`, but the
    /// load lands in adversarial spikes. The process is stateless: the
    /// burst structure is a function of the arrival's index, so the same
    /// seed and index always yield the same gap.
    FlashCrowd {
        /// Long-run mean inter-arrival gap, in ticks (matched to
        /// [`ArrivalProcess::Poisson`] for comparability).
        mean_gap: SimTime,
        /// Arrivals per burst (> 0; 1 degenerates to Poisson).
        burst_size: u32,
    },
}

impl ArrivalProcess {
    /// Draws the gap between arrival number `index` and its successor
    /// (always ≥ 1 tick, except *within* a flash-crowd burst, where it is
    /// 0 so the burst lands at one virtual instant). `index` counts
    /// scheduled arrivals from 0; only [`ArrivalProcess::FlashCrowd`]
    /// consults it.
    pub fn next_gap(&self, rng: &mut StdRng, index: u64) -> SimTime {
        match *self {
            ArrivalProcess::Poisson { mean_gap } => exponential_ticks(rng, mean_gap),
            ArrivalProcess::Periodic { interval } => interval.max(1),
            ArrivalProcess::FlashCrowd {
                mean_gap,
                burst_size,
            } => {
                let burst = u64::from(burst_size.max(1));
                // The gap *after* the last arrival of a burst separates it
                // from the next burst; all earlier gaps are 0 (FIFO order
                // at equal times keeps the burst deterministic).
                if (index + 1).is_multiple_of(burst) {
                    exponential_ticks(rng, mean_gap.saturating_mul(burst))
                } else {
                    0
                }
            }
        }
    }
}

/// How long an admitted application holds its resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HoldingTime {
    /// Exponentially distributed with the given mean (ticks) — memoryless
    /// session lengths.
    Exponential {
        /// Mean holding time, in ticks.
        mean: SimTime,
    },
    /// Every admitted application runs exactly this long.
    Fixed {
        /// Holding time, in ticks.
        ticks: SimTime,
    },
    /// Heavy-tailed session lengths: a Pareto distribution with shape
    /// `alpha`, truncated to `[min, max]` ticks. Most sessions are short,
    /// but a non-negligible fraction hold resources for a very long time —
    /// the adversarial shape for admission control, since long holders
    /// fragment the platform far more than the exponential's memoryless
    /// churn.
    BoundedPareto {
        /// Smallest holding time, in ticks (> 0).
        min: SimTime,
        /// Largest holding time, in ticks (> `min`).
        max: SimTime,
        /// Shape parameter α in permille (e.g. 1500 = α 1.5). Carried as
        /// an integer so the distribution stays `Eq`-comparable; smaller α
        /// means a heavier tail.
        alpha_permille: u32,
    },
}

impl HoldingTime {
    /// Draws one holding time (always ≥ 1 tick).
    pub fn draw(&self, rng: &mut StdRng) -> SimTime {
        match *self {
            HoldingTime::Exponential { mean } => exponential_ticks(rng, mean),
            HoldingTime::Fixed { ticks } => ticks.max(1),
            HoldingTime::BoundedPareto {
                min,
                max,
                alpha_permille,
            } => bounded_pareto_ticks(rng, min, max, alpha_permille),
        }
    }
}

/// An Exp(1/mean) draw rounded up to whole ticks (≥ 1). `u ∈ [0, 1)` makes
/// `1 - u ∈ (0, 1]`, so the logarithm is finite.
pub(crate) fn exponential_ticks(rng: &mut StdRng, mean: SimTime) -> SimTime {
    let u: f64 = rng.random();
    let ticks = -(1.0 - u).ln() * mean as f64;
    (ticks.ceil() as SimTime).max(1)
}

/// One bounded-Pareto draw by inverse CDF, rounded up to whole ticks and
/// clamped to `[min, max]` (≥ 1):
///
/// ```text
/// x = L / (1 − U·(1 − (L/H)^α))^(1/α),   U ∈ [0, 1)
/// ```
///
/// with `L = min`, `H = max`, `α = alpha_permille / 1000`. Degenerate
/// parameters (`min ≥ max`, `α = 0`) fall back to the fixed `min`.
fn bounded_pareto_ticks(
    rng: &mut StdRng,
    min: SimTime,
    max: SimTime,
    alpha_permille: u32,
) -> SimTime {
    let lo = min.max(1);
    if max <= lo || alpha_permille == 0 {
        // Still consume one draw so the RNG stream is shape-independent.
        let _: f64 = rng.random();
        return lo;
    }
    let alpha = f64::from(alpha_permille) / 1000.0;
    let l = lo as f64;
    let h = max as f64;
    let u: f64 = rng.random();
    let x = l / (1.0 - u * (1.0 - (l / h).powf(alpha))).powf(1.0 / alpha);
    (x.ceil() as SimTime).clamp(lo, max)
}

/// The analytic mean of the bounded Pareto in
/// [`HoldingTime::BoundedPareto`]'s parameterization (α ≠ 1), for
/// calibrating workloads and validating the sampler:
///
/// ```text
/// E[X] = L^α / (1 − (L/H)^α) · α/(α−1) · (1/L^(α−1) − 1/H^(α−1))
/// ```
pub fn bounded_pareto_mean(min: SimTime, max: SimTime, alpha_permille: u32) -> f64 {
    let l = min.max(1) as f64;
    let h = max as f64;
    if h <= l || alpha_permille == 0 {
        return l;
    }
    let alpha = f64::from(alpha_permille) / 1000.0;
    let scale = l.powf(alpha) / (1.0 - (l / h).powf(alpha));
    scale * (alpha / (alpha - 1.0)) * (1.0 / l.powf(alpha - 1.0) - 1.0 / h.powf(alpha - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn weighted_sampling_respects_weights() {
        let catalog = Catalog::new()
            .with("heavy", 9, hiperlan2_receiver(Hiperlan2Mode::Bpsk12))
            .with("light", 1, hiperlan2_receiver(Hiperlan2Mode::Qam64R34));
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 2];
        for _ in 0..2000 {
            counts[catalog.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[1] * 5,
            "9:1 weights must dominate the draw ({counts:?})"
        );
    }

    #[test]
    fn builtin_catalogs_validate() {
        for catalog in [
            Catalog::hiperlan2(),
            Catalog::mixed_dsp(),
            Catalog::synthetic(42, 4),
        ] {
            assert!(!catalog.is_empty());
            for entry in catalog.entries() {
                assert_eq!(entry.spec.validate(), Ok(()), "{}", entry.name);
            }
        }
    }

    #[test]
    fn exponential_gaps_are_positive_and_near_the_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let process = ArrivalProcess::Poisson { mean_gap: 1000 };
        let n = 4000u64;
        let total: u64 = (0..n).map(|i| process.next_gap(&mut rng, i)).sum();
        let mean = total / n;
        assert!(
            (700..=1300).contains(&mean),
            "empirical mean {mean} should be near 1000"
        );
    }

    #[test]
    fn bounded_pareto_mean_matches_the_analytic_value() {
        let (min, max, alpha_permille) = (100, 10_000, 1_500);
        let holding = HoldingTime::BoundedPareto {
            min,
            max,
            alpha_permille,
        };
        let mut rng = StdRng::seed_from_u64(2008);
        let n = 20_000u64;
        let total: u64 = (0..n).map(|_| holding.draw(&mut rng)).sum();
        let empirical = total as f64 / n as f64;
        let analytic = bounded_pareto_mean(min, max, alpha_permille);
        // Heavy tail ⇒ slow convergence; a ±10% band at n = 20 000 is a
        // real check without being flaky (the draw is ceil'd, biasing
        // empirical slightly high).
        assert!(
            (empirical - analytic).abs() / analytic < 0.10,
            "empirical mean {empirical:.1} vs analytic {analytic:.1}"
        );
        // Support is respected.
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let x = holding.draw(&mut rng);
            assert!((min..=max).contains(&x));
        }
    }

    #[test]
    fn bounded_pareto_is_deterministic_per_seed_and_heavy_tailed() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let holding = HoldingTime::BoundedPareto {
                min: 50,
                max: 100_000,
                alpha_permille: 1_200,
            };
            (0..64).map(|_| holding.draw(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
        // Heavier tail than the exponential with the same mean: the
        // maximum of a modest sample is far above the mean.
        let samples = draw(9);
        let mean = samples.iter().sum::<u64>() / samples.len() as u64;
        assert!(
            *samples.iter().max().unwrap() > mean * 5,
            "a 64-sample Pareto draw should show its tail"
        );
    }

    #[test]
    fn bounded_pareto_degenerate_parameters_fall_back_to_fixed() {
        let mut rng = StdRng::seed_from_u64(1);
        for holding in [
            HoldingTime::BoundedPareto {
                min: 100,
                max: 100,
                alpha_permille: 1_500,
            },
            HoldingTime::BoundedPareto {
                min: 100,
                max: 10_000,
                alpha_permille: 0,
            },
        ] {
            for _ in 0..16 {
                assert_eq!(holding.draw(&mut rng), 100);
            }
        }
    }

    #[test]
    fn flash_crowd_bursts_are_reproducible_and_conserve_arrivals() {
        let process = ArrivalProcess::FlashCrowd {
            mean_gap: 500,
            burst_size: 8,
        };
        let gaps = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..64)
                .map(|i| process.next_gap(&mut rng, i))
                .collect::<Vec<SimTime>>()
        };
        let a = gaps(2008);
        assert_eq!(a, gaps(2008), "bursts are deterministic per seed");
        assert_ne!(a, gaps(2009));
        // Exactly one positive gap per burst of 8 (after its last member):
        // the burst structure conserves the total arrival count.
        for (i, &gap) in a.iter().enumerate() {
            if (i as u64 + 1).is_multiple_of(8) {
                assert!(gap >= 1, "burst boundary at index {i} has a real gap");
            } else {
                assert_eq!(gap, 0, "index {i} is inside a burst");
            }
        }
        // 64 arrivals land on exactly 64/8 distinct virtual instants.
        let mut t = 0u64;
        let mut instants = std::collections::BTreeSet::new();
        for (i, _) in (0..64).enumerate() {
            instants.insert(t);
            t += a[i];
        }
        assert_eq!(instants.len(), 8);
        // The long-run rate matches the Poisson parameterization: total
        // span of n arrivals ≈ n × mean_gap.
        let span: u64 = a.iter().sum();
        assert!(
            (64 * 200..=64 * 1200).contains(&span),
            "64 arrivals at mean gap 500 span ≈ 32 000 ticks, got {span}"
        );
    }

    #[test]
    fn flash_crowd_burst_size_one_degenerates_to_poisson() {
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        let flash = ArrivalProcess::FlashCrowd {
            mean_gap: 300,
            burst_size: 1,
        };
        let poisson = ArrivalProcess::Poisson { mean_gap: 300 };
        for i in 0..32 {
            assert_eq!(
                flash.next_gap(&mut rng_a, i),
                poisson.next_gap(&mut rng_b, i)
            );
        }
    }

    #[test]
    fn distributions_are_deterministic_per_seed() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let holding = HoldingTime::Exponential { mean: 500 };
            (0..32).map(|_| holding.draw(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }
}
