//! Stochastic workload generation: weighted application catalogs, arrival
//! processes, and holding-time distributions.
//!
//! Everything here draws from one caller-supplied
//! [`StdRng`], so a whole workload — which
//! applications arrive, when, and for how long — is reproducible from a
//! single `u64` seed.

use crate::event::SimTime;
use rand::rngs::StdRng;
use rand::RngExt;
use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
use rtsm_app::ApplicationSpec;
use rtsm_platform::TileKind;
use rtsm_workloads::apps::{dvbt_rx, jpeg_encoder, mp3_decoder, wlan_tx};
use rtsm_workloads::{synthetic_app, GraphShape, SyntheticConfig};
use std::sync::Arc;

/// One catalog entry: an application specification with a sampling weight.
///
/// The spec is shared behind an [`Arc`]: every arrival that draws this
/// entry hands the same specification to the runtime manager, so admission
/// costs one reference-count bump instead of a deep copy of the process
/// graph and implementation library.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Display name (reports and histograms).
    pub name: String,
    /// Relative sampling weight (> 0).
    pub weight: u64,
    /// The specification arrivals of this entry request.
    pub spec: Arc<ApplicationSpec>,
}

/// A weighted catalog of application specifications; arrivals and mode
/// switches draw from it.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    entries: Vec<CatalogEntry>,
    total_weight: u64,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Adds an entry (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is 0.
    pub fn with(
        mut self,
        name: impl Into<String>,
        weight: u64,
        spec: impl Into<Arc<ApplicationSpec>>,
    ) -> Self {
        assert!(weight > 0, "catalog weights must be positive");
        self.total_weight += weight;
        self.entries.push(CatalogEntry {
            name: name.into(),
            weight,
            spec: spec.into(),
        });
        self
    }

    /// The entries, in insertion order.
    pub fn entries(&self) -> &[CatalogEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the catalog has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Draws one entry index, weighted.
    ///
    /// # Panics
    ///
    /// Panics if the catalog is empty.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        assert!(!self.entries.is_empty(), "cannot sample an empty catalog");
        let mut remaining = rng.random_range(0..self.total_weight);
        for (i, entry) in self.entries.iter().enumerate() {
            if remaining < entry.weight {
                return i;
            }
            remaining -= entry.weight;
        }
        unreachable!("weights sum to total_weight")
    }

    /// All seven HIPERLAN/2 receiver modes (§4.1), equally weighted — the
    /// paper's own application under sustained load on the paper platform.
    pub fn hiperlan2() -> Self {
        Hiperlan2Mode::ALL.iter().fold(Catalog::new(), |c, &mode| {
            c.with(
                format!("hiperlan2 {}", mode.name()),
                1,
                hiperlan2_receiver(mode),
            )
        })
    }

    /// A mixed DSP workload for larger mesh platforms: the constructed
    /// realistic applications plus a HIPERLAN/2 receiver, weighted towards
    /// the lighter applications.
    pub fn mixed_dsp() -> Self {
        Catalog::new()
            .with("wlan-tx", 3, wlan_tx())
            .with("jpeg-encoder", 3, jpeg_encoder())
            .with("mp3-decoder", 2, mp3_decoder())
            .with("dvbt-rx", 1, dvbt_rx())
            .with(
                "hiperlan2 QPSK 3/4",
                2,
                hiperlan2_receiver(Hiperlan2Mode::Qpsk34),
            )
    }

    /// The engineered fragmentation workload
    /// ([`rtsm_workloads::defrag`]): light applications (two share an ARM
    /// tile) heavily outnumber heavy ones (which need an ARM without a
    /// light co-tenant), so churn strands free memory and heavy arrivals
    /// block on placement rather than capacity. Pair with
    /// [`rtsm_workloads::defrag_platform`] and a
    /// [`ReconfigurationPolicy`](rtsm_core::ReconfigurationPolicy) to
    /// measure recovered admissions.
    pub fn defrag() -> Self {
        Catalog::new()
            .with("defrag light", 3, rtsm_workloads::defrag_light())
            .with("defrag heavy", 1, rtsm_workloads::defrag_heavy())
    }

    /// `n` seeded synthetic chain applications (3–7 processes, MONTIUM
    /// preferred with ARM alternatives), equally weighted. Deterministic
    /// per `seed`.
    pub fn synthetic(seed: u64, n: usize) -> Self {
        (0..n).fold(Catalog::new(), |c, i| {
            let config = SyntheticConfig {
                seed: seed.wrapping_add(i as u64),
                n_processes: 3 + i % 5,
                shape: GraphShape::Chain,
                tile_kinds: vec![TileKind::Montium, TileKind::Arm],
                ..SyntheticConfig::default()
            };
            let spec = synthetic_app(&config);
            c.with(spec.name.clone(), 1, spec)
        })
    }
}

/// When the next application arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Poisson arrivals: exponentially distributed inter-arrival gaps with
    /// the given mean (ticks). The textbook model for independent users
    /// starting applications.
    Poisson {
        /// Mean inter-arrival gap, in ticks.
        mean_gap: SimTime,
    },
    /// One arrival every `interval` ticks, exactly.
    Periodic {
        /// Fixed inter-arrival gap, in ticks.
        interval: SimTime,
    },
}

impl ArrivalProcess {
    /// Draws the gap to the next arrival (always ≥ 1 tick).
    pub fn next_gap(&self, rng: &mut StdRng) -> SimTime {
        match *self {
            ArrivalProcess::Poisson { mean_gap } => exponential_ticks(rng, mean_gap),
            ArrivalProcess::Periodic { interval } => interval.max(1),
        }
    }
}

/// How long an admitted application holds its resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HoldingTime {
    /// Exponentially distributed with the given mean (ticks) — memoryless
    /// session lengths.
    Exponential {
        /// Mean holding time, in ticks.
        mean: SimTime,
    },
    /// Every admitted application runs exactly this long.
    Fixed {
        /// Holding time, in ticks.
        ticks: SimTime,
    },
}

impl HoldingTime {
    /// Draws one holding time (always ≥ 1 tick).
    pub fn draw(&self, rng: &mut StdRng) -> SimTime {
        match *self {
            HoldingTime::Exponential { mean } => exponential_ticks(rng, mean),
            HoldingTime::Fixed { ticks } => ticks.max(1),
        }
    }
}

/// An Exp(1/mean) draw rounded up to whole ticks (≥ 1). `u ∈ [0, 1)` makes
/// `1 - u ∈ (0, 1]`, so the logarithm is finite.
fn exponential_ticks(rng: &mut StdRng, mean: SimTime) -> SimTime {
    let u: f64 = rng.random();
    let ticks = -(1.0 - u).ln() * mean as f64;
    (ticks.ceil() as SimTime).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn weighted_sampling_respects_weights() {
        let catalog = Catalog::new()
            .with("heavy", 9, hiperlan2_receiver(Hiperlan2Mode::Bpsk12))
            .with("light", 1, hiperlan2_receiver(Hiperlan2Mode::Qam64R34));
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 2];
        for _ in 0..2000 {
            counts[catalog.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[1] * 5,
            "9:1 weights must dominate the draw ({counts:?})"
        );
    }

    #[test]
    fn builtin_catalogs_validate() {
        for catalog in [
            Catalog::hiperlan2(),
            Catalog::mixed_dsp(),
            Catalog::synthetic(42, 4),
        ] {
            assert!(!catalog.is_empty());
            for entry in catalog.entries() {
                assert_eq!(entry.spec.validate(), Ok(()), "{}", entry.name);
            }
        }
    }

    #[test]
    fn exponential_gaps_are_positive_and_near_the_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let process = ArrivalProcess::Poisson { mean_gap: 1000 };
        let n = 4000u64;
        let total: u64 = (0..n).map(|_| process.next_gap(&mut rng)).sum();
        let mean = total / n;
        assert!(
            (700..=1300).contains(&mean),
            "empirical mean {mean} should be near 1000"
        );
    }

    #[test]
    fn distributions_are_deterministic_per_seed() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let holding = HoldingTime::Exponential { mean: 500 };
            (0..32).map(|_| holding.draw(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }
}
