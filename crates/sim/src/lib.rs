//! # rtsm_sim — discrete-event simulation of the run-time manager
//!
//! The paper's motivation (§1.3) is that run-time mapping decides against
//! the *actual* set of running applications — admission quality therefore
//! only shows under sustained, randomized load, not in hand-scripted
//! start/stop lists. This crate is that load: a seeded, deterministic
//! discrete-event simulator that drives a
//! [`RuntimeManager`](rtsm_core::runtime::RuntimeManager) through virtual
//! time and measures long-horizon admission behaviour.
//!
//! The pieces:
//!
//! * [`event`] — virtual-time ticks, [`SimEvent`] (arrival / departure /
//!   mode switch), and a deterministic binary-heap [`EventQueue`];
//! * [`workload`] — pluggable stochastic workload generation: weighted
//!   application [`Catalog`]s (HIPERLAN/2 modes, realistic DSP apps,
//!   seeded synthetics), Poisson or periodic [`ArrivalProcess`]es, and
//!   exponential or fixed [`HoldingTime`]s — all reproducible from one
//!   `u64` seed;
//! * [`metrics`] — a collector sampling admission/blocking counts,
//!   rejection-reason histograms keyed by
//!   [`AdmissionErrorKind`](rtsm_core::runtime::AdmissionErrorKind),
//!   utilization over time, and the energy integral, sealed into a
//!   serializable [`SimReport`];
//! * [`sim`] — the loop itself: [`run_sim`] plus [`SimConfig`].
//!
//! Determinism is a hard guarantee: the same seed, platform, catalog, and
//! algorithm produce a byte-identical serialized [`SimReport`], which is
//! what makes long-horizon comparisons across mapping algorithms
//! trustworthy. Wall-clock mapping latency is measured too, but kept
//! outside the report (a [`LatencyHistogram`] with p50/p90/p99/max)
//! because it cannot be reproducible.
//!
//! # Example
//!
//! ```
//! use rtsm_core::SpatialMapper;
//! use rtsm_platform::paper::paper_platform;
//! use rtsm_sim::{run_sim, Catalog, SimConfig};
//!
//! let config = SimConfig {
//!     seed: 42,
//!     arrivals: 100,
//!     ..SimConfig::default()
//! };
//! let run = run_sim(
//!     &paper_platform(),
//!     SpatialMapper::default(),
//!     &Catalog::hiperlan2(),
//!     &config,
//! )
//! .expect("the simulation never breaks its own ledger");
//! assert_eq!(run.report.admitted + run.report.blocked, 100);
//! assert!(run.report.ledger_idle_at_end);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod metrics;
pub mod sim;
pub mod workload;

pub use event::{EventQueue, InstanceId, SimEvent, SimTime};
pub use metrics::{
    MetricsCollector, ReconfigurationReport, SimReport, SurvivabilityReport, TemplateReport,
    UtilizationSample,
};
pub use rtsm_obs::LatencyHistogram;
pub use sim::{run_sim, FaultConfig, SimConfig, SimRun};
pub use workload::{bounded_pareto_mean, ArrivalProcess, Catalog, CatalogEntry, HoldingTime};
