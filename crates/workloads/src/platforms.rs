//! Seeded mesh-platform generator.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rtsm_platform::{Coord, NocParams, Platform, PlatformBuilder, TileKind};

/// Builds a `width × height` mesh with the given tile mix.
///
/// One `AdcSource` and one `Sink` tile are always included (stream
/// endpoints); the remaining positions receive the requested mix (truncated
/// if the mesh is too small, padded with `Other(0)` filler tiles if the mix
/// is too small). Placement is a seeded shuffle, so topologies are
/// reproducible.
///
/// # Panics
///
/// Panics if the mesh has fewer than 3 positions (source + sink + one
/// processing tile).
pub fn mesh_platform(seed: u64, width: u16, height: u16, mix: &[(TileKind, usize)]) -> Platform {
    let capacity = width as usize * height as usize;
    assert!(capacity >= 3, "mesh too small for a platform");
    let mut rng = StdRng::seed_from_u64(seed);

    let mut kinds: Vec<TileKind> = vec![TileKind::AdcSource, TileKind::Sink];
    'outer: for &(kind, count) in mix {
        for _ in 0..count {
            if kinds.len() >= capacity {
                break 'outer;
            }
            kinds.push(kind);
        }
    }
    while kinds.len() < capacity {
        kinds.push(TileKind::Other(0));
    }

    let mut coords: Vec<Coord> = (0..height)
        .flat_map(|y| (0..width).map(move |x| Coord { x, y }))
        .collect();
    coords.shuffle(&mut rng);

    let mut builder = PlatformBuilder::mesh(width, height).noc(NocParams::default());
    let mut counters = std::collections::HashMap::new();
    for (kind, coord) in kinds.into_iter().zip(coords) {
        let n = counters.entry(kind).or_insert(0usize);
        *n += 1;
        let name = match kind {
            TileKind::AdcSource => "A/D".to_string(),
            TileKind::Sink => "Sink".to_string(),
            other => format!("{other}{n}"),
        };
        builder = builder.tile(name, kind, coord);
    }
    builder.build().expect("generated layouts are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_platform_has_endpoints_and_mix() {
        let p = mesh_platform(
            42,
            4,
            4,
            &[
                (TileKind::Montium, 4),
                (TileKind::Arm, 6),
                (TileKind::Dsp, 2),
            ],
        );
        assert_eq!(p.n_tiles(), 16);
        assert_eq!(p.tiles_of_kind(TileKind::AdcSource).count(), 1);
        assert_eq!(p.tiles_of_kind(TileKind::Sink).count(), 1);
        assert_eq!(p.tiles_of_kind(TileKind::Montium).count(), 4);
        assert_eq!(p.tiles_of_kind(TileKind::Arm).count(), 6);
        assert_eq!(p.tiles_of_kind(TileKind::Dsp).count(), 2);
        assert_eq!(p.tiles_of_kind(TileKind::Other(0)).count(), 2);
    }

    #[test]
    fn deterministic_per_seed_distinct_across_seeds() {
        let mix = [(TileKind::Arm, 3)];
        let a = mesh_platform(1, 3, 3, &mix);
        let b = mesh_platform(1, 3, 3, &mix);
        let c = mesh_platform(2, 3, 3, &mix);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn oversized_mix_truncated() {
        let p = mesh_platform(5, 2, 2, &[(TileKind::Arm, 50)]);
        assert_eq!(p.n_tiles(), 4);
        assert_eq!(p.tiles_of_kind(TileKind::Arm).count(), 2);
    }

    #[test]
    #[should_panic(expected = "mesh too small")]
    fn tiny_mesh_rejected() {
        mesh_platform(0, 1, 2, &[]);
    }
}
