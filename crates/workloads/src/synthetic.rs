//! Seeded synthetic streaming applications.
//!
//! Applications are generated so that they always pass
//! [`ApplicationSpec::validate`]: every process gets an implementation for
//! its *preferred* tile kind (cheap, specialized) and, with configurable
//! probability, alternatives on other kinds (more expensive, in the spirit
//! of Table 1's ARM-vs-MONTIUM gap). Rates are consistent by construction.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rtsm_app::{
    ApplicationSpec, Endpoint, Implementation, ImplementationLibrary, ProcessGraph, ProcessId,
    QosSpec,
};
use rtsm_dataflow::PhaseVec;
use rtsm_platform::TileKind;

/// Topology of the generated KPN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphShape {
    /// A straight pipeline (the dominant streaming-DSP shape).
    Chain,
    /// A fork of `width` parallel branches between a splitter and a joiner.
    ForkJoin {
        /// Number of parallel branches (≥ 1).
        width: usize,
    },
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// RNG seed (generation is fully deterministic per seed).
    pub seed: u64,
    /// Number of data-stream processes.
    pub n_processes: usize,
    /// Graph topology.
    pub shape: GraphShape,
    /// Tile kinds implementations may target; the first entry is every
    /// process's *preferred* (cheapest) kind unless the RNG diversifies.
    pub tile_kinds: Vec<TileKind>,
    /// Probability that a process has an implementation for each
    /// non-preferred kind.
    pub alt_impl_probability: f64,
    /// Application period in picoseconds.
    pub period_ps: u64,
    /// Inclusive range of per-channel tokens per period.
    pub tokens_range: (u64, u64),
    /// Inclusive range of total WCET cycles per period for the preferred
    /// implementation; alternatives are scaled up.
    pub wcet_range: (u64, u64),
    /// Energy (pJ/period) range for preferred implementations.
    pub energy_range: (u64, u64),
    /// Energy multiplier for non-preferred implementations (×1000, e.g.
    /// 1900 ≈ the paper's ARM/MONTIUM gap of ~1.9×).
    pub alt_energy_factor_milli: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            seed: 1,
            n_processes: 6,
            shape: GraphShape::Chain,
            tile_kinds: vec![TileKind::Montium, TileKind::Arm],
            alt_impl_probability: 0.8,
            period_ps: 4_000_000,
            tokens_range: (8, 64),
            wcet_range: (60, 500),
            energy_range: (20_000, 150_000),
            alt_energy_factor_milli: 1900,
        }
    }
}

fn phase_split(rng: &mut StdRng, total: u64, max_phases: u32) -> PhaseVec {
    let phases = rng.random_range(1..=max_phases.min(total.max(1) as u32)) as u64;
    // Bresenham-even split keeps totals exact.
    let q = total / phases;
    let r = total % phases;
    let values: Vec<u64> = (0..phases).map(|i| q + u64::from(i < r)).collect();
    PhaseVec::from_slice(&values)
}

fn wcet_vec(rng: &mut StdRng, total: u64, phases: usize) -> PhaseVec {
    // Random positive split of `total` cycles over exactly `phases` phases.
    let mut remaining = total.max(phases as u64);
    let mut values = Vec::with_capacity(phases);
    for i in 0..phases {
        let left = (phases - i - 1) as u64;
        let max_here = remaining - left; // leave ≥1 per remaining phase
        let v = if left == 0 {
            remaining
        } else {
            rng.random_range(1..=max_here.max(1))
        };
        values.push(v);
        remaining -= v;
    }
    PhaseVec::from_slice(&values)
}

/// Generates one synthetic application.
///
/// # Panics
///
/// Panics if `config.n_processes` is 0 or `tile_kinds` is empty. The
/// returned spec always validates (asserted in tests over many seeds).
#[allow(clippy::needless_range_loop)] // branch indices double as process ids
pub fn synthetic_app(config: &SyntheticConfig) -> ApplicationSpec {
    assert!(config.n_processes >= 1, "need at least one process");
    assert!(!config.tile_kinds.is_empty(), "need at least one tile kind");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut graph = ProcessGraph::new();

    let processes: Vec<ProcessId> = (0..config.n_processes)
        .map(|i| graph.add_process_abbrev(format!("proc{i}"), format!("p{i}")))
        .collect();

    let tok = |rng: &mut StdRng| rng.random_range(config.tokens_range.0..=config.tokens_range.1);

    // Wire the topology.
    match config.shape {
        GraphShape::Chain => {
            graph
                .add_channel(Endpoint::StreamInput, Endpoint::Process(processes[0]), {
                    tok(&mut rng)
                })
                .expect("valid endpoints");
            for pair in processes.windows(2) {
                graph
                    .add_channel(Endpoint::Process(pair[0]), Endpoint::Process(pair[1]), {
                        tok(&mut rng)
                    })
                    .expect("valid endpoints");
            }
            graph
                .add_channel(
                    Endpoint::Process(processes[config.n_processes - 1]),
                    Endpoint::StreamOutput,
                    tok(&mut rng),
                )
                .expect("valid endpoints");
        }
        GraphShape::ForkJoin { width } => {
            let width = width.clamp(1, config.n_processes.saturating_sub(2).max(1));
            // processes[0] splits, processes[1..=width] are branches, the
            // rest form a tail chain after the join.
            graph
                .add_channel(Endpoint::StreamInput, Endpoint::Process(processes[0]), {
                    tok(&mut rng)
                })
                .expect("valid endpoints");
            let join_index = width + 1;
            for b in 1..=width {
                graph
                    .add_channel(
                        Endpoint::Process(processes[0]),
                        Endpoint::Process(processes[b]),
                        tok(&mut rng),
                    )
                    .expect("valid endpoints");
                if join_index < config.n_processes {
                    graph
                        .add_channel(
                            Endpoint::Process(processes[b]),
                            Endpoint::Process(processes[join_index]),
                            tok(&mut rng),
                        )
                        .expect("valid endpoints");
                }
            }
            if join_index < config.n_processes {
                for pair in processes[join_index..].windows(2) {
                    graph
                        .add_channel(Endpoint::Process(pair[0]), Endpoint::Process(pair[1]), {
                            tok(&mut rng)
                        })
                        .expect("valid endpoints");
                }
                graph
                    .add_channel(
                        Endpoint::Process(processes[config.n_processes - 1]),
                        Endpoint::StreamOutput,
                        tok(&mut rng),
                    )
                    .expect("valid endpoints");
            } else {
                for b in 1..=width {
                    graph
                        .add_channel(Endpoint::Process(processes[b]), Endpoint::StreamOutput, {
                            tok(&mut rng)
                        })
                        .expect("valid endpoints");
                }
            }
        }
    }

    // Implementation library: single-cycle-per-period actors whose rate
    // totals equal the channel traffic (consistent by construction).
    let mut library = ImplementationLibrary::new();
    for &pid in &processes {
        let inputs = graph.inputs_of(pid);
        let outputs = graph.outputs_of(pid);
        let preferred_wcet = rng.random_range(config.wcet_range.0..=config.wcet_range.1);
        let preferred_energy = rng.random_range(config.energy_range.0..=config.energy_range.1);
        for (k, &kind) in config.tile_kinds.iter().enumerate() {
            let preferred = k == 0;
            if !preferred && !rng.random_bool(config.alt_impl_probability) {
                continue;
            }
            // Alternatives are slower and hungrier, like Table 1's ARM rows.
            let wcet_total = if preferred {
                preferred_wcet
            } else {
                preferred_wcet + rng.random_range(0..=preferred_wcet)
            };
            let energy = if preferred {
                preferred_energy
            } else {
                preferred_energy * config.alt_energy_factor_milli / 1000
            };
            // Phase structure: split one input's tokens into phases and
            // align every port to that phase count.
            let phases = if let Some(first) = inputs.first() {
                phase_split(&mut rng, graph.channel(*first).tokens_per_period, 6).len()
            } else if let Some(first) = outputs.first() {
                phase_split(&mut rng, graph.channel(*first).tokens_per_period, 6).len()
            } else {
                1
            };
            let rate_vec = |total: u64| {
                let q = total / phases as u64;
                let r = total % phases as u64;
                let values: Vec<u64> = (0..phases as u64).map(|i| q + u64::from(i < r)).collect();
                PhaseVec::from_slice(&values)
            };
            let implementation = Implementation {
                name: format!("{} @ {kind}", graph.process(pid).name),
                tile_kind: kind,
                wcet: wcet_vec(&mut rng, wcet_total, phases),
                inputs: inputs
                    .iter()
                    .map(|c| rate_vec(graph.channel(*c).tokens_per_period))
                    .collect(),
                outputs: outputs
                    .iter()
                    .map(|c| rate_vec(graph.channel(*c).tokens_per_period))
                    .collect(),
                energy_pj_per_period: energy,
                memory_bytes: rng.random_range(1024..=8192),
            };
            library.register(pid, implementation);
        }
    }

    ApplicationSpec {
        name: format!(
            "synthetic-{:?}-n{}-s{}",
            config.shape, config.n_processes, config.seed
        ),
        graph,
        qos: QosSpec::with_period(config.period_ps),
        library,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chains_validate_across_seeds() {
        for seed in 0..50 {
            let spec = synthetic_app(&SyntheticConfig {
                seed,
                ..SyntheticConfig::default()
            });
            assert_eq!(spec.validate(), Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn fork_joins_validate_across_seeds() {
        for seed in 0..50 {
            let spec = synthetic_app(&SyntheticConfig {
                seed,
                n_processes: 7,
                shape: GraphShape::ForkJoin { width: 3 },
                ..SyntheticConfig::default()
            });
            assert_eq!(spec.validate(), Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = synthetic_app(&SyntheticConfig::default());
        let b = synthetic_app(&SyntheticConfig::default());
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.library, b.library);
    }

    #[test]
    fn every_process_has_a_preferred_implementation() {
        let spec = synthetic_app(&SyntheticConfig {
            seed: 7,
            alt_impl_probability: 0.0,
            ..SyntheticConfig::default()
        });
        for (pid, _) in spec.graph.stream_processes() {
            let impls = spec.library.impls_for(pid);
            assert_eq!(impls.len(), 1);
            assert_eq!(impls[0].tile_kind, TileKind::Montium);
        }
    }

    #[test]
    fn alternatives_cost_more() {
        let spec = synthetic_app(&SyntheticConfig {
            seed: 3,
            alt_impl_probability: 1.0,
            ..SyntheticConfig::default()
        });
        for (pid, _) in spec.graph.stream_processes() {
            let impls = spec.library.impls_for(pid);
            assert_eq!(impls.len(), 2);
            assert!(impls[1].energy_pj_per_period > impls[0].energy_pj_per_period);
        }
    }
}
