//! Constructed realistic streaming-DSP applications.
//!
//! These are the "more complex real-life examples" the paper's §5 asks
//! benchmarks for. Each is a pipeline in the same ALS format as the
//! HIPERLAN/2 receiver: per stage a specialized (MONTIUM or DSP) and a
//! general-purpose (ARM) implementation in a read–compute–write CSDF shape
//! (like Table 1's ARM rows). Token counts follow the algorithms'
//! block sizes; WCET and energy figures are *representative constructions*,
//! not measurements — they preserve the paper's structure (specialized
//! implementations ≈2× cheaper in energy, faster in cycles).

use rtsm_app::{
    ApplicationSpec, Endpoint, Implementation, ImplementationLibrary, ProcessGraph, QosSpec,
};
use rtsm_dataflow::PhaseVec;
use rtsm_platform::TileKind;

/// One pipeline stage description.
struct Stage {
    name: &'static str,
    short: &'static str,
    /// Tokens produced towards the next stage (per period).
    out_tokens: u64,
    /// `(kind, wcet_cycles_per_period, energy_nj)` per implementation; the
    /// first entry is the preferred one.
    impls: &'static [(TileKind, u64, u64)],
}

/// Builds a chain application: `StreamInput -(in_tokens)-> s1 -> … -> sn
/// -(last out_tokens)-> StreamOutput`.
fn chain_app(name: &str, period_ps: u64, in_tokens: u64, stages: &[Stage]) -> ApplicationSpec {
    let mut graph = ProcessGraph::new();
    let ids: Vec<_> = stages
        .iter()
        .map(|s| graph.add_process_abbrev(s.name, s.short))
        .collect();
    let mut inputs = vec![in_tokens];
    for s in stages.iter().take(stages.len() - 1) {
        inputs.push(s.out_tokens);
    }
    graph
        .add_channel(Endpoint::StreamInput, Endpoint::Process(ids[0]), in_tokens)
        .expect("valid endpoints");
    for (i, pair) in ids.windows(2).enumerate() {
        graph
            .add_channel(
                Endpoint::Process(pair[0]),
                Endpoint::Process(pair[1]),
                stages[i].out_tokens,
            )
            .expect("valid endpoints");
    }
    graph
        .add_channel(
            Endpoint::Process(ids[ids.len() - 1]),
            Endpoint::StreamOutput,
            stages[stages.len() - 1].out_tokens,
        )
        .expect("valid endpoints");

    let mut library = ImplementationLibrary::new();
    for (i, stage) in stages.iter().enumerate() {
        let t_in = inputs[i];
        let t_out = stage.out_tokens;
        for &(kind, wcet, energy_nj) in stage.impls {
            // Read–compute–write: ⟨in,0,0⟩ / ⟨0,0,out⟩ with the WCET split
            // 10% / 80% / 10% (at least 1 cycle per phase).
            let read = (wcet / 10).max(1);
            let write = (wcet / 10).max(1);
            let compute = wcet.saturating_sub(read + write).max(1);
            library.register(
                ids[i],
                Implementation::simple(
                    format!("{} @ {kind}", stage.name),
                    kind,
                    PhaseVec::from_slice(&[read, compute, write]),
                    PhaseVec::from_slice(&[t_in, 0, 0]),
                    PhaseVec::from_slice(&[0, 0, t_out]),
                    energy_nj * 1000,
                    match kind {
                        TileKind::Arm => 8 * 1024,
                        _ => 2 * 1024,
                    },
                ),
            );
        }
    }

    ApplicationSpec {
        name: name.to_string(),
        graph,
        qos: QosSpec::with_period(period_ps),
        library,
    }
}

/// An IEEE 802.11a OFDM transmitter: scrambler → convolutional encoder →
/// interleaver → QPSK mapper → IFFT → cyclic-prefix insertion. One OFDM
/// symbol every 4 µs.
pub fn wlan_tx() -> ApplicationSpec {
    const M: TileKind = TileKind::Montium;
    const A: TileKind = TileKind::Arm;
    chain_app(
        "802.11a transmitter",
        4_000_000,
        12, // 48 data bytes per symbol at QPSK½, as 32-bit words
        &[
            Stage {
                name: "Scrambler",
                short: "Scrm.",
                out_tokens: 12,
                impls: &[(M, 40, 18), (A, 90, 35)],
            },
            Stage {
                name: "Conv. encoder",
                short: "Enc.",
                out_tokens: 24,
                impls: &[(M, 80, 30), (A, 200, 60)],
            },
            Stage {
                name: "Interleaver",
                short: "Intl.",
                out_tokens: 24,
                impls: &[(M, 60, 22), (A, 150, 45)],
            },
            Stage {
                name: "QPSK mapper",
                short: "Map.",
                out_tokens: 48,
                impls: &[(M, 70, 26), (A, 160, 50)],
            },
            Stage {
                name: "IFFT-64",
                short: "IFFT",
                out_tokens: 64,
                impls: &[(M, 290, 140), (A, 760, 270)],
            },
            Stage {
                name: "Cyclic prefix",
                short: "CP",
                out_tokens: 80,
                impls: &[(M, 90, 30), (A, 180, 55)],
            },
        ],
    )
}

/// A (scaled) DVB-T inner receiver: symbol sync → FFT → channel equalizer →
/// symbol demapper → inner deinterleaver → Viterbi decoder. One (scaled)
/// OFDM symbol every 224 µs; token counts scaled 1:8 from the 2k mode to
/// keep analyses fast (documented substitution).
pub fn dvbt_rx() -> ApplicationSpec {
    const M: TileKind = TileKind::Montium;
    const A: TileKind = TileKind::Arm;
    const D: TileKind = TileKind::Dsp;
    chain_app(
        "DVB-T inner receiver (2k/8 scale)",
        224_000_000,
        256,
        &[
            Stage {
                name: "Symbol sync",
                short: "Sync",
                out_tokens: 256,
                impls: &[(M, 1200, 110), (A, 2600, 240)],
            },
            Stage {
                name: "FFT-256",
                short: "FFT",
                out_tokens: 256,
                impls: &[(M, 2100, 420), (D, 2600, 500), (A, 6400, 950)],
            },
            Stage {
                name: "Equalizer",
                short: "Eq.",
                out_tokens: 192,
                impls: &[(M, 1500, 260), (A, 3400, 520)],
            },
            Stage {
                name: "Demapper",
                short: "Dmap",
                out_tokens: 96,
                impls: &[(M, 900, 150), (A, 2000, 310)],
            },
            Stage {
                name: "Deinterleaver",
                short: "Dint",
                out_tokens: 96,
                impls: &[(A, 1400, 180), (D, 800, 95)],
            },
            Stage {
                name: "Viterbi",
                short: "Vit.",
                out_tokens: 48,
                impls: &[(D, 5200, 800), (A, 16000, 2400)],
            },
        ],
    )
}

/// An MP3 decoder back-end: Huffman decode → requantize → stereo → IMDCT →
/// synthesis filterbank. One granule every 13.06 ms; 1:3-scaled token
/// counts (192 of 576 samples) keep analyses fast.
pub fn mp3_decoder() -> ApplicationSpec {
    const A: TileKind = TileKind::Arm;
    const D: TileKind = TileKind::Dsp;
    chain_app(
        "MP3 decoder (1/3 scale)",
        13_060_000_000,
        64,
        &[
            Stage {
                name: "Huffman decode",
                short: "Huff",
                out_tokens: 192,
                impls: &[(A, 9000, 700)], // inherently control-heavy: ARM only
            },
            Stage {
                name: "Requantize",
                short: "Rq.",
                out_tokens: 192,
                impls: &[(D, 4000, 380), (A, 9500, 760)],
            },
            Stage {
                name: "Stereo",
                short: "St.",
                out_tokens: 192,
                impls: &[(D, 2200, 210), (A, 5200, 430)],
            },
            Stage {
                name: "IMDCT",
                short: "IMDCT",
                out_tokens: 192,
                impls: &[(D, 7800, 900), (A, 21000, 2300)],
            },
            Stage {
                name: "Synthesis filterbank",
                short: "Syn.",
                out_tokens: 192,
                impls: &[(D, 10200, 1200), (A, 27000, 3100)],
            },
        ],
    )
}

/// A JPEG encoder pipeline: colour conversion → 8×8 DCT → quantization →
/// zig-zag + RLE → Huffman coding, one 8×8 block (64 words) per 50 µs.
pub fn jpeg_encoder() -> ApplicationSpec {
    const M: TileKind = TileKind::Montium;
    const A: TileKind = TileKind::Arm;
    chain_app(
        "JPEG encoder",
        50_000_000,
        64,
        &[
            Stage {
                name: "Colour conversion",
                short: "CC",
                out_tokens: 64,
                impls: &[(M, 400, 60), (A, 900, 120)],
            },
            Stage {
                name: "DCT-8x8",
                short: "DCT",
                out_tokens: 64,
                impls: &[(M, 1100, 210), (A, 3100, 520)],
            },
            Stage {
                name: "Quantizer",
                short: "Q",
                out_tokens: 64,
                impls: &[(M, 300, 45), (A, 700, 95)],
            },
            Stage {
                name: "ZigZag+RLE",
                short: "ZZ",
                out_tokens: 32,
                impls: &[(A, 800, 100), (M, 500, 55)],
            },
            Stage {
                name: "Huffman coding",
                short: "Huff",
                out_tokens: 16,
                impls: &[(A, 1500, 190)],
            },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_constructed_apps_validate() {
        for (app, stages) in [
            (wlan_tx(), 6),
            (dvbt_rx(), 6),
            (mp3_decoder(), 5),
            (jpeg_encoder(), 5),
        ] {
            assert_eq!(app.validate(), Ok(()), "{}", app.name);
            assert_eq!(app.graph.stream_processes().count(), stages, "{}", app.name);
        }
    }

    #[test]
    fn specialized_implementations_are_cheaper() {
        let app = wlan_tx();
        for (pid, _) in app.graph.stream_processes() {
            let impls = app.library.impls_for(pid);
            if impls.len() >= 2 {
                assert!(impls[0].energy_pj_per_period < impls[1].energy_pj_per_period);
            }
        }
    }

    #[test]
    fn wlan_tx_fits_montium_budget() {
        // All MONTIUM implementations fit the 800-cycle 4 µs budget.
        let app = wlan_tx();
        for (pid, _) in app.graph.stream_processes() {
            if let Some(m) = app.library.impl_for(pid, TileKind::Montium) {
                let cycles = app.cycles_per_period(pid, m);
                assert!(m.wcet_per_period(cycles) <= 800, "{}", m.name);
            }
        }
    }

    #[test]
    fn token_ladders_match_block_sizes() {
        let jpeg = jpeg_encoder();
        let traffic: Vec<u64> = jpeg
            .graph
            .stream_channels()
            .map(|(_, c)| c.tokens_per_period)
            .collect();
        assert_eq!(traffic, vec![64, 64, 64, 64, 32, 16]);
    }
}
