//! Multi-application run-time scenarios.
//!
//! The paper's motivation (§1.3): "at run-time when starting an
//! application, the actual set of applications already running is known,
//! allowing for a spatial mapping based on actual, rather than worst case
//! information." A scenario is a *scripted* sequence of application starts
//! and stops, replayed through a [`RuntimeManager`] against one shared
//! occupancy ledger.
//!
//! # Stop semantics
//!
//! Scripts are written before anything runs, so stop events cannot name
//! run-time [`AppHandle`]s directly. Instead, [`AppEvent::Stop`] carries an
//! [`AppId`]: the 0-based ordinal of the `Start` event (counting only
//! `Start` events, in script order) whose application should stop. The
//! replay records the handle each admission produced and resolves ids to
//! handles at stop time. This is stable under churn — unlike the previous
//! positional scheme ("the n-th *still-running* app"), an id keeps naming
//! the same application no matter how many others started or stopped in
//! between. Stopping an id whose start was rejected, that already stopped,
//! or that is out of range is counted in
//! [`ScenarioOutcome::ignored_stops`] and otherwise ignored.

use rtsm_app::ApplicationSpec;
use rtsm_core::runtime::{
    AdmissionError, AdmissionErrorKind, AppHandle, RuntimeError, RuntimeManager,
};
use rtsm_core::{MappingAlgorithm, MappingOutcome};
use rtsm_platform::{Platform, PlatformState};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Names the application started by the `id`-th `Start` event of a
/// scenario script (0-based, counting only `Start` events).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AppId(pub usize);

/// One event of a scenario.
#[derive(Debug, Clone)]
pub enum AppEvent {
    /// Start the application with this spec (admitted if a feasible
    /// mapping exists *now*).
    Start(Box<ApplicationSpec>),
    /// Stop the application started by the [`AppId`]-th `Start` event,
    /// releasing its resources (see the module docs for the exact
    /// semantics).
    Stop(AppId),
}

impl AppEvent {
    /// Convenience constructor: a start event.
    pub fn start(spec: ApplicationSpec) -> Self {
        AppEvent::Start(Box::new(spec))
    }

    /// Convenience constructor: a stop event for the `id`-th start.
    pub fn stop(id: usize) -> Self {
        AppEvent::Stop(AppId(id))
    }
}

/// Outcome of replaying a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Applications admitted with a feasible mapping.
    pub admitted: usize,
    /// Start requests rejected (no feasible mapping at that moment).
    pub rejected: usize,
    /// *Why* each rejected start was rejected: the [`AppId`] of the start
    /// event and the [`AdmissionErrorKind`] discriminant, in script order.
    /// `rejections.len() == rejected` always holds, so scripted scenarios
    /// report the same rejection-reason data as simulated workloads.
    pub rejections: Vec<(AppId, AdmissionErrorKind)>,
    /// Stop events that named no running application (rejected start,
    /// double stop, or out-of-range id).
    pub ignored_stops: usize,
    /// Total energy of the applications running at the end, pJ/period.
    pub running_energy_pj: u64,
    /// The applications still running at the end, in admission order.
    pub running: Vec<(ApplicationSpec, MappingOutcome)>,
    /// Final platform occupancy.
    pub final_state: PlatformState,
}

impl ScenarioOutcome {
    /// Rejection counts keyed by [`AdmissionErrorKind`] — the same shape a
    /// simulation's rejection histogram has, so scripted and simulated runs
    /// are directly comparable.
    pub fn rejection_histogram(&self) -> BTreeMap<AdmissionErrorKind, u64> {
        let mut histogram = BTreeMap::new();
        for (_, kind) in &self.rejections {
            *histogram.entry(*kind).or_insert(0) += 1;
        }
        histogram
    }

    /// The compact, persistence-friendly summary of this outcome.
    pub fn summary(&self) -> ScenarioSummary {
        ScenarioSummary {
            admitted: self.admitted,
            rejected: self.rejected,
            ignored_stops: self.ignored_stops,
            still_running: self.running.len(),
            running_energy_pj: self.running_energy_pj,
        }
    }
}

/// The headline numbers of a [`ScenarioOutcome`], for benchmark records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioSummary {
    /// Applications admitted.
    pub admitted: usize,
    /// Start requests rejected.
    pub rejected: usize,
    /// Stop events that named no running application.
    pub ignored_stops: usize,
    /// Applications still running at the end.
    pub still_running: usize,
    /// Energy of the still-running applications, pJ/period.
    pub running_energy_pj: u64,
}

/// Replays `events` on an empty `platform`, admitting every start through
/// `algorithm` — a thin scripting layer over [`RuntimeManager`].
///
/// Rejected starts are counted, not errors: rejection under load is the
/// scenario's subject matter. Errors that indicate a *broken* replay —
/// a commit or release failing against the manager's own ledger — are
/// propagated instead of panicking.
///
/// # Errors
///
/// [`AdmissionError::CommitFailed`] / [`RuntimeError::ReleaseFailed`] if
/// the ledger rejects a commit or release (impossible unless the platform
/// state is mutated outside the replay — a bug, reported not panicked).
pub fn run_scenario<A: MappingAlgorithm>(
    platform: &Platform,
    events: Vec<AppEvent>,
    algorithm: A,
) -> Result<ScenarioOutcome, RuntimeError> {
    let mut manager = RuntimeManager::new(platform.clone(), algorithm);
    // Handle of each Start event, in script order; `None` once stopped or
    // when the start was rejected.
    let mut handles: Vec<Option<AppHandle>> = Vec::new();
    let mut admitted = 0;
    let mut rejected = 0;
    let mut rejections = Vec::new();
    let mut ignored_stops = 0;

    for event in events {
        match event {
            AppEvent::Start(spec) => match manager.start(*spec) {
                Ok(handle) => {
                    handles.push(Some(handle));
                    admitted += 1;
                }
                Err(err @ AdmissionError::Rejected(_)) => {
                    rejections.push((AppId(handles.len()), err.kind()));
                    handles.push(None);
                    rejected += 1;
                }
                Err(fatal) => return Err(fatal.into()),
            },
            AppEvent::Stop(AppId(id)) => match handles.get_mut(id).and_then(Option::take) {
                Some(handle) => match manager.stop(handle) {
                    Ok(_) => {}
                    Err(RuntimeError::UnknownHandle(_)) => ignored_stops += 1,
                    Err(fatal) => return Err(fatal),
                },
                None => ignored_stops += 1,
            },
        }
    }

    let running_energy_pj = manager.running_energy_pj();
    let (final_state, still_running) = manager.into_parts();
    Ok(ScenarioOutcome {
        admitted,
        rejected,
        rejections,
        ignored_stops,
        running_energy_pj,
        running: still_running
            .into_iter()
            // The serialized outcome owns its spec; unwrap the shared
            // handle (cloning only when another handle is still alive).
            .map(|(_, app)| {
                (
                    std::sync::Arc::try_unwrap(app.spec).unwrap_or_else(|arc| (*arc).clone()),
                    app.outcome,
                )
            })
            .collect(),
        final_state,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
    use rtsm_core::{MapperConfig, SpatialMapper};
    use rtsm_platform::paper::paper_platform;

    #[test]
    fn second_receiver_rejected_then_admitted_after_stop() {
        // The paper platform has exactly two MONTIUMs: one receiver claims
        // both, so a second is rejected — until the first stops.
        let platform = paper_platform();
        let spec = || AppEvent::start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34));
        let outcome = run_scenario(
            &platform,
            vec![
                spec(),
                spec(), // rejected: MONTIUMs taken
                AppEvent::stop(0),
                spec(), // admitted again
            ],
            SpatialMapper::new(MapperConfig::default()),
        )
        .expect("replay never breaks its own ledger");
        assert_eq!(outcome.admitted, 2);
        assert_eq!(outcome.rejected, 1);
        assert_eq!(outcome.running.len(), 1);
        assert_eq!(outcome.summary().still_running, 1);
        // The rejection names the second start (id 1) and says why.
        assert_eq!(outcome.rejections.len(), 1);
        let (id, kind) = outcome.rejections[0];
        assert_eq!(id, AppId(1));
        assert!(matches!(kind, AdmissionErrorKind::Rejected(_)));
        assert_eq!(outcome.rejection_histogram().get(&kind), Some(&1));
    }

    #[test]
    fn stopping_everything_restores_the_empty_ledger() {
        let platform = paper_platform();
        let outcome = run_scenario(
            &platform,
            vec![
                AppEvent::start(hiperlan2_receiver(Hiperlan2Mode::Bpsk12)),
                AppEvent::stop(0),
            ],
            SpatialMapper::default(),
        )
        .unwrap();
        assert_eq!(outcome.running.len(), 0);
        assert_eq!(outcome.final_state, platform.initial_state());
    }

    #[test]
    fn stop_with_bad_id_is_counted_and_ignored() {
        let platform = paper_platform();
        let outcome =
            run_scenario(&platform, vec![AppEvent::stop(3)], SpatialMapper::default()).unwrap();
        assert_eq!(outcome.admitted, 0);
        assert_eq!(outcome.rejected, 0);
        assert_eq!(outcome.ignored_stops, 1);
    }

    #[test]
    fn stop_ids_are_stable_under_churn() {
        // Start A, start B (rejected), stop A, start C, stop id 1 (the
        // rejected B — ignored), stop id 2 (C). With the old positional
        // scheme, "stop 1" after A stopped would have hit C.
        let platform = paper_platform();
        let spec = || AppEvent::start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34));
        let outcome = run_scenario(
            &platform,
            vec![
                spec(),            // id 0: admitted
                spec(),            // id 1: rejected
                AppEvent::stop(0), // A leaves
                spec(),            // id 2: admitted
                AppEvent::stop(1), // names the rejected start: ignored
                AppEvent::stop(2), // names C precisely
            ],
            SpatialMapper::default(),
        )
        .unwrap();
        assert_eq!(outcome.admitted, 2);
        assert_eq!(outcome.rejected, 1);
        assert_eq!(outcome.ignored_stops, 1);
        assert_eq!(outcome.running.len(), 0);
        assert_eq!(outcome.final_state, platform.initial_state());
    }

    #[test]
    fn double_stop_is_ignored() {
        let platform = paper_platform();
        let outcome = run_scenario(
            &platform,
            vec![
                AppEvent::start(hiperlan2_receiver(Hiperlan2Mode::Bpsk12)),
                AppEvent::stop(0),
                AppEvent::stop(0),
            ],
            SpatialMapper::default(),
        )
        .unwrap();
        assert_eq!(outcome.admitted, 1);
        assert_eq!(outcome.ignored_stops, 1);
        assert_eq!(outcome.final_state, platform.initial_state());
    }

    #[test]
    fn scenario_runs_with_a_baseline_algorithm_too() {
        // The replay layer is generic over the algorithm: run the same
        // script through a boxed trait object.
        let platform = paper_platform();
        let algorithm: Box<dyn MappingAlgorithm> = Box::new(SpatialMapper::default());
        let outcome = run_scenario(
            &platform,
            vec![
                AppEvent::start(hiperlan2_receiver(Hiperlan2Mode::Qpsk34)),
                AppEvent::stop(0),
            ],
            algorithm,
        )
        .unwrap();
        assert_eq!(outcome.admitted, 1);
        assert_eq!(outcome.final_state, platform.initial_state());
    }
}
