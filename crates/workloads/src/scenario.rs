//! Multi-application run-time scenarios.
//!
//! The paper's motivation (§1.3): "at run-time when starting an
//! application, the actual set of applications already running is known,
//! allowing for a spatial mapping based on actual, rather than worst case
//! information." A scenario replays a sequence of application starts and
//! stops against one shared occupancy ledger.

use rtsm_app::ApplicationSpec;
use rtsm_core::{MapperConfig, MappingResult, SpatialMapper};
use rtsm_platform::{Platform, PlatformState};

/// One event of a scenario.
#[derive(Debug, Clone)]
pub enum AppEvent {
    /// Start the application with this spec (admitted if a feasible
    /// mapping exists *now*).
    Start(Box<ApplicationSpec>),
    /// Stop the `n`-th previously admitted application (0-based among
    /// still-running ones), releasing its resources.
    Stop(usize),
}

/// Outcome of replaying a scenario.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// Applications admitted with a feasible mapping.
    pub admitted: usize,
    /// Start requests rejected (no feasible mapping at that moment).
    pub rejected: usize,
    /// Total energy of the applications running at the end, pJ/period.
    pub running_energy_pj: u64,
    /// Mapping results of the applications still running at the end.
    pub running: Vec<(ApplicationSpec, MappingResult)>,
    /// Final platform occupancy.
    pub final_state: PlatformState,
}

/// Replays `events` on `platform` with a fresh mapper per start request.
pub fn run_scenario(
    platform: &Platform,
    events: Vec<AppEvent>,
    config: MapperConfig,
) -> ScenarioOutcome {
    let mapper = SpatialMapper::new(config);
    let mut state = platform.initial_state();
    let mut running: Vec<(ApplicationSpec, MappingResult)> = Vec::new();
    let mut admitted = 0;
    let mut rejected = 0;

    for event in events {
        match event {
            AppEvent::Start(spec) => match mapper.map(&spec, platform, &state) {
                Ok(result) => {
                    result
                        .commit(&spec, platform, &mut state)
                        .expect("mapper results commit onto the state they were mapped against");
                    running.push((*spec, result));
                    admitted += 1;
                }
                Err(_) => rejected += 1,
            },
            AppEvent::Stop(index) => {
                if index < running.len() {
                    let (spec, result) = running.remove(index);
                    result
                        .release(&spec, platform, &mut state)
                        .expect("running applications hold their reservations");
                }
            }
        }
    }

    let running_energy_pj = running.iter().map(|(_, r)| r.energy_pj).sum();
    ScenarioOutcome {
        admitted,
        rejected,
        running_energy_pj,
        running,
        final_state: state,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
    use rtsm_platform::paper::paper_platform;

    #[test]
    fn second_receiver_rejected_then_admitted_after_stop() {
        // The paper platform has exactly two MONTIUMs: one receiver claims
        // both, so a second is rejected — until the first stops.
        let platform = paper_platform();
        let spec = || Box::new(hiperlan2_receiver(Hiperlan2Mode::Qpsk34));
        let outcome = run_scenario(
            &platform,
            vec![
                AppEvent::Start(spec()),
                AppEvent::Start(spec()), // rejected: MONTIUMs taken
                AppEvent::Stop(0),
                AppEvent::Start(spec()), // admitted again
            ],
            MapperConfig::default(),
        );
        assert_eq!(outcome.admitted, 2);
        assert_eq!(outcome.rejected, 1);
        assert_eq!(outcome.running.len(), 1);
    }

    #[test]
    fn stopping_everything_restores_the_empty_ledger() {
        let platform = paper_platform();
        let outcome = run_scenario(
            &platform,
            vec![
                AppEvent::Start(Box::new(hiperlan2_receiver(Hiperlan2Mode::Bpsk12))),
                AppEvent::Stop(0),
            ],
            MapperConfig::default(),
        );
        assert_eq!(outcome.running.len(), 0);
        assert_eq!(outcome.final_state, platform.initial_state());
    }

    #[test]
    fn stop_with_bad_index_is_ignored() {
        let platform = paper_platform();
        let outcome = run_scenario(&platform, vec![AppEvent::Stop(3)], MapperConfig::default());
        assert_eq!(outcome.admitted, 0);
        assert_eq!(outcome.rejected, 0);
    }
}
