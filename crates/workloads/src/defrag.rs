//! The engineered fragmentation workload: applications and a platform
//! whose churn provably fragments free capacity, so defragmentation-by-
//! migration has something to recover.
//!
//! The construction is a classic bin-packing squeeze. Every ARM tile has
//! two compute slots and 64 KiB of memory; a *light* application needs one
//! slot and 24 KiB, a *heavy* one one slot and 48 KiB. Two lights share a
//! tile (48 KiB) but a light plus a heavy do not (72 KiB). Under churn the
//! lights scatter one-per-tile, leaving ~40 KiB free everywhere: plenty of
//! total memory, no single tile with 48 KiB — a heavy arrival is rejected
//! on *placement*, not capacity. Migrating one light onto another light's
//! tile frees a whole ARM and recovers the admission, which is exactly
//! what [`RuntimeManager::start_with_reconfiguration`] searches for.
//!
//! Used by the `bench_map` fragmented-admission scenario, the
//! `simulate --catalog defrag` workload, `examples/defragmentation.rs`,
//! and the transactional-invariant tests.
//!
//! [`RuntimeManager::start_with_reconfiguration`]:
//!     rtsm_core::RuntimeManager::start_with_reconfiguration

use rtsm_app::{
    ApplicationSpec, Endpoint, Implementation, ImplementationLibrary, ProcessGraph, QosSpec,
};
use rtsm_dataflow::PhaseVec;
use rtsm_platform::{Coord, NocParams, Platform, PlatformBuilder, TileKind};

/// Memory footprint of a [`defrag_light`] application, in bytes.
pub const LIGHT_MEMORY_BYTES: u64 = 24 * 1024;

/// Memory footprint of a [`defrag_heavy`] application, in bytes.
pub const HEAVY_MEMORY_BYTES: u64 = 48 * 1024;

/// Memory per ARM tile of the [`defrag_platform`], in bytes.
pub const TILE_MEMORY_BYTES: u64 = 64 * 1024;

/// Builds a 1×`n_arms + 2` strip: the A/D stream source, `n_arms` ARM
/// tiles (2 slots, [`TILE_MEMORY_BYTES`] each), and the Sink.
///
/// # Panics
///
/// Panics if `n_arms` is 0.
pub fn defrag_platform(n_arms: u16) -> Platform {
    assert!(n_arms > 0, "need at least one ARM tile");
    let mut builder = PlatformBuilder::mesh(n_arms + 2, 1)
        .noc(NocParams::default())
        .tile_defaults(200, 2, TILE_MEMORY_BYTES, 200_000_000)
        .tile("A/D", TileKind::AdcSource, Coord { x: 0, y: 0 });
    for i in 0..n_arms {
        builder = builder.tile(
            format!("ARM{}", i + 1),
            TileKind::Arm,
            Coord { x: i + 1, y: 0 },
        );
    }
    builder
        .tile(
            "Sink",
            TileKind::Sink,
            Coord {
                x: n_arms + 1,
                y: 0,
            },
        )
        .build()
        .expect("defrag strip layout is valid")
}

/// A single-process stream application with the given memory footprint.
fn pipe_app(name: &str, memory_bytes: u64) -> ApplicationSpec {
    let mut graph = ProcessGraph::new();
    let p = graph.add_process("Stage");
    graph
        .add_channel(Endpoint::StreamInput, Endpoint::Process(p), 16)
        .expect("valid channel");
    graph
        .add_channel(Endpoint::Process(p), Endpoint::StreamOutput, 16)
        .expect("valid channel");
    let mut library = ImplementationLibrary::new();
    library.register(
        p,
        Implementation::simple(
            format!("{name} @ ARM"),
            TileKind::Arm,
            PhaseVec::from_slice(&[8, 60, 8]),
            PhaseVec::from_slice(&[16, 0, 0]),
            PhaseVec::from_slice(&[0, 0, 16]),
            5_000,
            memory_bytes,
        ),
    );
    ApplicationSpec {
        name: name.into(),
        graph,
        qos: QosSpec::with_period(4_000_000),
        library,
    }
}

/// The light application: one slot, [`LIGHT_MEMORY_BYTES`]. Two share an
/// ARM tile.
pub fn defrag_light() -> ApplicationSpec {
    pipe_app("defrag light", LIGHT_MEMORY_BYTES)
}

/// The heavy application: one slot, [`HEAVY_MEMORY_BYTES`]. Needs a tile
/// without a light co-tenant.
pub fn defrag_heavy() -> ApplicationSpec {
    pipe_app("defrag heavy", HEAVY_MEMORY_BYTES)
}

// The bin-packing squeeze the whole construction rests on: two lights
// share a tile, a light plus a heavy never do.
const _: () = assert!(2 * LIGHT_MEMORY_BYTES <= TILE_MEMORY_BYTES);
const _: () = assert!(LIGHT_MEMORY_BYTES + HEAVY_MEMORY_BYTES > TILE_MEMORY_BYTES);

#[cfg(test)]
mod tests {
    use super::*;
    use rtsm_core::SpatialMapper;

    #[test]
    fn apps_validate_and_map_on_the_strip() {
        let platform = defrag_platform(2);
        for spec in [defrag_light(), defrag_heavy()] {
            assert_eq!(spec.validate(), Ok(()));
            SpatialMapper::default()
                .map(&spec, &platform, &platform.initial_state())
                .expect("fits an empty strip");
        }
    }
}
