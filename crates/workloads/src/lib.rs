//! Workload suite for the run-time spatial mapper.
//!
//! The paper's future-work section (§5) calls for benchmarks with "far more
//! complex real-life examples than the HIPERLAN/2 case … and synthetic
//! cases based on the class of applications that can reasonably be expected
//! for MPSOCs in the future". This crate provides both:
//!
//! * [`synthetic`] — seeded random streaming applications (chains and
//!   fork-join graphs with per-tile-type implementation libraries) and
//! * [`platforms`] — seeded mesh platforms with configurable tile mixes;
//! * [`apps`] — constructed realistic DSP applications (802.11a
//!   transmitter, DVB-T receiver, MP3 decoder, JPEG encoder) in the same
//!   ALS format as the paper's HIPERLAN/2 receiver;
//! * [`scenario`] — multi-application run-time scenarios: applications
//!   arrive and depart on a shared platform, exercising the occupancy
//!   ledger that motivates run-time mapping (§1.3);
//! * [`defrag`] — the engineered fragmentation workload whose churn
//!   provably strands free capacity, used to measure
//!   defragmentation-by-migration.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod apps;
pub mod defrag;
pub mod platforms;
pub mod scenario;
pub mod synthetic;

pub use defrag::{defrag_heavy, defrag_light, defrag_platform};
pub use platforms::mesh_platform;
pub use scenario::{run_scenario, AppEvent, AppId, ScenarioOutcome, ScenarioSummary};
pub use synthetic::{synthetic_app, GraphShape, SyntheticConfig};
