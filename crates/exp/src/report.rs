//! Sealed aggregate tables and Pareto fronts: the [`ExperimentReport`].
//!
//! [`aggregate`] groups trial records by (catalog, algorithm, mean_gap,
//! policy) — repeats and seeds collapse into across-seed summaries with
//! 95% confidence intervals — and traces, per catalog, the Pareto front
//! over (blocking, energy per admitted): the harness-scale version of
//! the paper's quality-of-mapping trade-off. Groups appear in
//! first-seen trial-id order, front points in (blocking, energy) order,
//! so the sealed report is byte-identical for a given record stream.

use crate::spec::ExperimentSpec;
use crate::stats::{summarize, StatSummary};
use crate::trial::TrialRecord;
use rtsm_obs::LatencyHistogram;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Schema marker of the sealed report format.
pub const REPORT_SCHEMA: &str = "rtsm-exp-report/1";

/// One aggregated cell of the sweep matrix: every seed × repeat of one
/// (catalog, algorithm, mean_gap, policy) configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggregateRow {
    /// Catalog name.
    pub catalog: String,
    /// Algorithm short name.
    pub algorithm: String,
    /// Poisson mean inter-arrival gap, ticks.
    pub mean_gap: u64,
    /// Admission-policy label.
    pub policy: String,
    /// Trials aggregated into this row (seeds × repeats).
    pub trials: u64,
    /// Total arrivals across the row's trials.
    pub arrivals: u64,
    /// Total admissions.
    pub admitted: u64,
    /// Total blocked arrivals.
    pub blocked: u64,
    /// Total recovered admissions (reconfiguration retries).
    pub recovered: u64,
    /// Total committed migrations.
    pub migrations_committed: u64,
    /// Total migration energy, pJ.
    pub migration_energy_pj: u64,
    /// Total feasible plans the admission policy refused.
    pub plans_refused: u64,
    /// Across-trial summary of per-trial blocking, permille.
    pub blocking_permille: StatSummary,
    /// Across-trial summary of energy per admitted application;
    /// `None` when no trial of the row admitted anything.
    pub energy_pj_ticks_per_admitted: Option<StatSummary>,
    /// Across-trial summary of the per-trial median fragmentation;
    /// `None` when no trial produced fragmentation samples.
    pub frag_p50_permille: Option<StatSummary>,
    /// Whether this row is on its catalog's Pareto front.
    pub pareto: bool,
}

/// One point of a catalog's Pareto front, minimizing mean blocking and
/// mean energy per admitted application simultaneously.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrontPoint {
    /// Algorithm short name.
    pub algorithm: String,
    /// Poisson mean inter-arrival gap, ticks.
    pub mean_gap: u64,
    /// Admission-policy label.
    pub policy: String,
    /// Mean blocking across the row's trials, permille.
    pub blocking_permille: u64,
    /// Mean energy per admitted application, pJ·ticks.
    pub energy_pj_ticks_per_admitted: u64,
    /// Total migration energy the row spent, pJ.
    pub migration_energy_pj: u64,
}

/// The non-dominated configurations of one catalog.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CatalogFront {
    /// Catalog name.
    pub catalog: String,
    /// Front points, sorted by (blocking, energy, algorithm, mean_gap,
    /// policy).
    pub points: Vec<FrontPoint>,
}

/// Wall-clock mapping latency of one (catalog, algorithm) cell of the
/// sweep, merged across every trial of the cell.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WallRow {
    /// Catalog name.
    pub catalog: String,
    /// Algorithm short name.
    pub algorithm: String,
    /// Merged admission-latency distribution of the cell's trials.
    pub map_latency: LatencyHistogram,
}

/// The explicitly **non-deterministic** wall-clock section of a report:
/// per-trial admission-latency histograms merged across the whole run
/// and per (catalog, algorithm) cell. Never part of the sealed,
/// byte-compared artifacts — the `experiment` bin only embeds it on
/// request (`--wall`), and serialization omits the field entirely when
/// absent so existing reports stay byte-identical.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WallSection {
    /// A warning to consumers: these figures vary run to run.
    pub note: String,
    /// Admission latency merged across every trial of the run.
    pub map_latency: LatencyHistogram,
    /// One row per (catalog, algorithm), in first-seen trial-id order.
    pub by_algorithm: Vec<WallRow>,
}

impl WallSection {
    /// Merges per-trial histograms (paired with their records, in
    /// trial-id order) into the overall and per-cell distributions.
    pub fn from_trials<'a>(
        trials: impl IntoIterator<Item = (&'a TrialRecord, &'a LatencyHistogram)>,
    ) -> Self {
        let mut map_latency = LatencyHistogram::new();
        let mut index: BTreeMap<(String, String), usize> = BTreeMap::new();
        let mut by_algorithm: Vec<WallRow> = Vec::new();
        for (record, hist) in trials {
            map_latency.merge(hist);
            let key = (record.catalog.clone(), record.algorithm.clone());
            match index.get(&key) {
                Some(&pos) => by_algorithm[pos].map_latency.merge(hist),
                None => {
                    index.insert(key, by_algorithm.len());
                    by_algorithm.push(WallRow {
                        catalog: record.catalog.clone(),
                        algorithm: record.algorithm.clone(),
                        map_latency: hist.clone(),
                    });
                }
            }
        }
        WallSection {
            note: "wall-clock latency: NOT deterministic, varies run to run".to_string(),
            map_latency,
            by_algorithm,
        }
    }
}

/// The sealed result of one experiment: the spec it ran, totals,
/// aggregate tables, Pareto fronts, and the FNV-1a digest of the JSONL
/// record stream. Worker count and wall-clock never appear here — the
/// report is byte-identical for a given spec. The one exception is the
/// opt-in [`wall`](ExperimentReport::wall) section, which is clearly
/// marked non-deterministic and **omitted** from serialization when
/// `None`, so reports without it keep their historical byte shape.
#[derive(Debug, Clone, PartialEq, Eq, Deserialize)]
pub struct ExperimentReport {
    /// Report format marker ([`REPORT_SCHEMA`]).
    pub schema: String,
    /// Experiment name from the spec.
    pub name: String,
    /// The spec that produced this report, embedded verbatim.
    pub spec: ExperimentSpec,
    /// Trials executed.
    pub n_trials: u64,
    /// Total arrival events across all trials.
    pub total_arrivals: u64,
    /// Total admissions across all trials.
    pub total_admitted: u64,
    /// Total blocked arrivals across all trials.
    pub total_blocked: u64,
    /// Total recovered admissions across all trials.
    pub total_recovered: u64,
    /// One row per (catalog, algorithm, mean_gap, policy), in
    /// first-seen trial-id order.
    pub aggregates: Vec<AggregateRow>,
    /// One Pareto front per catalog, in first-seen order.
    pub pareto_fronts: Vec<CatalogFront>,
    /// FNV-1a 64 digest of the per-trial JSONL stream (each line plus
    /// its newline) — ties the sealed report to the exact records.
    pub trials_fnv1a: u64,
    /// Opt-in non-deterministic wall-clock latency section; `None` (and
    /// absent from the serialized report) unless explicitly requested.
    pub wall: Option<WallSection>,
}

// Hand-written so a `None` wall section is *omitted* rather than
// serialized as `"wall":null` — the committed experiment artifacts are
// byte-diffed by CI and must not change shape. Field order matches the
// declaration order the derive would emit.
impl Serialize for ExperimentReport {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            ("schema".to_string(), self.schema.to_value()),
            ("name".to_string(), self.name.to_value()),
            ("spec".to_string(), self.spec.to_value()),
            ("n_trials".to_string(), self.n_trials.to_value()),
            ("total_arrivals".to_string(), self.total_arrivals.to_value()),
            ("total_admitted".to_string(), self.total_admitted.to_value()),
            ("total_blocked".to_string(), self.total_blocked.to_value()),
            (
                "total_recovered".to_string(),
                self.total_recovered.to_value(),
            ),
            ("aggregates".to_string(), self.aggregates.to_value()),
            ("pareto_fronts".to_string(), self.pareto_fronts.to_value()),
            ("trials_fnv1a".to_string(), self.trials_fnv1a.to_value()),
        ];
        if let Some(wall) = &self.wall {
            entries.push(("wall".to_string(), wall.to_value()));
        }
        serde::Value::Map(entries)
    }
}

/// `a` dominates `b` when it is no worse on both objectives and
/// strictly better on at least one.
fn dominates(a: (u64, u64), b: (u64, u64)) -> bool {
    a.0 <= b.0 && a.1 <= b.1 && (a.0 < b.0 || a.1 < b.1)
}

/// Seals `records` (in trial-id order) into an [`ExperimentReport`].
pub fn aggregate(
    spec: &ExperimentSpec,
    records: &[TrialRecord],
    trials_fnv1a: u64,
) -> ExperimentReport {
    // Group in first-seen (trial-id) order; the BTreeMap only finds the
    // group index, the Vec keeps the order.
    let mut index: BTreeMap<(&str, &str, u64, &str), usize> = BTreeMap::new();
    let mut groups: Vec<Vec<&TrialRecord>> = Vec::new();
    for record in records {
        let key = (
            record.catalog.as_str(),
            record.algorithm.as_str(),
            record.mean_gap,
            record.policy.as_str(),
        );
        match index.get(&key) {
            Some(&pos) => groups[pos].push(record),
            None => {
                index.insert(key, groups.len());
                groups.push(vec![record]);
            }
        }
    }

    let mut aggregates: Vec<AggregateRow> = groups
        .iter()
        .map(|group| {
            let blocking: Vec<u64> = group.iter().map(|r| r.blocking_permille).collect();
            let energy: Vec<u64> = group
                .iter()
                .filter_map(|r| r.energy_pj_ticks_per_admitted)
                .collect();
            let frag: Vec<u64> = group.iter().filter_map(|r| r.frag_p50_permille).collect();
            let first = group[0];
            AggregateRow {
                catalog: first.catalog.clone(),
                algorithm: first.algorithm.clone(),
                mean_gap: first.mean_gap,
                policy: first.policy.clone(),
                trials: group.len() as u64,
                arrivals: group.iter().map(|r| r.arrivals).sum(),
                admitted: group.iter().map(|r| r.admitted).sum(),
                blocked: group.iter().map(|r| r.blocked).sum(),
                recovered: group.iter().map(|r| r.recovered).sum(),
                migrations_committed: group.iter().map(|r| r.migrations_committed).sum(),
                migration_energy_pj: group.iter().map(|r| r.migration_energy_pj).sum(),
                plans_refused: group.iter().map(|r| r.plans_refused).sum(),
                blocking_permille: summarize(&blocking)
                    .expect("every group holds at least one trial"),
                energy_pj_ticks_per_admitted: summarize(&energy),
                frag_p50_permille: summarize(&frag),
                pareto: false,
            }
        })
        .collect();

    // Per-catalog Pareto fronts over (mean blocking, mean energy per
    // admitted); rows that admitted nothing have no energy coordinate
    // and stay off the front.
    let mut pareto_fronts: Vec<CatalogFront> = Vec::new();
    for catalog in &spec.catalogs {
        let candidates: Vec<usize> = aggregates
            .iter()
            .enumerate()
            .filter(|(_, row)| {
                row.catalog == *catalog && row.energy_pj_ticks_per_admitted.is_some()
            })
            .map(|(i, _)| i)
            .collect();
        let coords: Vec<(usize, (u64, u64))> = candidates
            .iter()
            .map(|&i| {
                let row = &aggregates[i];
                (
                    i,
                    (
                        row.blocking_permille.mean,
                        row.energy_pj_ticks_per_admitted
                            .expect("candidates carry an energy summary")
                            .mean,
                    ),
                )
            })
            .collect();
        let winners: Vec<usize> = coords
            .iter()
            .filter(|(i, c)| !coords.iter().any(|(j, d)| j != i && dominates(*d, *c)))
            .map(|(i, _)| *i)
            .collect();
        let mut points: Vec<FrontPoint> = Vec::with_capacity(winners.len());
        for &i in &winners {
            aggregates[i].pareto = true;
            let row = &aggregates[i];
            points.push(FrontPoint {
                algorithm: row.algorithm.clone(),
                mean_gap: row.mean_gap,
                policy: row.policy.clone(),
                blocking_permille: row.blocking_permille.mean,
                energy_pj_ticks_per_admitted: row
                    .energy_pj_ticks_per_admitted
                    .expect("candidates carry an energy summary")
                    .mean,
                migration_energy_pj: row.migration_energy_pj,
            });
        }
        points.sort_by(|a, b| {
            (a.blocking_permille, a.energy_pj_ticks_per_admitted)
                .cmp(&(b.blocking_permille, b.energy_pj_ticks_per_admitted))
                .then_with(|| a.algorithm.cmp(&b.algorithm))
                .then_with(|| a.mean_gap.cmp(&b.mean_gap))
                .then_with(|| a.policy.cmp(&b.policy))
        });
        pareto_fronts.push(CatalogFront {
            catalog: catalog.clone(),
            points,
        });
    }

    ExperimentReport {
        schema: REPORT_SCHEMA.to_string(),
        name: spec.name.clone(),
        spec: spec.clone(),
        n_trials: records.len() as u64,
        total_arrivals: records.iter().map(|r| r.arrivals).sum(),
        total_admitted: records.iter().map(|r| r.admitted).sum(),
        total_blocked: records.iter().map(|r| r.blocked).sum(),
        total_recovered: records.iter().map(|r| r.recovered).sum(),
        aggregates,
        pareto_fronts,
        trials_fnv1a,
        wall: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{PolicySpec, SpecTemplate};

    fn record(
        id: u64,
        algorithm: &str,
        seed: u64,
        blocking: u64,
        energy: Option<u64>,
    ) -> TrialRecord {
        TrialRecord {
            id,
            catalog: "hiperlan2".to_string(),
            algorithm: algorithm.to_string(),
            mean_gap: 500,
            policy: "none".to_string(),
            seed,
            repeat: 0,
            trial_seed: seed,
            arrivals: 100,
            admitted: 90,
            blocked: 10,
            departures: 90,
            mode_switch_attempts: 0,
            mode_switch_admitted: 0,
            mode_switch_blocked: 0,
            blocking_permille: blocking,
            energy_pj_ticks: 1000,
            energy_pj_ticks_per_admitted: energy,
            mean_slots_permille: 400,
            frag_p50_permille: Some(100),
            frag_p90_permille: Some(200),
            frag_max_permille: Some(300),
            peak_running: 5,
            end_time: 50_000,
            evaluated_assignments: 1,
            refinement_attempts: 1,
            recovered: 0,
            migrations_committed: 0,
            migration_energy_pj: 0,
            plans_refused: 0,
            mode_switches_survived: 0,
            template_hits: None,
            template_misses: None,
            template_hit_permille: None,
            template_shapes_cached: None,
            ledger_idle_at_end: true,
        }
    }

    fn spec() -> ExperimentSpec {
        ExperimentSpec {
            schema: None,
            name: "unit".to_string(),
            template: SpecTemplate {
                arrivals: 100,
                mean_hold: None,
                switch_prob_pct: None,
                sample_interval: None,
                horizon: None,
                platform_seed: None,
            },
            algorithms: vec!["greedy".to_string(), "paper".to_string()],
            catalogs: vec!["hiperlan2".to_string()],
            mean_gaps: vec![500],
            policies: vec![PolicySpec::none()],
            seeds: vec![1, 2],
            repeats: None,
        }
    }

    #[test]
    fn groups_collapse_seeds_in_first_seen_order() {
        let records = vec![
            record(0, "greedy", 1, 100, Some(10)),
            record(1, "greedy", 2, 200, Some(20)),
            record(2, "paper", 1, 50, Some(40)),
            record(3, "paper", 2, 70, Some(60)),
        ];
        let report = aggregate(&spec(), &records, 7);
        assert_eq!(report.schema, REPORT_SCHEMA);
        assert_eq!(report.n_trials, 4);
        assert_eq!(report.total_arrivals, 400);
        assert_eq!(report.trials_fnv1a, 7);
        assert_eq!(report.aggregates.len(), 2);
        assert_eq!(report.aggregates[0].algorithm, "greedy");
        assert_eq!(report.aggregates[0].trials, 2);
        assert_eq!(report.aggregates[0].blocking_permille.mean, 150);
        assert_eq!(
            report.aggregates[1]
                .energy_pj_ticks_per_admitted
                .unwrap()
                .mean,
            50
        );
    }

    #[test]
    fn pareto_front_keeps_only_non_dominated_rows() {
        // greedy: (150 blocking, 15 energy) — dominated on neither axis
        // by paper's (60, 50): both stay. A third config dominated by
        // greedy on both axes must drop.
        let mut worse = record(4, "random", 1, 300, Some(90));
        worse.policy = "none".to_string();
        let records = vec![
            record(0, "greedy", 1, 100, Some(10)),
            record(1, "greedy", 2, 200, Some(20)),
            record(2, "paper", 1, 50, Some(40)),
            record(3, "paper", 2, 70, Some(60)),
            worse,
        ];
        let report = aggregate(&spec(), &records, 0);
        assert_eq!(report.pareto_fronts.len(), 1);
        let front = &report.pareto_fronts[0];
        assert_eq!(front.catalog, "hiperlan2");
        let on_front: Vec<&str> = front.points.iter().map(|p| p.algorithm.as_str()).collect();
        assert_eq!(on_front, vec!["paper", "greedy"], "sorted by blocking");
        let flags: Vec<bool> = report.aggregates.iter().map(|r| r.pareto).collect();
        assert_eq!(flags, vec![true, true, false]);
    }

    #[test]
    fn rows_without_admissions_stay_off_the_front() {
        let records = vec![record(0, "greedy", 1, 1000, None)];
        let report = aggregate(&spec(), &records, 0);
        assert_eq!(report.aggregates[0].energy_pj_ticks_per_admitted, None);
        assert!(!report.aggregates[0].pareto);
        assert!(report.pareto_fronts[0].points.is_empty());
    }
}
