//! Declarative sweep matrices: [`ExperimentSpec`] and its expansion.
//!
//! A spec is the cross product `catalogs × algorithms × mean_gaps ×
//! policies × seeds × repeats` over a shared [`SpecTemplate`] of
//! simulation parameters. [`ExperimentSpec::expand`] flattens it into an
//! ordered list of independent [`Trial`]s — the trial id **is** the
//! position in that nested-loop order (catalog outermost, repeat
//! innermost), which is the contract the worker pool's in-order merge
//! and every sealed report rely on.
//!
//! Specs are plain JSON; every field beyond the axes and
//! `template.arrivals` is optional with documented defaults, so a
//! minimal spec stays small enough to read in a review.

use crate::trial::{Trial, VALID_ALGORITHMS, VALID_CATALOGS};
use rtsm_core::{AdmissionPolicy, ReconfigurationObjective, ReconfigurationPolicy};
use serde::{Deserialize, Serialize};

/// Simulation parameters shared by every trial of a spec. Only
/// `arrivals` is mandatory; the optional fields default to the
/// `simulate` CLI defaults so specs and ad-hoc runs agree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpecTemplate {
    /// Arrivals per trial (policies may override per-policy; see
    /// [`PolicySpec::arrivals`]).
    pub arrivals: u64,
    /// Mean exponential holding time, ticks (default 2000).
    pub mean_hold: Option<u64>,
    /// Mode-switch probability, percent 0–100 (default 10).
    pub switch_prob_pct: Option<u64>,
    /// Occupancy sample interval, ticks (default 10 000).
    pub sample_interval: Option<u64>,
    /// Optional virtual-time horizon cutting trials short, ticks.
    pub horizon: Option<u64>,
    /// Seed pinning platform layout and synthetic catalogs (default 42).
    pub platform_seed: Option<u64>,
}

impl SpecTemplate {
    /// Mean holding time with the default applied.
    pub fn mean_hold(&self) -> u64 {
        self.mean_hold.unwrap_or(2000)
    }

    /// Mode-switch probability (percent) with the default applied.
    pub fn switch_prob_pct(&self) -> u64 {
        self.switch_prob_pct.unwrap_or(10)
    }

    /// Sample interval with the default applied.
    pub fn sample_interval(&self) -> u64 {
        self.sample_interval.unwrap_or(10_000)
    }

    /// Platform seed with the default applied.
    pub fn platform_seed(&self) -> u64 {
        self.platform_seed.unwrap_or(42)
    }
}

/// One admission-policy point of the sweep. `kind` is one of `none`
/// (plain runs, no reconfiguration), `always`, `energy-budget`, or
/// `amortized-payback`; the remaining fields refine the reconfiguration
/// policy and default to the `simulate` CLI defaults.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicySpec {
    /// Policy kind: `none` | `always` | `energy-budget` | `amortized-payback`.
    pub kind: String,
    /// Migration-energy weight λ of the plan objective, permille
    /// (default 1000). Ignored for `none`.
    pub lambda_permille: Option<u64>,
    /// Energy budget for `energy-budget`, pJ (default 500 000).
    pub budget_pj: Option<u64>,
    /// Payback horizon for `amortized-payback`, periods (default 64).
    pub payback_periods: Option<u64>,
    /// Migration cap per plan (default 2). Ignored for `none`.
    pub max_migrations: Option<u64>,
    /// Plan cap per retry (default 8). Ignored for `none`.
    pub max_plans: Option<u64>,
    /// Per-policy arrivals override — reconfiguration runs cost ~4× the
    /// wall time per arrival, so sweeps typically give `none` more
    /// arrivals than the reconfiguring points.
    pub arrivals: Option<u64>,
    /// Run this policy point with the design-time template library:
    /// admissions try the microsecond shape-instantiation hit path first
    /// and fall back to the full algorithm on miss (default off).
    pub templates: Option<bool>,
    /// Cached shapes per application spec when `templates` is on
    /// (default 8). Setting it without `templates: true` is a
    /// validation error.
    pub template_cap: Option<u64>,
}

/// The policy kinds [`PolicySpec::kind`] accepts, in display order.
/// `none` means "no reconfiguration at all"; the other three name the
/// [`AdmissionPolicy`] reconfiguration runs under
/// ([`admission_policy`] resolves them).
pub const VALID_POLICY_KINDS: [&str; 4] = ["none", "always", "energy-budget", "amortized-payback"];

/// Resolves an admission-policy kind name to the [`AdmissionPolicy`] it
/// denotes — the single name-to-policy mapping shared by [`PolicySpec`]
/// and the `simulate` CLI, so their accepted names cannot drift apart.
/// Returns `None` for unknown kinds and for `none` (which is not an
/// admission policy but the absence of reconfiguration).
pub fn admission_policy(
    kind: &str,
    budget_pj: u64,
    payback_periods: u64,
) -> Option<AdmissionPolicy> {
    match kind {
        "always" => Some(AdmissionPolicy::AlwaysAdmit),
        "energy-budget" => Some(AdmissionPolicy::EnergyBudget {
            max_transfer_pj: budget_pj,
        }),
        "amortized-payback" => Some(AdmissionPolicy::AmortizedPayback {
            horizon_periods: payback_periods,
        }),
        _ => None,
    }
}

impl PolicySpec {
    /// A plain-run policy point (no reconfiguration).
    pub fn none() -> Self {
        PolicySpec {
            kind: "none".to_string(),
            lambda_permille: None,
            budget_pj: None,
            payback_periods: None,
            max_migrations: None,
            max_plans: None,
            arrivals: None,
            templates: None,
            template_cap: None,
        }
    }

    fn lambda(&self) -> u64 {
        self.lambda_permille.unwrap_or(1000)
    }

    /// Whether this policy point runs with the template library enabled.
    pub fn templates(&self) -> bool {
        self.templates.unwrap_or(false)
    }

    /// Shape cap per application spec with the default applied.
    pub fn template_cap(&self) -> u64 {
        self.template_cap
            .unwrap_or(rtsm_core::template::DEFAULT_SHAPE_CAP as u64)
    }

    /// A stable, human-readable label — the grouping key in reports.
    /// Distinct policy points always label differently (enforced by
    /// [`ExperimentSpec::validate`]).
    pub fn label(&self) -> String {
        let base = match self.kind.as_str() {
            "none" => "none".to_string(),
            "always" => format!("always-admit/l{}", self.lambda()),
            "energy-budget" => format!(
                "energy-budget({}pJ)/l{}",
                self.budget_pj.unwrap_or(500_000),
                self.lambda()
            ),
            "amortized-payback" => format!(
                "amortized-payback({})/l{}",
                self.payback_periods.unwrap_or(64),
                self.lambda()
            ),
            other => format!("invalid({other})"),
        };
        if self.templates() {
            // Templated and untemplated variants of the same point are
            // distinct sweep cells; the suffix keeps their labels apart.
            format!("{base}+tpl{}", self.template_cap())
        } else {
            base
        }
    }

    /// The [`ReconfigurationPolicy`] this point runs under; `None` for
    /// plain runs.
    pub fn to_policy(&self) -> Option<ReconfigurationPolicy> {
        if self.kind == "none" {
            return None;
        }
        let admission = admission_policy(
            &self.kind,
            self.budget_pj.unwrap_or(500_000),
            self.payback_periods.unwrap_or(64),
        )
        .unwrap_or_else(|| panic!("unvalidated policy kind `{}`", self.kind));
        Some(ReconfigurationPolicy {
            max_migrations: self.max_migrations.unwrap_or(2) as usize,
            max_plans: self.max_plans.unwrap_or(8) as usize,
            objective: ReconfigurationObjective {
                lambda_permille: self.lambda(),
            },
            admission,
            ..ReconfigurationPolicy::default()
        })
    }
}

/// A declarative sweep matrix: the cross product of every axis, run
/// over the shared [`SpecTemplate`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Optional spec-format marker (informational).
    pub schema: Option<String>,
    /// Experiment name, stamped into the sealed report.
    pub name: String,
    /// Shared simulation parameters.
    pub template: SpecTemplate,
    /// Mapping algorithms by short name (`paper`, `greedy`, …).
    pub algorithms: Vec<String>,
    /// Catalogs by name (`hiperlan2`, `mixed`, `synthetic`, `defrag`).
    pub catalogs: Vec<String>,
    /// Poisson mean inter-arrival gaps, ticks — the λ axis (smaller gap
    /// ⇒ higher load).
    pub mean_gaps: Vec<u64>,
    /// Admission-policy points.
    pub policies: Vec<PolicySpec>,
    /// Workload seeds.
    pub seeds: Vec<u64>,
    /// Repeats per seed (default 1); repeat `r` runs at a derived trial
    /// seed, so repeats are distinct stochastic runs.
    pub repeats: Option<u64>,
}

fn check_axis(kind: &str, given: &[String], valid: &[&str]) -> Result<(), String> {
    if given.is_empty() {
        return Err(format!("spec lists no {kind}s"));
    }
    for name in given {
        if !valid.contains(&name.as_str()) {
            return Err(format!(
                "unknown {kind} `{name}` (valid: {})",
                valid.join(", ")
            ));
        }
    }
    Ok(())
}

impl ExperimentSpec {
    /// Repeats per seed with the default applied.
    pub fn repeats(&self) -> u64 {
        self.repeats.unwrap_or(1)
    }

    /// Checks every axis and template field, returning a one-line error
    /// naming the offending value and the valid options.
    ///
    /// # Errors
    ///
    /// A human-readable message on the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("spec has an empty name".to_string());
        }
        check_axis("algorithm", &self.algorithms, &VALID_ALGORITHMS)?;
        check_axis("catalog", &self.catalogs, &VALID_CATALOGS)?;
        if self.mean_gaps.is_empty() {
            return Err("spec lists no mean_gaps".to_string());
        }
        if self.mean_gaps.contains(&0) {
            return Err("mean_gaps must be positive".to_string());
        }
        if self.seeds.is_empty() {
            return Err("spec lists no seeds".to_string());
        }
        if self.policies.is_empty() {
            return Err("spec lists no policies".to_string());
        }
        for policy in &self.policies {
            if !VALID_POLICY_KINDS.contains(&policy.kind.as_str()) {
                return Err(format!(
                    "unknown policy kind `{}` (valid: {})",
                    policy.kind,
                    VALID_POLICY_KINDS.join(", ")
                ));
            }
            if policy.arrivals == Some(0) {
                return Err(format!(
                    "policy `{}` overrides arrivals to 0",
                    policy.label()
                ));
            }
            if policy.template_cap.is_some() && !policy.templates() {
                return Err(format!(
                    "policy `{}` sets template_cap without templates: true",
                    policy.label()
                ));
            }
            if policy.templates() && policy.template_cap() == 0 {
                return Err(format!(
                    "policy `{}` sets template_cap to 0, must be ≥ 1 shape",
                    policy.label()
                ));
            }
        }
        let mut labels: Vec<String> = self.policies.iter().map(PolicySpec::label).collect();
        labels.sort_unstable();
        if let Some(dup) = labels.windows(2).find(|w| w[0] == w[1]) {
            return Err(format!("duplicate policy point `{}`", dup[0]));
        }
        if self.repeats() == 0 {
            return Err("repeats must be at least 1".to_string());
        }
        if self.template.arrivals == 0 {
            return Err("template.arrivals must be at least 1".to_string());
        }
        if self.template.switch_prob_pct() > 100 {
            return Err(format!(
                "template.switch_prob_pct is {}%, must be 0–100",
                self.template.switch_prob_pct()
            ));
        }
        Ok(())
    }

    /// Expands the matrix into ordered [`Trial`]s. The nesting order —
    /// catalog → algorithm → mean_gap → policy → seed → repeat — is a
    /// stable contract: trial ids (and with them the JSONL stream and
    /// sealed report) never depend on worker count or timing.
    pub fn expand(&self) -> Vec<Trial> {
        let mut trials = Vec::new();
        for catalog in &self.catalogs {
            for algorithm in &self.algorithms {
                for &mean_gap in &self.mean_gaps {
                    for policy in &self.policies {
                        for &seed in &self.seeds {
                            for repeat in 0..self.repeats() {
                                trials.push(Trial {
                                    id: trials.len() as u64,
                                    catalog: catalog.clone(),
                                    algorithm: algorithm.clone(),
                                    mean_gap,
                                    policy: policy.clone(),
                                    seed,
                                    repeat,
                                    arrivals: policy.arrivals.unwrap_or(self.template.arrivals),
                                });
                            }
                        }
                    }
                }
            }
        }
        trials
    }

    /// Total simulated arrivals across the whole expansion.
    pub fn total_arrivals(&self) -> u64 {
        self.expand().iter().map(|t| t.arrivals).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> ExperimentSpec {
        ExperimentSpec {
            schema: None,
            name: "unit".to_string(),
            template: SpecTemplate {
                arrivals: 100,
                mean_hold: None,
                switch_prob_pct: None,
                sample_interval: None,
                horizon: None,
                platform_seed: None,
            },
            algorithms: vec!["greedy".to_string(), "paper".to_string()],
            catalogs: vec!["hiperlan2".to_string()],
            mean_gaps: vec![500, 1500],
            policies: vec![PolicySpec::none()],
            seeds: vec![1, 2],
            repeats: Some(2),
        }
    }

    #[test]
    fn expansion_order_is_catalog_algorithm_gap_policy_seed_repeat() {
        let trials = small_spec().expand();
        // One factor per axis: catalogs × algorithms × gaps × policies ×
        // seeds × repeats.
        #[allow(clippy::identity_op)]
        let expected = 2 * 1 * 2 * 1 * 2 * 2;
        assert_eq!(trials.len(), expected);
        assert_eq!(trials[0].id, 0);
        // Innermost axis first: repeat varies fastest, then seed.
        assert_eq!((trials[0].seed, trials[0].repeat), (1, 0));
        assert_eq!((trials[1].seed, trials[1].repeat), (1, 1));
        assert_eq!((trials[2].seed, trials[2].repeat), (2, 0));
        // Then mean_gap, then algorithm (catalogs has one entry).
        assert_eq!(trials[3].mean_gap, 500);
        assert_eq!(trials[4].mean_gap, 1500);
        assert_eq!(trials[7].algorithm, "greedy");
        assert_eq!(trials[8].algorithm, "paper");
        // Ids are the positions.
        for (i, t) in trials.iter().enumerate() {
            assert_eq!(t.id, i as u64);
        }
    }

    #[test]
    fn total_arrivals_honors_policy_overrides() {
        let mut spec = small_spec();
        assert_eq!(spec.total_arrivals(), 16 * 100);
        spec.policies.push(PolicySpec {
            arrivals: Some(10),
            ..PolicySpec {
                kind: "always".to_string(),
                ..PolicySpec::none()
            }
        });
        // 16 trials at 100 arrivals plus 16 `always` trials at 10.
        assert_eq!(spec.total_arrivals(), 16 * 100 + 16 * 10);
    }

    #[test]
    fn validate_names_the_offender_and_the_valid_options() {
        let mut spec = small_spec();
        spec.catalogs = vec!["mixedd".to_string()];
        let err = spec.validate().unwrap_err();
        assert!(err.contains("mixedd") && err.contains("hiperlan2"), "{err}");

        let mut spec = small_spec();
        spec.algorithms = vec!["gredy".to_string()];
        let err = spec.validate().unwrap_err();
        assert!(err.contains("gredy") && err.contains("annealing"), "{err}");

        let mut spec = small_spec();
        spec.policies[0].kind = "sometimes".to_string();
        let err = spec.validate().unwrap_err();
        assert!(
            err.contains("sometimes") && err.contains("amortized-payback"),
            "{err}"
        );

        let mut spec = small_spec();
        spec.template.switch_prob_pct = Some(150);
        assert!(spec.validate().unwrap_err().contains("150"));

        let mut spec = small_spec();
        spec.mean_gaps = vec![500, 0];
        assert!(spec.validate().is_err());

        let mut spec = small_spec();
        spec.seeds.clear();
        assert!(spec.validate().is_err());

        assert!(small_spec().validate().is_ok());
    }

    #[test]
    fn duplicate_policy_points_are_rejected() {
        let mut spec = small_spec();
        spec.policies.push(PolicySpec::none());
        assert!(spec.validate().unwrap_err().contains("duplicate"));
    }

    #[test]
    fn policy_labels_distinguish_parameters() {
        let always = PolicySpec {
            kind: "always".to_string(),
            lambda_permille: Some(600),
            ..PolicySpec::none()
        };
        let mut budget = always.clone();
        budget.kind = "energy-budget".to_string();
        budget.budget_pj = Some(250_000);
        assert_eq!(always.label(), "always-admit/l600");
        assert_eq!(budget.label(), "energy-budget(250000pJ)/l600");
        assert_eq!(PolicySpec::none().label(), "none");
        assert!(PolicySpec::none().to_policy().is_none());
        assert!(budget.to_policy().is_some());
    }

    #[test]
    fn template_policy_points_label_and_validate() {
        // A templated twin of an existing point is a distinct sweep cell.
        let mut spec = small_spec();
        spec.policies.push(PolicySpec {
            templates: Some(true),
            ..PolicySpec::none()
        });
        assert!(spec.validate().is_ok());
        assert_eq!(spec.policies[1].label(), "none+tpl8");
        spec.policies[1].template_cap = Some(4);
        assert_eq!(spec.policies[1].label(), "none+tpl4");

        let mut spec = small_spec();
        spec.policies[0].template_cap = Some(4);
        let err = spec.validate().unwrap_err();
        assert!(err.contains("template_cap without templates"), "{err}");

        let mut spec = small_spec();
        spec.policies[0].templates = Some(true);
        spec.policies[0].template_cap = Some(0);
        let err = spec.validate().unwrap_err();
        assert!(err.contains("must be ≥ 1"), "{err}");
    }

    #[test]
    fn specs_round_trip_through_json() {
        let spec = small_spec();
        let text = serde_json::to_string(&spec).unwrap();
        let back: ExperimentSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(spec, back);
    }
}
