//! A small vendored worker pool: std threads and channels, nothing else.
//!
//! [`run_ordered`] fans independent items out across `workers` OS threads
//! and merges the results back **in item order**, regardless of which
//! worker finished first. The merge discipline is what makes the
//! experiment harness deterministic: every per-trial side effect (JSONL
//! streaming, digests, aggregation input) observes results in trial-id
//! order, so a run with 8 workers is byte-identical to a run with 1.
//!
//! With `workers <= 1` no threads are spawned at all — the items run
//! sequentially on the caller's thread, which doubles as the reference
//! behaviour the threaded path must reproduce exactly.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// The machine's available parallelism (≥ 1) — the default worker count.
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `work` over every item, `workers` at a time, and returns the
/// results in item order. `sink` is invoked on the caller's thread, once
/// per item, **strictly in item order** (a reorder buffer holds
/// out-of-order completions back), while later items may still be
/// running — this is how per-trial results stream during a run.
///
/// Items are pulled from a shared atomic cursor, so a slow item never
/// stalls workers — they keep draining the remaining items.
///
/// # Panics
///
/// Propagates the first panic raised inside `work` once all workers have
/// stopped (the pool never deadlocks on a panicking worker).
pub fn run_ordered<T, R, F, S>(items: &[T], workers: usize, work: F, mut sink: S) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    S: FnMut(usize, &R),
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let result = work(i, item);
                sink(i, &result);
                result
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let (next, work) = (&next, &work);
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = work(i, &items[i]);
                if tx.send((i, result)).is_err() {
                    break;
                }
            });
        }
        drop(tx); // the receive loop ends when every worker is done

        let mut frontier = 0;
        let mut received = 0;
        while received < items.len() {
            match rx.recv() {
                Ok((i, result)) => {
                    received += 1;
                    slots[i] = Some(result);
                    while let Some(Some(ready)) = slots.get(frontier) {
                        sink(frontier, ready);
                        frontier += 1;
                    }
                }
                // A worker panicked and dropped its sender; leave the loop
                // so the scope can join and propagate the panic.
                Err(_) => break,
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("the worker pool completed every item"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;
    use std::time::Duration;

    #[test]
    fn results_and_sink_are_in_item_order_despite_scrambled_completion() {
        // Earlier items sleep longer, so with several workers completions
        // arrive roughly in *reverse* order — the merge must undo that.
        let items: Vec<u64> = (0..12).collect();
        let sunk = Mutex::new(Vec::new());
        let results = run_ordered(
            &items,
            4,
            |i, &x| {
                std::thread::sleep(Duration::from_millis((items.len() - i) as u64 * 3));
                x * 10
            },
            |i, &r| sunk.lock().unwrap().push((i, r)),
        );
        assert_eq!(results, (0..12).map(|x| x * 10).collect::<Vec<_>>());
        let sunk = sunk.into_inner().unwrap();
        assert_eq!(
            sunk,
            (0..12usize).map(|i| (i, i as u64 * 10)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn single_worker_spawns_nothing_and_matches() {
        let items: Vec<u64> = (0..5).collect();
        let mut order = Vec::new();
        let results = run_ordered(&items, 1, |_, &x| x + 1, |i, _| order.push(i));
        assert_eq!(results, vec![1, 2, 3, 4, 5]);
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u64> = Vec::new();
        let results = run_ordered(&items, 4, |_, &x| x, |_, _| {});
        assert!(results.is_empty());
    }

    #[test]
    fn oversized_worker_count_is_clamped() {
        let items: Vec<u64> = (0..3).collect();
        let results = run_ordered(&items, 64, |_, &x| x * 2, |_, _| {});
        assert_eq!(results, vec![0, 2, 4]);
    }

    #[test]
    fn worker_panics_propagate() {
        let items: Vec<u64> = (0..8).collect();
        let outcome = std::panic::catch_unwind(|| {
            run_ordered(
                &items,
                2,
                |i, &x| {
                    if i == 3 {
                        panic!("trial 3 exploded");
                    }
                    x
                },
                |_, _| {},
            )
        });
        assert!(outcome.is_err(), "the pool must propagate worker panics");
    }
}
