//! The experiment runner: validate, expand, fan out, stream, seal.
//!
//! [`run_experiment`] is the one entry point the `experiment` bin and
//! the tests share. It resolves each catalog **once** (workers share the
//! read-only platform/catalog by reference across the scoped pool — no
//! per-worker clones), fans the expanded trials across the pool, streams
//! every [`TrialRecord`] to the caller as a serialized JSONL line in
//! trial-id order while later trials still run, and seals the
//! [`ExperimentReport`] with the stream's FNV-1a digest. Wall-clock and
//! worker count live only in [`ExperimentRun`], never in the report.

use crate::pool::run_ordered;
use crate::report::{aggregate, ExperimentReport, WallSection};
use crate::spec::ExperimentSpec;
use crate::stats::{fnv1a64, FNV_OFFSET};
use crate::trial::{resolve_catalog, run_trial_timed, ResolvedCatalog, TrialRecord};
use std::collections::BTreeMap;
use std::fmt;
use std::time::{Duration, Instant};

/// A spec-level failure: invalid axes, unknown names, empty matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpError(pub String);

impl fmt::Display for ExpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "experiment error: {}", self.0)
    }
}

impl std::error::Error for ExpError {}

/// The outcome of one experiment: the sealed deterministic report plus
/// the run-dependent envelope (records, event count, wall time).
#[derive(Debug, Clone)]
pub struct ExperimentRun {
    /// The sealed, worker-count-independent report.
    pub report: ExperimentReport,
    /// Every trial record, in trial-id order.
    pub records: Vec<TrialRecord>,
    /// Simulation events processed across all trials (arrivals +
    /// departures + mode-switch attempts) — the numerator of events/s.
    pub events: u64,
    /// Wall-clock time of the fan-out (excludes catalog resolution).
    pub wall: Duration,
    /// Per-trial admission-latency histograms merged overall and per
    /// (catalog, algorithm) — non-deterministic, so it lives here and
    /// enters [`ExperimentReport::wall`] only on explicit request.
    pub wall_section: WallSection,
}

impl ExperimentRun {
    /// Events per second of wall time (0 when the run was too fast to
    /// measure).
    pub fn events_per_second(&self) -> u64 {
        let micros = self.wall.as_micros();
        if micros == 0 {
            return 0;
        }
        (u128::from(self.events) * 1_000_000 / micros) as u64
    }
}

/// Runs `spec` across `workers` threads. `on_record` observes every
/// trial as `(record, jsonl_line)` strictly in trial-id order, while
/// the run is still in flight — stream it to disk for live progress.
///
/// # Errors
///
/// [`ExpError`] when the spec fails validation; individual trials never
/// fail (a broken simulation invariant panics instead).
pub fn run_experiment(
    spec: &ExperimentSpec,
    workers: usize,
    mut on_record: impl FnMut(&TrialRecord, &str),
) -> Result<ExperimentRun, ExpError> {
    spec.validate().map_err(ExpError)?;
    let trials = spec.expand();
    let mut catalogs: BTreeMap<&str, ResolvedCatalog> = BTreeMap::new();
    for name in &spec.catalogs {
        let resolved = resolve_catalog(name, spec.template.platform_seed())
            .ok_or_else(|| ExpError(format!("unknown catalog `{name}`")))?;
        catalogs.insert(name.as_str(), resolved);
    }

    let start = Instant::now();
    let mut digest = FNV_OFFSET;
    // Workers return (record, latency histogram); only the record enters
    // the digested JSONL stream — wall-clock stays side-band.
    let results = run_ordered(
        &trials,
        workers,
        |_, trial| {
            let resolved = catalogs
                .get(trial.catalog.as_str())
                .expect("every expanded trial names a resolved catalog");
            run_trial_timed(trial, resolved, &spec.template)
        },
        |_, (record, _)| {
            let line = serde_json::to_string(record).expect("trial records serialize");
            digest = fnv1a64(line.as_bytes(), digest);
            digest = fnv1a64(b"\n", digest);
            on_record(record, &line);
        },
    );
    let wall = start.elapsed();
    let wall_section = WallSection::from_trials(results.iter().map(|(r, h)| (r, h)));
    let records: Vec<TrialRecord> = results.into_iter().map(|(record, _)| record).collect();
    let events = records
        .iter()
        .map(|r| r.arrivals + r.departures + r.mode_switch_attempts)
        .sum();
    let report = aggregate(spec, &records, digest);
    Ok(ExperimentRun {
        report,
        records,
        events,
        wall,
        wall_section,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{PolicySpec, SpecTemplate};

    fn tiny_spec() -> ExperimentSpec {
        ExperimentSpec {
            schema: None,
            name: "runner-unit".to_string(),
            template: SpecTemplate {
                arrivals: 30,
                mean_hold: None,
                switch_prob_pct: None,
                sample_interval: None,
                horizon: None,
                platform_seed: None,
            },
            algorithms: vec!["greedy".to_string()],
            catalogs: vec!["hiperlan2".to_string()],
            mean_gaps: vec![500, 1500],
            policies: vec![PolicySpec::none()],
            seeds: vec![1, 2],
            repeats: None,
        }
    }

    #[test]
    fn sealed_reports_are_identical_across_worker_counts() {
        let spec = tiny_spec();
        let mut lines_one = String::new();
        let one = run_experiment(&spec, 1, |_, line| {
            lines_one.push_str(line);
            lines_one.push('\n');
        })
        .unwrap();
        let mut lines_four = String::new();
        let four = run_experiment(&spec, 4, |_, line| {
            lines_four.push_str(line);
            lines_four.push('\n');
        })
        .unwrap();
        assert_eq!(lines_one, lines_four, "JSONL streams must match");
        let a = serde_json::to_string(&one.report).unwrap();
        let b = serde_json::to_string(&four.report).unwrap();
        assert_eq!(a, b, "sealed reports must be byte-identical");
        assert_eq!(one.report.n_trials, 4);
        assert_eq!(one.report.total_arrivals, 4 * 30);
        assert!(one.events >= one.report.total_arrivals);
    }

    #[test]
    fn records_stream_in_trial_id_order() {
        let mut seen = Vec::new();
        run_experiment(&tiny_spec(), 3, |record, _| seen.push(record.id)).unwrap();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn invalid_specs_fail_before_any_trial_runs() {
        let mut spec = tiny_spec();
        spec.catalogs = vec!["nope".to_string()];
        let mut ran = false;
        let err = run_experiment(&spec, 2, |_, _| ran = true).unwrap_err();
        assert!(err.0.contains("nope"));
        assert!(!ran);
    }
}
