//! Atomic report writes: temp file + rename.
//!
//! Report artifacts (BENCH JSON, experiment reports, `--out` files) are
//! consumed by CI byte-diffs and dashboards; a run killed mid-write must
//! never leave a truncated artifact behind. [`write_atomic`] stages the
//! contents in a sibling temp file and `rename`s it into place — on the
//! same filesystem the rename is atomic, so readers observe either the
//! old complete file or the new complete file, never a prefix.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Writes `contents` to `path` atomically (sibling temp file + rename).
///
/// The temp file carries the writing process id in its name, so two
/// concurrent writers cannot stage into the same file; the loser of the
/// final rename race still leaves a *complete* file in place.
///
/// # Errors
///
/// Any [`io::Error`] from creating, writing, or renaming the temp file;
/// the temp file is removed on a failed rename.
pub fn write_atomic(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let path = path.as_ref();
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(format!(".{}.tmp", std::process::id()));
    let tmp = PathBuf::from(tmp_name);
    fs::write(&tmp, contents)?;
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_land_and_leave_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("rtsm_exp_io_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let target = dir.join("report.json");

        write_atomic(&target, "{\"v\":1}").unwrap();
        assert_eq!(fs::read_to_string(&target).unwrap(), "{\"v\":1}");

        // Overwriting replaces the contents wholesale.
        write_atomic(&target, "{\"v\":2}").unwrap();
        assert_eq!(fs::read_to_string(&target).unwrap(), "{\"v\":2}");

        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "no temp files remain: {leftovers:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_rename_cleans_up_the_temp_file() {
        // Renaming onto a path whose parent does not exist fails.
        let missing = std::env::temp_dir()
            .join(format!("rtsm_exp_io_missing_{}", std::process::id()))
            .join("nested")
            .join("report.json");
        assert!(write_atomic(&missing, "x").is_err());
    }
}
