//! Independent trials: one fully-specified simulation run each.
//!
//! A [`Trial`] carries everything a worker needs besides the shared,
//! read-only [`ResolvedCatalog`]; [`run_trial`] executes it through
//! `run_sim` and flattens the deterministic `SimReport` into a
//! [`TrialRecord`] — the all-integer JSONL row the harness streams,
//! digests, and aggregates. Wall-clock never enters a record, so records
//! are byte-identical across re-runs, machines, and worker counts.

use crate::spec::{PolicySpec, SpecTemplate};
use crate::stats::percentile;
use rtsm_baselines::{
    AnnealingMapper, ExhaustiveMapper, GeneticMapper, GreedyMapper, PortfolioMapper, RandomMapper,
    SpiralMapper,
};
use rtsm_core::{MapperConfig, MappingAlgorithm, SpatialMapper, TemplatedMapper};
use rtsm_obs::LatencyHistogram;
use rtsm_platform::paper::paper_platform;
use rtsm_platform::{Platform, TileKind};
use rtsm_sim::{run_sim, ArrivalProcess, Catalog, HoldingTime, SimConfig, TemplateReport};
use rtsm_workloads::{defrag_platform, mesh_platform};
use serde::{Deserialize, Serialize};

/// One registered mapping algorithm: the short name specs and CLIs use,
/// plus a constructor. The registry ([`ALGORITHMS`]) is the single source
/// of truth for algorithm names — spec validation, `simulate`'s and
/// `experiment`'s help text, and fixture emission order all derive from
/// it, so adding an algorithm here cannot desync any of them.
#[derive(Debug, Clone, Copy)]
pub struct AlgorithmEntry {
    /// Short name (`paper`, `greedy`, …) used in specs and CLI flags.
    pub name: &'static str,
    /// Builds a fresh instance — workers never share algorithm state.
    pub build: fn() -> Box<dyn MappingAlgorithm>,
}

/// Every mapping algorithm the harness can run, in display order. New
/// algorithms are appended, never inserted: positional consumers (the
/// golden fixtures' line order) rely on the existing prefix staying put.
pub const ALGORITHMS: [AlgorithmEntry; 8] = [
    AlgorithmEntry {
        name: "paper",
        // Traces are never read by the harness, so skip capturing them.
        build: || {
            Box::new(SpatialMapper::new(
                MapperConfig::default().without_capture(),
            ))
        },
    },
    AlgorithmEntry {
        name: "greedy",
        build: || Box::new(GreedyMapper),
    },
    AlgorithmEntry {
        name: "random",
        build: || Box::new(RandomMapper::default()),
    },
    AlgorithmEntry {
        name: "annealing",
        build: || Box::new(AnnealingMapper::default()),
    },
    AlgorithmEntry {
        name: "exhaustive",
        build: || Box::new(ExhaustiveMapper::default()),
    },
    AlgorithmEntry {
        name: "spiral",
        build: || Box::new(SpiralMapper::default()),
    },
    AlgorithmEntry {
        name: "genetic",
        build: || Box::new(GeneticMapper::default()),
    },
    AlgorithmEntry {
        name: "portfolio",
        build: || Box::new(PortfolioMapper::default()),
    },
];

/// The mapping-algorithm short names a spec may list, in display order —
/// derived from [`ALGORITHMS`] at compile time.
pub const VALID_ALGORITHMS: [&str; ALGORITHMS.len()] = {
    let mut names = [""; ALGORITHMS.len()];
    let mut i = 0;
    while i < ALGORITHMS.len() {
        names[i] = ALGORITHMS[i].name;
        i += 1;
    }
    names
};

/// The catalog names a spec may list, in display order.
pub const VALID_CATALOGS: [&str; 4] = ["hiperlan2", "mixed", "synthetic", "defrag"];

/// One cell of the expanded sweep matrix: a fully-specified,
/// independently-runnable simulation. `id` is the position in the
/// expansion order (see `ExperimentSpec::expand`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trial {
    /// Position in the expansion order — the merge key.
    pub id: u64,
    /// Catalog name (one of [`VALID_CATALOGS`]).
    pub catalog: String,
    /// Algorithm short name (one of [`VALID_ALGORITHMS`]).
    pub algorithm: String,
    /// Poisson mean inter-arrival gap, ticks.
    pub mean_gap: u64,
    /// The admission-policy point this trial runs under.
    pub policy: PolicySpec,
    /// Base workload seed from the spec's seed axis.
    pub seed: u64,
    /// Repeat index (0-based) within the seed.
    pub repeat: u64,
    /// Arrivals this trial simulates (template or policy override).
    pub arrivals: u64,
}

impl Trial {
    /// The workload seed this trial actually runs at: the base seed
    /// plus `repeat` golden-ratio strides, so repeats are distinct
    /// stochastic runs that cannot collide with neighbouring base seeds.
    pub fn trial_seed(&self) -> u64 {
        self.seed
            .wrapping_add(self.repeat.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// A catalog name resolved to its platform and application population —
/// built once per experiment and shared read-only by every worker.
#[derive(Debug, Clone)]
pub struct ResolvedCatalog {
    /// The platform the catalog runs on.
    pub platform: Platform,
    /// The application catalog arrivals draw from.
    pub catalog: Catalog,
}

/// Resolves a catalog name exactly like the `simulate` CLI does; `None`
/// for unknown names (spec validation reports them with the valid list).
pub fn resolve_catalog(name: &str, platform_seed: u64) -> Option<ResolvedCatalog> {
    let (platform, catalog) = match name {
        "hiperlan2" => (paper_platform(), Catalog::hiperlan2()),
        "mixed" => (
            mesh_platform(
                platform_seed,
                4,
                4,
                &[
                    (TileKind::Montium, 4),
                    (TileKind::Arm, 4),
                    (TileKind::Dsp, 2),
                ],
            ),
            Catalog::mixed_dsp(),
        ),
        "synthetic" => (
            mesh_platform(
                platform_seed,
                4,
                4,
                &[(TileKind::Montium, 6), (TileKind::Arm, 4)],
            ),
            Catalog::synthetic(platform_seed, 6),
        ),
        "defrag" => (defrag_platform(4), Catalog::defrag()),
        _ => return None,
    };
    Some(ResolvedCatalog { platform, catalog })
}

/// Builds the mapping algorithm for a short name; `None` for unknown
/// names. Each call returns a fresh instance — workers never share
/// algorithm state.
pub fn make_algorithm(name: &str) -> Option<Box<dyn MappingAlgorithm>> {
    ALGORITHMS
        .iter()
        .find(|entry| entry.name == name)
        .map(|entry| (entry.build)())
}

/// The flattened, all-integer result of one trial — one JSONL row.
/// Optional fields are `None` (serialized `null`) when the run admitted
/// nothing or produced no fragmentation samples, never a division by
/// zero.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrialRecord {
    /// Trial id — rows stream in this order regardless of worker count.
    pub id: u64,
    /// Catalog name.
    pub catalog: String,
    /// Algorithm short name (the grouping key; the full display name
    /// lives in `SimReport`).
    pub algorithm: String,
    /// Poisson mean inter-arrival gap, ticks.
    pub mean_gap: u64,
    /// Admission-policy label (see `PolicySpec::label`).
    pub policy: String,
    /// Base seed from the spec axis.
    pub seed: u64,
    /// Repeat index within the seed.
    pub repeat: u64,
    /// Derived seed the run actually used.
    pub trial_seed: u64,
    /// Arrival events processed.
    pub arrivals: u64,
    /// Arrivals admitted with a feasible mapping.
    pub admitted: u64,
    /// Arrivals blocked.
    pub blocked: u64,
    /// Departures that released a running instance.
    pub departures: u64,
    /// Mode switches attempted.
    pub mode_switch_attempts: u64,
    /// Mode switches admitted.
    pub mode_switch_admitted: u64,
    /// Mode switches blocked.
    pub mode_switch_blocked: u64,
    /// Blocking probability over all admission attempts, permille.
    pub blocking_permille: u64,
    /// Energy integral ∫ running_energy dt, pJ·ticks.
    pub energy_pj_ticks: u64,
    /// Energy integral per admitted application; `None` when nothing
    /// was admitted.
    pub energy_pj_ticks_per_admitted: Option<u64>,
    /// Mean platform slot utilization over all samples, permille.
    pub mean_slots_permille: u64,
    /// Median per-sample fragmentation, permille; `None` without samples.
    pub frag_p50_permille: Option<u64>,
    /// 90th-percentile per-sample fragmentation, permille.
    pub frag_p90_permille: Option<u64>,
    /// Peak per-sample fragmentation, permille.
    pub frag_max_permille: Option<u64>,
    /// Most applications running at once.
    pub peak_running: u64,
    /// Virtual end time, ticks.
    pub end_time: u64,
    /// Assignments evaluated over all successful admissions.
    pub evaluated_assignments: u64,
    /// Refinement attempts over all admission attempts.
    pub refinement_attempts: u64,
    /// Blocked arrivals the reconfiguration retry admitted (0 for
    /// plain runs).
    pub recovered: u64,
    /// Migrations actually committed.
    pub migrations_committed: u64,
    /// Modelled state-transfer energy of committed migrations, pJ.
    pub migration_energy_pj: u64,
    /// Feasible plans the admission policy refused.
    pub plans_refused: u64,
    /// Blocked mode switches whose instance kept running.
    pub mode_switches_survived: u64,
    /// Template-library hits (admissions served from a cached shape);
    /// `None` when templates were off for this policy point.
    pub template_hits: Option<u64>,
    /// Template-library misses (full-algorithm fallback); `None` when off.
    pub template_misses: Option<u64>,
    /// Template hit rate over hits + misses, permille; `None` when off.
    pub template_hit_permille: Option<u64>,
    /// Shapes cached when the run sealed; `None` when templates were off.
    pub template_shapes_cached: Option<u64>,
    /// Whether the resource ledger was idle after teardown.
    pub ledger_idle_at_end: bool,
}

/// Runs one trial to completion and flattens the result.
///
/// # Panics
///
/// Panics if the simulation breaks its own resource ledger — an
/// invariant violation, never a data-dependent condition.
pub fn run_trial(
    trial: &Trial,
    resolved: &ResolvedCatalog,
    template: &SpecTemplate,
) -> TrialRecord {
    run_trial_timed(trial, resolved, template).0
}

/// [`run_trial`], additionally returning the trial's wall-clock
/// admission-latency histogram. The histogram is strictly side-band: the
/// record is identical to what [`run_trial`] returns, so the
/// deterministic JSONL stream and sealed report are unaffected.
///
/// # Panics
///
/// As for [`run_trial`].
pub fn run_trial_timed(
    trial: &Trial,
    resolved: &ResolvedCatalog,
    template: &SpecTemplate,
) -> (TrialRecord, LatencyHistogram) {
    let config = SimConfig {
        seed: trial.trial_seed(),
        arrivals: trial.arrivals,
        arrival_process: ArrivalProcess::Poisson {
            mean_gap: trial.mean_gap,
        },
        holding: HoldingTime::Exponential {
            mean: template.mean_hold(),
        },
        mode_switch_probability: template.switch_prob_pct() as f64 / 100.0,
        sample_interval: template.sample_interval(),
        horizon: template.horizon,
        reconfiguration: trial.policy.to_policy(),
        track_fragmentation: true,
        faults: None,
    };
    let algorithm =
        make_algorithm(&trial.algorithm).expect("trial algorithms are validated before expansion");
    let (run, templates) = if trial.policy.templates() {
        let cap = trial.policy.template_cap() as usize;
        let mapper = TemplatedMapper::with_cap(algorithm, cap);
        let run = run_sim(&resolved.platform, &mapper, &resolved.catalog, &config)
            .expect("the simulation never breaks its own ledger");
        let stats = TemplateReport::from_stats(mapper.stats(), cap);
        (run, Some(stats))
    } else {
        let run = run_sim(&resolved.platform, &algorithm, &resolved.catalog, &config)
            .expect("the simulation never breaks its own ledger");
        (run, None)
    };
    let report = run.report;

    let frag = report.frag_permille_sorted();
    let frag = (!frag.is_empty()).then(|| {
        let frag: Vec<u64> = frag.into_iter().map(u64::from).collect();
        (
            percentile(&frag, 50),
            percentile(&frag, 90),
            *frag.last().expect("non-empty"),
        )
    });
    let reconfiguration = report.reconfiguration.clone().unwrap_or_default();

    let record = TrialRecord {
        id: trial.id,
        catalog: trial.catalog.clone(),
        algorithm: trial.algorithm.clone(),
        mean_gap: trial.mean_gap,
        policy: trial.policy.label(),
        seed: trial.seed,
        repeat: trial.repeat,
        trial_seed: trial.trial_seed(),
        arrivals: report.arrivals,
        admitted: report.admitted,
        blocked: report.blocked,
        departures: report.departures,
        mode_switch_attempts: report.mode_switch_attempts,
        mode_switch_admitted: report.mode_switch_admitted,
        mode_switch_blocked: report.mode_switch_blocked,
        blocking_permille: report.blocking_permille,
        energy_pj_ticks: report.energy_pj_ticks,
        energy_pj_ticks_per_admitted: report.energy_pj_ticks_per_admitted(),
        mean_slots_permille: report.mean_slots_permille(),
        frag_p50_permille: frag.map(|f| f.0),
        frag_p90_permille: frag.map(|f| f.1),
        frag_max_permille: frag.map(|f| f.2),
        peak_running: report.peak_running,
        end_time: report.end_time,
        evaluated_assignments: report.evaluated_assignments,
        refinement_attempts: report.refinement_attempts,
        recovered: reconfiguration.admissions_recovered,
        migrations_committed: reconfiguration.migrations_committed,
        migration_energy_pj: reconfiguration.migration_energy_pj,
        plans_refused: reconfiguration.plans_refused,
        mode_switches_survived: reconfiguration.mode_switches_survived,
        template_hits: templates.as_ref().map(|t| t.hits),
        template_misses: templates.as_ref().map(|t| t.misses),
        template_hit_permille: templates.as_ref().map(|t| t.hit_permille),
        template_shapes_cached: templates.as_ref().map(|t| t.shapes_cached),
        ledger_idle_at_end: report.ledger_idle_at_end,
    };
    (record, run.wall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PolicySpec;

    fn template() -> SpecTemplate {
        SpecTemplate {
            arrivals: 40,
            mean_hold: None,
            switch_prob_pct: None,
            sample_interval: None,
            horizon: None,
            platform_seed: None,
        }
    }

    fn trial() -> Trial {
        Trial {
            id: 0,
            catalog: "hiperlan2".to_string(),
            algorithm: "greedy".to_string(),
            mean_gap: 500,
            policy: PolicySpec::none(),
            seed: 7,
            repeat: 0,
            arrivals: 40,
        }
    }

    #[test]
    fn trial_seeds_stride_away_from_neighbouring_base_seeds() {
        let mut t = trial();
        assert_eq!(t.trial_seed(), 7);
        t.repeat = 1;
        let strided = t.trial_seed();
        assert_ne!(strided, 7);
        assert_ne!(strided, 8, "repeat 1 must not collide with seed+1");
    }

    #[test]
    fn every_valid_name_resolves_and_unknowns_do_not() {
        for name in VALID_CATALOGS {
            assert!(resolve_catalog(name, 42).is_some(), "{name}");
        }
        assert!(resolve_catalog("mixedd", 42).is_none());
        for name in VALID_ALGORITHMS {
            assert!(make_algorithm(name).is_some(), "{name}");
        }
        assert!(make_algorithm("gredy").is_none());
    }

    #[test]
    fn run_trial_is_deterministic_and_flattens_the_report() {
        let resolved = resolve_catalog("hiperlan2", 42).unwrap();
        let a = run_trial(&trial(), &resolved, &template());
        let b = run_trial(&trial(), &resolved, &template());
        assert_eq!(a, b);
        assert_eq!(a.arrivals, 40);
        assert_eq!(a.admitted + a.blocked, 40);
        assert!(a.ledger_idle_at_end);
        assert_eq!(a.policy, "none");
        assert_eq!(a.recovered, 0, "plain runs never recover admissions");
        // Fragmentation is tracked for every trial, so the percentile
        // summary is present and ordered.
        let (p50, p90, max) = (
            a.frag_p50_permille.unwrap(),
            a.frag_p90_permille.unwrap(),
            a.frag_max_permille.unwrap(),
        );
        assert!(p50 <= p90 && p90 <= max);
    }

    #[test]
    fn templated_trials_hit_and_stay_deterministic() {
        let resolved = resolve_catalog("hiperlan2", 42).unwrap();
        let mut t = trial();
        t.policy.templates = Some(true);
        let a = run_trial(&t, &resolved, &template());
        let b = run_trial(&t, &resolved, &template());
        assert_eq!(a, b, "templated trials must replay byte-identically");
        let (hits, misses) = (a.template_hits.unwrap(), a.template_misses.unwrap());
        assert!(hits > 0, "a 40-arrival HIPERLAN/2 run must reuse shapes");
        assert_eq!(
            a.template_hit_permille.unwrap(),
            hits * 1000 / (hits + misses)
        );
        assert!(a.template_shapes_cached.unwrap() > 0);
        assert!(a.ledger_idle_at_end);
        // The untemplated twin leaves the whole section null.
        let plain = run_trial(&trial(), &resolved, &template());
        assert_eq!(plain.template_hits, None);
        assert_eq!(plain.template_shapes_cached, None);
    }

    #[test]
    fn zero_admissions_yield_none_not_a_panic() {
        // A horizon of 1 tick elapses before the first Poisson arrival
        // (gaps are ≥ 1), so the run seals with zero arrivals admitted.
        let resolved = resolve_catalog("hiperlan2", 42).unwrap();
        let mut template = template();
        template.horizon = Some(1);
        let record = run_trial(&trial(), &resolved, &template);
        assert_eq!(record.admitted, 0);
        assert_eq!(record.energy_pj_ticks_per_admitted, None);
        assert_eq!(record.blocking_permille, 0);
        assert!(record.ledger_idle_at_end);
    }
}
