//! `rtsm_exp` — the sharded experiment harness.
//!
//! The paper's run-time mapping claims are aggregate claims: blocking
//! probability, energy, and fragmentation across many arrival rates,
//! catalogs, policies, and seeds. This crate turns such a sweep matrix
//! into one deterministic artifact:
//!
//! 1. an [`ExperimentSpec`] (algorithms × catalogs × λ × admission
//!    policies × seeds × repeats over a [`SpecTemplate`]) expands into
//!    an ordered list of independent [`Trial`]s;
//! 2. a small vendored worker pool ([`pool::run_ordered`] — std threads
//!    and channels, no external deps) fans the trials out and merges
//!    results back **in trial-id order**, so every downstream byte is
//!    independent of worker count and scheduling;
//! 3. per-trial [`TrialRecord`]s stream as JSONL while the run is in
//!    flight, and the run seals into a versioned [`ExperimentReport`]:
//!    aggregate tables with across-seed confidence intervals
//!    ([`StatSummary`]) plus a Pareto front per catalog, stamped with
//!    the FNV-1a digest of the record stream.
//!
//! Everything in a record or report is an integer; wall-clock lives
//! only in [`ExperimentRun`]. Same spec ⇒ byte-identical report,
//! whether it ran on 1 worker or 16.
//!
//! # Example
//!
//! ```
//! use rtsm_exp::{run_experiment, ExperimentSpec, PolicySpec, SpecTemplate};
//!
//! let spec = ExperimentSpec {
//!     schema: None,
//!     name: "doctest".to_string(),
//!     template: SpecTemplate {
//!         arrivals: 20,
//!         mean_hold: None,
//!         switch_prob_pct: None,
//!         sample_interval: None,
//!         horizon: None,
//!         platform_seed: None,
//!     },
//!     algorithms: vec!["greedy".to_string(), "portfolio".to_string()],
//!     catalogs: vec!["hiperlan2".to_string()],
//!     mean_gaps: vec![500],
//!     policies: vec![PolicySpec::none()],
//!     seeds: vec![7],
//!     repeats: None,
//! };
//! spec.validate().expect("axes name registered algorithms and catalogs");
//! let single = run_experiment(&spec, 1, |_, _| {}).expect("the sweep runs");
//! let raced = run_experiment(&spec, 4, |_, _| {}).expect("the sweep runs");
//! // The sealed report is byte-identical regardless of worker count.
//! assert_eq!(
//!     serde_json::to_string(&single.report).unwrap(),
//!     serde_json::to_string(&raced.report).unwrap(),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod io;
pub mod pool;
pub mod report;
pub mod runner;
pub mod spec;
pub mod stats;
pub mod trial;

pub use io::write_atomic;
pub use pool::{available_workers, run_ordered};
pub use report::{
    AggregateRow, CatalogFront, ExperimentReport, FrontPoint, WallRow, WallSection, REPORT_SCHEMA,
};
pub use runner::{run_experiment, ExpError, ExperimentRun};
pub use spec::{admission_policy, ExperimentSpec, PolicySpec, SpecTemplate, VALID_POLICY_KINDS};
pub use stats::StatSummary;
pub use trial::{
    make_algorithm, resolve_catalog, run_trial, run_trial_timed, AlgorithmEntry, ResolvedCatalog,
    Trial, TrialRecord, ALGORITHMS, VALID_ALGORITHMS, VALID_CATALOGS,
};
