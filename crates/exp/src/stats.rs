//! Integer-only summary statistics for byte-stable reports.
//!
//! Everything here works on `u64` samples and produces `u64` results —
//! no floats touch a sealed report, so aggregation is exactly
//! reproducible across machines, worker counts, and re-runs. Percentiles
//! use the nearest-rank convention; the 95% confidence half-width uses
//! the unbiased sample variance with 1.96² ≈ 3.8416 folded into an
//! integer square root.

use serde::{Deserialize, Serialize};

/// FNV-1a 64-bit offset basis — the initial digest state.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x0100_0000_01b3;

/// Folds `bytes` into an FNV-1a 64-bit digest, chainable: feed the
/// previous return value back as `state` ([`FNV_OFFSET`] to start).
pub fn fnv1a64(bytes: &[u8], mut state: u64) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Integer square root: the largest `r` with `r·r ≤ n` (Newton's method).
pub fn isqrt(n: u128) -> u64 {
    if n == 0 {
        return 0;
    }
    let mut x = n;
    let mut y = x.div_ceil(2);
    while y < x {
        x = y;
        y = (x + n / x) / 2;
    }
    x as u64
}

/// Nearest-rank percentile of an **ascending-sorted** slice:
/// `sorted[(len - 1) · pct / 100]`.
///
/// # Panics
///
/// Panics on an empty slice; callers summarize through
/// [`summarize`], which handles emptiness.
pub fn percentile(sorted: &[u64], pct: u64) -> u64 {
    sorted[(sorted.len() - 1) * pct as usize / 100]
}

/// A five-number-plus-CI summary of one metric across trials. All fields
/// are integers in the metric's own unit (truncating division).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatSummary {
    /// Number of samples summarized.
    pub n: u64,
    /// Arithmetic mean (truncated).
    pub mean: u64,
    /// Half-width of the 95% confidence interval on the mean
    /// (`1.96·s/√n`, truncated; 0 when `n < 2`).
    pub ci95_half: u64,
    /// Smallest sample.
    pub min: u64,
    /// Nearest-rank median.
    pub p50: u64,
    /// Nearest-rank 90th percentile.
    pub p90: u64,
    /// Largest sample.
    pub max: u64,
}

/// Summarizes `values`; `None` when empty.
pub fn summarize(values: &[u64]) -> Option<StatSummary> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as u128;
    let sum: u128 = sorted.iter().map(|&x| u128::from(x)).sum();
    let sum_sq: u128 = sorted.iter().map(|&x| u128::from(x) * u128::from(x)).sum();
    let ci95_half = if n < 2 {
        0
    } else {
        // Unbiased sample variance: s² = (n·Σx² − (Σx)²) / (n(n−1));
        // half-width = 1.96·√(s²/n) = √(38416·(n·Σx² − (Σx)²) / (10000·n²(n−1))).
        let num = n * sum_sq - sum * sum;
        isqrt(38_416 * num / (10_000 * n * n * (n - 1)))
    };
    Some(StatSummary {
        n: sorted.len() as u64,
        mean: (sum / n) as u64,
        ci95_half,
        min: sorted[0],
        p50: percentile(&sorted, 50),
        p90: percentile(&sorted, 90),
        max: *sorted.last().expect("non-empty"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isqrt_is_exact_on_squares_and_floors_between() {
        for r in [0u64, 1, 2, 7, 1000, 123_456] {
            let sq = u128::from(r) * u128::from(r);
            assert_eq!(isqrt(sq), r);
            if r > 0 {
                assert_eq!(isqrt(sq - 1), r - 1);
                assert_eq!(isqrt(sq + 1), r);
            }
        }
        assert_eq!(isqrt(u128::from(u64::MAX) * u128::from(u64::MAX)), u64::MAX);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted = [10, 20, 30, 40, 50];
        assert_eq!(percentile(&sorted, 0), 10);
        assert_eq!(percentile(&sorted, 50), 30);
        assert_eq!(percentile(&sorted, 90), 40);
        assert_eq!(percentile(&sorted, 100), 50);
        assert_eq!(percentile(&[7], 90), 7);
    }

    #[test]
    fn summarize_handles_empty_singleton_and_known_ci() {
        assert_eq!(summarize(&[]), None);

        let one = summarize(&[42]).unwrap();
        assert_eq!(
            (one.n, one.mean, one.ci95_half, one.min, one.max),
            (1, 42, 0, 42, 42)
        );

        // Four samples, mean 25, s² = ((4·3000) − 100²)/(4·3) ≈ 166.67,
        // half-width = 1.96·√(s²/4) ≈ 1.96·6.455 = 12.65 → 12.
        let s = summarize(&[10, 20, 30, 40]).unwrap();
        assert_eq!(s.mean, 25);
        assert_eq!(s.ci95_half, 12);
        assert_eq!((s.min, s.p50, s.p90, s.max), (10, 20, 30, 40));
    }

    #[test]
    fn summarize_is_order_independent() {
        let a = summarize(&[5, 1, 9, 3, 7]).unwrap();
        let b = summarize(&[9, 7, 5, 3, 1]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fnv_digest_chains_and_matches_reference() {
        // Reference FNV-1a 64 of "a" is 0xaf63dc4c8601ec8c.
        assert_eq!(fnv1a64(b"a", FNV_OFFSET), 0xaf63_dc4c_8601_ec8c);
        // Chaining two slices equals digesting the concatenation.
        let whole = fnv1a64(b"hello world", FNV_OFFSET);
        let chained = fnv1a64(b" world", fnv1a64(b"hello", FNV_OFFSET));
        assert_eq!(whole, chained);
    }
}
