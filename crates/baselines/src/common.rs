//! Shared machinery of the search-based baselines.
//!
//! All baselines implement the workspace-wide
//! [`MappingAlgorithm`](rtsm_core::MappingAlgorithm) trait and produce the
//! same [`MappingOutcome`] the heuristic does.
//! [`finalize_assignment`] is the shared back-end that makes their scores
//! comparable: identical step-3 routing and identical step-4 dataflow
//! analysis, with buffers populated so the outcome can be committed onto a
//! ledger (e.g. by a [`RuntimeManager`](rtsm_core::RuntimeManager)).

use rtsm_app::ApplicationSpec;
use rtsm_core::claims::{claim_for, reservation_of};
use rtsm_core::constraints::MappingConstraints;
use rtsm_core::error::MapError;
use rtsm_core::step3::route_channels;
use rtsm_core::step4::{check_constraints, Step4Config};
use rtsm_core::{Mapping, MappingOutcome};
use rtsm_platform::{EnergyModel, Platform, PlatformState};

/// Routes and feasibility-checks an assignment-only mapping, producing a
/// scored, committable [`MappingOutcome`]. Returns `None` if the tile
/// claims do not fit `base` (non-adherent input), if routing fails, or if
/// step 4 rejects the mapping.
pub fn finalize_assignment(
    spec: &ApplicationSpec,
    platform: &Platform,
    base: &PlatformState,
    mut mapping: Mapping,
    evaluated: u64,
) -> Option<MappingOutcome> {
    // Routing starts over from the assignments: drop any routes a previous
    // finalize bound (e.g. a branch-and-bound incumbent being re-finalized)
    // — step 3 requires a route-free mapping.
    mapping.clear_routes();
    // Rebuild the working state from the assignments.
    let mut working = base.clone();
    for (pid, assignment) in mapping.assignments() {
        let implementation = spec.library.impls_for(pid).get(assignment.impl_index)?;
        let claim = claim_for(spec, pid, implementation);
        if !working.fits_tile(platform, assignment.tile, &claim) {
            return None;
        }
        working
            .claim_tile(platform, assignment.tile, &reservation_of(&claim))
            .ok()?;
    }
    route_channels(spec, platform, &mut mapping, &mut working).ok()?;
    let step4 = check_constraints(spec, platform, &mapping, &working, &Step4Config::default());
    if !step4.feasible {
        return None;
    }
    let energy_pj = mapping.energy_pj(spec, platform, &EnergyModel::default());
    let communication_hops = mapping.communication_hops(spec, platform);
    Some(MappingOutcome {
        mapping,
        buffers: step4.buffers,
        csdf: Some(step4.csdf),
        energy_pj,
        communication_hops,
        feasible: true,
        evaluated,
        attempts: 1,
        achieved_period: step4.achieved_period,
        latency_ps: step4.latency_ps,
        trace: None,
    })
}

/// The standard "search came up empty" error of the baselines, which have
/// no feedback records to attach.
pub fn no_feasible_mapping(evaluated: u64) -> MapError {
    MapError::NoFeasibleMapping {
        attempts: evaluated.min(usize::MAX as u64) as usize,
        last_feedback: Vec::new(),
    }
}

/// All `(impl_index, tile)` options of `process` that fit `working` and
/// satisfy `constraints`: the shared candidate enumeration of the
/// search-based baselines. With [`MappingConstraints::none`] this is the
/// unconstrained enumeration, bit-for-bit.
pub fn viable_options(
    spec: &ApplicationSpec,
    platform: &Platform,
    working: &PlatformState,
    process: rtsm_app::ProcessId,
    constraints: &MappingConstraints,
) -> Vec<(usize, rtsm_platform::TileId)> {
    let mut out = Vec::new();
    for (ix, implementation) in spec.library.impls_for(process).iter().enumerate() {
        let claim = claim_for(spec, process, implementation);
        for (tile, _) in platform.tiles_of_kind(implementation.tile_kind) {
            if constraints.allows(process, tile) && working.fits_tile(platform, tile, &claim) {
                out.push((ix, tile));
            }
        }
    }
    out
}

/// Claims `(impl_index, tile)` for `process` on `working` (reservation
/// part only, NI is routing's concern) — shared by the search baselines.
/// Returns `false` if it does not fit.
pub fn claim_option(
    spec: &ApplicationSpec,
    platform: &Platform,
    working: &mut PlatformState,
    process: rtsm_app::ProcessId,
    impl_index: usize,
    tile: rtsm_platform::TileId,
) -> bool {
    let implementation = &spec.library.impls_for(process)[impl_index];
    let claim = claim_for(spec, process, implementation);
    if !working.fits_tile(platform, tile, &claim) {
        return false;
    }
    working
        .claim_tile(platform, tile, &reservation_of(&claim))
        .expect("fits_tile just checked");
    true
}

/// Releases what [`claim_option`] reserved.
pub fn release_option(
    spec: &ApplicationSpec,
    working: &mut PlatformState,
    process: rtsm_app::ProcessId,
    impl_index: usize,
    tile: rtsm_platform::TileId,
) {
    let implementation = &spec.library.impls_for(process)[impl_index];
    let claim = claim_for(spec, process, implementation);
    working
        .release_tile(tile, &reservation_of(&claim))
        .expect("releasing a claim made by claim_option");
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
    use rtsm_core::{MappingAlgorithm, SpatialMapper};
    use rtsm_platform::paper::paper_platform;

    #[test]
    fn heuristic_through_trait_matches_direct_call() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let algorithm: &dyn MappingAlgorithm = &SpatialMapper::default();
        let result = algorithm
            .map(&spec, &platform, &platform.initial_state())
            .unwrap();
        assert!(result.feasible);
        assert_eq!(result.communication_hops, 7);
    }

    #[test]
    fn finalize_rejects_nonadherent_input() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let mut m = Mapping::new();
        let p = |n: &str| spec.graph.process_by_name(n).unwrap();
        let t = |n: &str| platform.tile_by_name(n).unwrap();
        // All four processes on one MONTIUM: does not fit.
        for name in [
            "Prefix removal",
            "Freq. off. correction",
            "Inverse OFDM",
            "Remainder",
        ] {
            m.assign(p(name), 1, t("MONTIUM1"));
        }
        assert!(finalize_assignment(&spec, &platform, &platform.initial_state(), m, 1).is_none());
    }

    #[test]
    fn finalize_accepts_paper_mapping_and_is_committable() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let mut m = Mapping::new();
        let p = |n: &str| spec.graph.process_by_name(n).unwrap();
        let t = |n: &str| platform.tile_by_name(n).unwrap();
        m.assign(p("Prefix removal"), 0, t("ARM2"));
        m.assign(p("Freq. off. correction"), 0, t("ARM1"));
        m.assign(p("Inverse OFDM"), 1, t("MONTIUM2"));
        m.assign(p("Remainder"), 1, t("MONTIUM1"));
        let r = finalize_assignment(&spec, &platform, &platform.initial_state(), m, 1).unwrap();
        assert!(r.feasible);
        assert_eq!(r.communication_hops, 7);
        // Unlike the pre-unification BaselineResult, the outcome carries
        // buffers and routes, so it can drive a full lifecycle.
        assert!(!r.buffers.is_empty());
        let mut state = platform.initial_state();
        let before = state.clone();
        r.commit(&spec, &platform, &mut state).unwrap();
        assert_ne!(state, before);
        r.release(&spec, &platform, &mut state).unwrap();
        assert_eq!(state, before);
    }
}
