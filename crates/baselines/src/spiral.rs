//! Spiral / region-growing placement (after Benhaoua et al.,
//! arXiv:1312.5764).
//!
//! The heaviest-communicating process is anchored near the mesh centre;
//! the remaining processes are then pulled in one at a time in order of
//! their traffic towards the already-placed region, and each is placed on
//! the candidate tile minimising its communication cost to the region —
//! candidate tiles are ranked along growing Manhattan rings around the
//! anchor, so the region grows as a compact spiral instead of scattering.
//! Short, compact placements are what keeps NoC links uncongested; the
//! hard congestion check is inherited from the shared back-end
//! ([`finalize_assignment`]): capacity-constrained step-3 routing plus the
//! step-4 dataflow analysis, identical to every other algorithm.

use crate::common::{claim_option, finalize_assignment, no_feasible_mapping, viable_options};
use rtsm_app::{ApplicationSpec, Endpoint};
use rtsm_core::constraints::MappingConstraints;
use rtsm_core::cost::CostModel;
use rtsm_core::{MapError, Mapping, MappingAlgorithm, MappingOutcome};
use rtsm_platform::{Platform, PlatformState};

/// Spiral / region-growing mapper: clusters communicating processes along
/// Manhattan rings around the first-placed process.
#[derive(Debug, Clone)]
pub struct SpiralMapper {
    /// How candidate tiles are scored against the already-placed region.
    pub cost_model: CostModel,
    /// Weight of the ring-distance (spiral compactness) term added to the
    /// communication score. `0` degenerates to pure nearest-neighbour
    /// placement; larger values force tighter spirals.
    pub spread_penalty: u64,
}

impl Default for SpiralMapper {
    fn default() -> Self {
        SpiralMapper {
            // Traffic-weighted distance mirrors the reference paper's
            // communication-volume objective.
            cost_model: CostModel::TrafficWeighted,
            spread_penalty: 1,
        }
    }
}

/// Traffic (tokens/period, both directions summed) between every pair of
/// processes, flattened to `n × n`.
fn traffic_matrix(spec: &ApplicationSpec) -> Vec<u64> {
    let n = spec.graph.n_processes();
    let mut traffic = vec![0u64; n * n];
    for (_, channel) in spec.graph.stream_channels() {
        if let (Endpoint::Process(a), Endpoint::Process(b)) = (channel.src, channel.dst) {
            traffic[a.index() * n + b.index()] += channel.tokens_per_period;
            traffic[b.index() * n + a.index()] += channel.tokens_per_period;
        }
    }
    traffic
}

/// Builds the spiral assignment on `working` (claims are left in place).
/// Returns the mapping and the number of candidate placements scored, or
/// `None` when some process has no viable option left.
pub(crate) fn spiral_assignment(
    spec: &ApplicationSpec,
    platform: &Platform,
    working: &mut PlatformState,
    constraints: &MappingConstraints,
    cost_model: &CostModel,
    spread_penalty: u64,
) -> Option<(Mapping, u64)> {
    let order = spec.graph.topological_order().ok()?;
    let n = spec.graph.n_processes();
    let traffic = traffic_matrix(spec);
    let total: Vec<u64> = (0..n)
        .map(|p| traffic[p * n..(p + 1) * n].iter().sum())
        .collect();

    // Anchor: the heaviest communicator, placed as close to the mesh
    // centre as its viable tiles allow (doubled coordinates avoid the
    // half-tile rounding of even meshes).
    let anchor = order
        .iter()
        .copied()
        .max_by_key(|p| (total[p.index()], usize::MAX - p.index()))?;
    let (cx2, cy2) = (
        u32::from(platform.width()) - 1,
        u32::from(platform.height()) - 1,
    );
    let mut evaluated = 0u64;
    let mut mapping = Mapping::new();
    let options = viable_options(spec, platform, working, anchor, constraints);
    evaluated += options.len() as u64;
    let &(impl_index, anchor_tile) = options.iter().min_by_key(|(ix, tile)| {
        let p = platform.tile(*tile).position;
        let centre_dist = (2 * u32::from(p.x)).abs_diff(cx2) + (2 * u32::from(p.y)).abs_diff(cy2);
        (centre_dist, tile.index(), *ix)
    })?;
    claim_option(spec, platform, working, anchor, impl_index, anchor_tile);
    mapping.assign(anchor, impl_index, anchor_tile);

    let mut placed = vec![false; n];
    placed[anchor.index()] = true;
    for _ in 1..order.len() {
        // Next process: strongest pull towards the placed region, ties
        // broken by total traffic, then by topological position.
        let next = order
            .iter()
            .copied()
            .filter(|p| !placed[p.index()])
            .max_by_key(|p| {
                let pull: u64 = (0..n)
                    .filter(|q| placed[*q])
                    .map(|q| traffic[p.index() * n + q])
                    .sum();
                (pull, total[p.index()], usize::MAX - p.index())
            })?;
        let options = viable_options(spec, platform, working, next, constraints);
        evaluated += options.len() as u64;
        // Score every candidate against the region; rank by
        // (communication + spiral compactness, ring, tile, impl) so the
        // choice is total-ordered and deterministic.
        let &(impl_index, tile) = options.iter().min_by_key(|(ix, tile)| {
            let comm: u64 = spec
                .graph
                .stream_channels()
                .filter_map(|(_, ch)| {
                    let (here, there) = match (ch.src, ch.dst) {
                        (Endpoint::Process(p), other) if p == next => (*tile, other),
                        (other, Endpoint::Process(p)) if p == next => (*tile, other),
                        _ => return None,
                    };
                    let there = mapping.endpoint_tile(platform, there)?;
                    Some(cost_model.channel_cost(platform, ch.tokens_per_period, here, there))
                })
                .sum();
            let ring = u64::from(platform.manhattan(*tile, anchor_tile));
            (comm + spread_penalty * ring, ring, tile.index(), *ix)
        })?;
        claim_option(spec, platform, working, next, impl_index, tile);
        mapping.assign(next, impl_index, tile);
        placed[next.index()] = true;
    }
    Some((mapping, evaluated))
}

impl MappingAlgorithm for SpiralMapper {
    fn name(&self) -> &str {
        "spiral region growing"
    }

    fn map_constrained(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        base: &PlatformState,
        constraints: &MappingConstraints,
    ) -> Result<MappingOutcome, MapError> {
        let mut working = base.clone();
        let (mapping, evaluated) = spiral_assignment(
            spec,
            platform,
            &mut working,
            constraints,
            &self.cost_model,
            self.spread_penalty,
        )
        .ok_or_else(|| no_feasible_mapping(0))?;
        finalize_assignment(spec, platform, base, mapping, evaluated)
            .ok_or_else(|| no_feasible_mapping(evaluated))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
    use rtsm_platform::paper::paper_platform;

    #[test]
    fn spiral_is_feasible_and_compact_on_the_paper_case() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let result = SpiralMapper::default()
            .map(&spec, &platform, &platform.initial_state())
            .expect("spiral maps the paper case");
        assert!(result.feasible);
        // Region growing must at least beat plain first-fit (cost 11).
        assert!(
            result.communication_hops <= 11,
            "spiral placement scattered: {} hops",
            result.communication_hops
        );
    }

    #[test]
    fn spiral_is_deterministic() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let a = SpiralMapper::default()
            .map(&spec, &platform, &platform.initial_state())
            .unwrap();
        let b = SpiralMapper::default()
            .map(&spec, &platform, &platform.initial_state())
            .unwrap();
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.energy_pj, b.energy_pj);
    }

    #[test]
    fn spiral_honours_constraints() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let unconstrained = SpiralMapper::default()
            .map(&spec, &platform, &platform.initial_state())
            .unwrap();
        // Exclude every tile the unconstrained run used for the first
        // process; the constrained mapping must avoid them.
        let victim = spec.graph.topological_order().unwrap()[0];
        let used = unconstrained.mapping.assignment(victim).unwrap().tile;
        let constraints = MappingConstraints::none().exclude_tile(used);
        if let Ok(result) = SpiralMapper::default().map_constrained(
            &spec,
            &platform,
            &platform.initial_state(),
            &constraints,
        ) {
            assert_ne!(result.mapping.assignment(victim).unwrap().tile, used);
            assert!(constraints.satisfied_by(&result.mapping));
        }
    }
}
