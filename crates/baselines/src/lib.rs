//! Baseline spatial-mapping algorithms.
//!
//! The DATE 2008 paper observes that "no benchmarks exist to compare
//! spatial mappings quantitatively" (§5). This crate supplies the
//! comparators its evaluation lacks:
//!
//! * [`ExhaustiveMapper`] — branch-and-bound over all (implementation,
//!   tile) assignments: the **optimal-energy reference** for small
//!   instances.
//! * [`AnnealingMapper`] — simulated annealing: a strong but slow
//!   design-time-style optimiser.
//! * [`RandomMapper`] — best of N random adherent mappings: the sanity
//!   floor.
//! * [`GreedyMapper`] — the paper's step 1 only (no local search): the
//!   ablation for step 2.
//! * [`HeuristicMapper`] — the paper's full four-step mapper, wrapped in
//!   the same [`MappingAlgorithm`] interface for apples-to-apples benches.
//!
//! Every algorithm returns mappings that are *adherent by construction*
//! (claims are checked during search) and *feasibility-checked* with the
//! same step-3 routing and step-4 dataflow analysis the heuristic uses, so
//! energy comparisons are like-for-like.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod annealing;
pub mod api;
pub mod exhaustive;
pub mod greedy;
pub mod random;

pub use annealing::AnnealingMapper;
pub use api::{finalize_assignment, BaselineResult, HeuristicMapper, MappingAlgorithm};
pub use exhaustive::ExhaustiveMapper;
pub use greedy::GreedyMapper;
pub use random::RandomMapper;
