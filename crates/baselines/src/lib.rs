//! Baseline spatial-mapping algorithms.
//!
//! The DATE 2008 paper observes that "no benchmarks exist to compare
//! spatial mappings quantitatively" (§5). This crate supplies the
//! comparators its evaluation lacks:
//!
//! * [`ExhaustiveMapper`] — branch-and-bound over all (implementation,
//!   tile) assignments: the **optimal-energy reference** for small
//!   instances.
//! * [`AnnealingMapper`] — simulated annealing: a strong but slow
//!   design-time-style optimiser.
//! * [`RandomMapper`] — best of N random adherent mappings: the sanity
//!   floor.
//! * [`GreedyMapper`] — the paper's step 1 only (no local search): the
//!   ablation for step 2.
//! * [`SpiralMapper`] — spiral / region-growing placement around the
//!   heaviest communicator (after Benhaoua et al., arXiv:1312.5764).
//! * [`GeneticMapper`] — seeded bias-elitist genetic search (after Quan
//!   & Pimentel, arXiv:1406.7539), its population seeded with the
//!   greedy and spiral solutions.
//! * [`PortfolioMapper`] — not a search of its own: runs a member
//!   portfolio cheapest-first under a modeled per-admission latency
//!   budget (optionally raced across threads) and returns the best
//!   feasible outcome.
//!
//! Every baseline implements the workspace-wide
//! [`MappingAlgorithm`] trait (the paper's
//! full heuristic is [`rtsm_core::SpatialMapper`], behind the same trait)
//! and returns the shared [`MappingOutcome`]
//! type, so results are interchangeable: any of them can drive a
//! [`RuntimeManager`](rtsm_core::RuntimeManager) or a benchmark table.
//!
//! Every algorithm returns mappings that are *adherent by construction*
//! (claims are checked during search) and *feasibility-checked* with the
//! same step-3 routing and step-4 dataflow analysis the heuristic uses, so
//! energy comparisons are like-for-like.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod annealing;
pub mod common;
pub mod exhaustive;
pub mod genetic;
pub mod greedy;
pub mod portfolio;
pub mod random;
pub mod spiral;

pub use annealing::AnnealingMapper;
pub use common::finalize_assignment;
pub use exhaustive::ExhaustiveMapper;
pub use genetic::GeneticMapper;
pub use greedy::GreedyMapper;
pub use portfolio::{default_members, PortfolioMapper, PortfolioMember, DEFAULT_BUDGET_US};
pub use random::RandomMapper;
pub use spiral::SpiralMapper;

// The unified interface lives in `rtsm_core`; re-exported here so baseline
// users need a single import.
pub use rtsm_core::{MapError, MappingAlgorithm, MappingOutcome, SpatialMapper};
