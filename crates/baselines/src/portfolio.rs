//! `PortfolioMapper` — run a portfolio of mapping algorithms under one
//! per-admission latency budget and commit the best feasible outcome.
//!
//! Members are ordered cheapest-first by a *modeled* integer cost in
//! microseconds (design-time calibrated, never measured at run time — a
//! wall clock in the decision path would break byte-determinism). The
//! cheapest-first prefix whose cumulative modeled cost fits the budget is
//! evaluated — sequentially with `workers <= 1`, raced across scoped
//! threads with the same atomic-cursor pool pattern as
//! `rtsm_exp::run_ordered` otherwise. Every feasible outcome is scored
//! with the portfolio's [`CostModel`] and exactly one — the cheapest, ties
//! to the earlier member — is returned for the caller to commit through
//! the usual evaluate-then-replay transaction path
//! ([`MappingOutcome::commit`]). If the whole prefix misses, the
//! portfolio *escalates*: the remaining members run one at a time past
//! the budget until one admits, because a late admission beats a
//! rejection.
//!
//! Which members run, and which outcome wins, are pure functions of the
//! budget and the members' deterministic results — worker count only
//! changes wall-clock, so fixed-seed reports are byte-identical at 1 and
//! N racing workers (CI diffs them).

use crate::{AnnealingMapper, GeneticMapper, GreedyMapper, SpiralMapper};
use rtsm_app::ApplicationSpec;
use rtsm_core::constraints::MappingConstraints;
use rtsm_core::cost::CostModel;
use rtsm_core::mapper::MapperConfig;
use rtsm_core::{MapError, MappingAlgorithm, MappingOutcome, SpatialMapper};
use rtsm_platform::{EnergyModel, Platform, PlatformState};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Default per-admission latency budget, microseconds — admits the whole
/// default member set ([`default_members`]).
pub const DEFAULT_BUDGET_US: u64 = 5_000;

/// One portfolio member: a constructor (workers build private instances,
/// so racing shares nothing) plus its modeled per-admission cost.
#[derive(Debug, Clone, Copy)]
pub struct PortfolioMember {
    /// Short member name, for reports and docs.
    pub name: &'static str,
    /// Modeled per-admission cost in microseconds (design-time
    /// calibrated on the paper case; see `docs/ALGORITHMS.md`).
    pub estimated_cost_us: u64,
    /// Builds a fresh instance of the member algorithm.
    pub build: fn() -> Box<dyn MappingAlgorithm>,
}

/// The default portfolio: greedy and spiral as the cheap front, the
/// paper's heuristic as the quality workhorse, the genetic mapper as the
/// slow high-effort tail. Costs are paper-case medians rounded up.
pub fn default_members() -> Vec<PortfolioMember> {
    vec![
        PortfolioMember {
            name: "greedy",
            estimated_cost_us: 60,
            build: || Box::new(GreedyMapper),
        },
        PortfolioMember {
            name: "spiral",
            estimated_cost_us: 90,
            build: || Box::new(SpiralMapper::default()),
        },
        PortfolioMember {
            name: "paper",
            estimated_cost_us: 600,
            build: || {
                Box::new(SpatialMapper::new(
                    MapperConfig::default().without_capture(),
                ))
            },
        },
        PortfolioMember {
            name: "genetic",
            estimated_cost_us: 2_000,
            build: || Box::new(GeneticMapper::default()),
        },
    ]
}

/// An aggressive extension of [`default_members`]: adds simulated
/// annealing for callers with budgets in the tens of milliseconds.
pub fn extended_members() -> Vec<PortfolioMember> {
    let mut members = default_members();
    members.push(PortfolioMember {
        name: "annealing",
        estimated_cost_us: 30_000,
        build: || Box::new(AnnealingMapper::default()),
    });
    members
}

/// Budget-raced portfolio over other [`MappingAlgorithm`]s.
#[derive(Debug, Clone)]
pub struct PortfolioMapper {
    /// The member algorithms (run cheapest-first by modeled cost).
    pub members: Vec<PortfolioMember>,
    /// Per-admission latency budget, microseconds of modeled cost. The
    /// cheapest member always runs, even when it alone overruns the
    /// budget — a portfolio never refuses to try.
    pub budget_us: u64,
    /// Racing workers; `<= 1` evaluates the eligible prefix sequentially.
    /// Reports are byte-identical either way.
    pub workers: usize,
    /// How feasible member outcomes are compared.
    pub cost_model: CostModel,
}

impl Default for PortfolioMapper {
    fn default() -> Self {
        PortfolioMapper {
            members: default_members(),
            budget_us: DEFAULT_BUDGET_US,
            workers: 1,
            cost_model: CostModel::Energy(EnergyModel::default()),
        }
    }
}

impl PortfolioMapper {
    /// Same portfolio, racing `workers` threads.
    pub fn with_workers(workers: usize) -> Self {
        PortfolioMapper {
            workers,
            ..PortfolioMapper::default()
        }
    }

    /// Member indices cheapest-first (stable on cost ties), split into
    /// the within-budget racing prefix and the escalation tail.
    fn schedule(&self) -> (Vec<usize>, Vec<usize>) {
        let mut order: Vec<usize> = (0..self.members.len()).collect();
        order.sort_by_key(|&i| (self.members[i].estimated_cost_us, i));
        let mut spent = 0u64;
        let mut raced = Vec::new();
        let mut tail = Vec::new();
        for i in order {
            let cost = self.members[i].estimated_cost_us;
            if raced.is_empty() || spent.saturating_add(cost) <= self.budget_us {
                spent = spent.saturating_add(cost);
                raced.push(i);
            } else {
                tail.push(i);
            }
        }
        (raced, tail)
    }

    /// Runs the given members, returning their results by position. With
    /// `workers >= 2` this is `rtsm_exp::run_ordered`'s pool pattern —
    /// scoped threads pulling from an atomic cursor — collapsed to the
    /// collect-by-index case (no streaming sink is needed here because
    /// selection is a pure function of the full result vector).
    fn run_members(
        &self,
        indices: &[usize],
        spec: &ApplicationSpec,
        platform: &Platform,
        base: &PlatformState,
        constraints: &MappingConstraints,
    ) -> Vec<Result<MappingOutcome, MapError>> {
        let run = |member: &PortfolioMember| {
            (member.build)().map_constrained(spec, platform, base, constraints)
        };
        let workers = self.workers.clamp(1, indices.len().max(1));
        if workers <= 1 {
            return indices.iter().map(|&i| run(&self.members[i])).collect();
        }
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let (next, run) = (&next, &run);
                scope.spawn(move || loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= indices.len() {
                        break;
                    }
                    if tx.send((k, run(&self.members[indices[k]]))).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            let mut slots: Vec<Option<Result<MappingOutcome, MapError>>> = Vec::new();
            slots.resize_with(indices.len(), || None);
            for (k, result) in rx {
                slots[k] = Some(result);
            }
            slots
                .into_iter()
                .map(|slot| slot.expect("every raced member reports exactly once"))
                .collect()
        })
    }
}

impl MappingAlgorithm for PortfolioMapper {
    fn name(&self) -> &str {
        "portfolio (budget-raced)"
    }

    fn map_constrained(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        base: &PlatformState,
        constraints: &MappingConstraints,
    ) -> Result<MappingOutcome, MapError> {
        if self.members.is_empty() {
            return Err(MapError::NoFeasibleMapping {
                attempts: 0,
                last_feedback: Vec::new(),
            });
        }
        let (raced, tail) = self.schedule();
        let mut results = self.run_members(&raced, spec, platform, base, constraints);
        let mut attempts = results.len();

        // Select: cheapest outcome under the portfolio's cost model, ties
        // to the earlier (cheaper) member — a pure function of the
        // deterministic member results, independent of racing order.
        let mut winner = results
            .iter()
            .enumerate()
            .filter_map(|(k, result)| result.as_ref().ok().map(|o| (k, o)))
            .min_by_key(|(k, o)| (self.cost_model.cost(&o.mapping, spec, platform), *k))
            .map(|(k, _)| k);

        if winner.is_none() {
            // Every member within budget missed: escalate past the budget
            // one member at a time — identical in sequential and racing
            // mode, so determinism is preserved.
            for &i in &tail {
                let result = self
                    .run_members(&[i], spec, platform, base, constraints)
                    .remove(0);
                attempts += 1;
                let feasible = result.is_ok();
                results.push(result);
                if feasible {
                    winner = Some(results.len() - 1);
                    break;
                }
            }
        }

        let evaluated: u64 = results
            .iter()
            .map(|r| r.as_ref().map_or(1, |o| o.evaluated))
            .sum();
        match winner {
            Some(k) => {
                let mut outcome = match results.swap_remove(k) {
                    Ok(outcome) => outcome,
                    Err(_) => unreachable!("winner indexes an Ok result"),
                };
                outcome.evaluated = evaluated;
                outcome.attempts = attempts;
                Ok(outcome)
            }
            None => Err(MapError::NoFeasibleMapping {
                attempts,
                last_feedback: Vec::new(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
    use rtsm_platform::paper::paper_platform;

    fn paper_case() -> (ApplicationSpec, Platform) {
        (hiperlan2_receiver(Hiperlan2Mode::Qpsk34), paper_platform())
    }

    #[test]
    fn portfolio_matches_its_best_member_on_the_paper_case() {
        let (spec, platform) = paper_case();
        let state = platform.initial_state();
        let portfolio = PortfolioMapper::default();
        let outcome = portfolio.map(&spec, &platform, &state).unwrap();
        let best_member_energy = default_members()
            .iter()
            .filter_map(|m| (m.build)().map(&spec, &platform, &state).ok())
            .map(|o| o.energy_pj)
            .min()
            .unwrap();
        assert_eq!(outcome.energy_pj, best_member_energy);
        assert_eq!(outcome.attempts, default_members().len());
    }

    #[test]
    fn racing_workers_do_not_change_the_outcome() {
        let (spec, platform) = paper_case();
        let state = platform.initial_state();
        let sequential = PortfolioMapper::default()
            .map(&spec, &platform, &state)
            .unwrap();
        for workers in [2, 4, 8] {
            let raced = PortfolioMapper::with_workers(workers)
                .map(&spec, &platform, &state)
                .unwrap();
            assert_eq!(raced.mapping, sequential.mapping, "workers={workers}");
            assert_eq!(raced.evaluated, sequential.evaluated, "workers={workers}");
            assert_eq!(raced.attempts, sequential.attempts, "workers={workers}");
        }
    }

    #[test]
    fn a_tight_budget_runs_only_the_cheapest_member() {
        let (spec, platform) = paper_case();
        let state = platform.initial_state();
        let portfolio = PortfolioMapper {
            budget_us: 1, // below even the cheapest member's modeled cost
            ..PortfolioMapper::default()
        };
        let (raced, tail) = portfolio.schedule();
        assert_eq!(raced.len(), 1, "the cheapest member always runs");
        assert_eq!(tail.len(), default_members().len() - 1);
        let outcome = portfolio.map(&spec, &platform, &state).unwrap();
        let greedy = GreedyMapper.map(&spec, &platform, &state).unwrap();
        assert_eq!(outcome.mapping, greedy.mapping);
        assert_eq!(outcome.attempts, 1, "no escalation when the prefix admits");
    }

    #[test]
    fn the_budget_splits_the_schedule_cheapest_first() {
        let portfolio = PortfolioMapper {
            budget_us: 200, // greedy (60) + spiral (90) fit; paper (600) does not
            ..PortfolioMapper::default()
        };
        let (raced, tail) = portfolio.schedule();
        let name = |i: usize| portfolio.members[i].name;
        assert_eq!(
            raced.iter().map(|&i| name(i)).collect::<Vec<_>>(),
            ["greedy", "spiral"]
        );
        assert_eq!(
            tail.iter().map(|&i| name(i)).collect::<Vec<_>>(),
            ["paper", "genetic"]
        );
    }

    #[test]
    fn portfolio_outcome_is_committable() {
        let (spec, platform) = paper_case();
        let mut state = platform.initial_state();
        let before = state.clone();
        let outcome = PortfolioMapper::default()
            .map(&spec, &platform, &state)
            .unwrap();
        outcome.commit(&spec, &platform, &mut state).unwrap();
        assert_ne!(state, before);
        outcome.release(&spec, &platform, &mut state).unwrap();
        assert_eq!(state, before);
    }

    #[test]
    fn an_empty_portfolio_reports_no_feasible_mapping() {
        let (spec, platform) = paper_case();
        let portfolio = PortfolioMapper {
            members: Vec::new(),
            ..PortfolioMapper::default()
        };
        assert!(portfolio
            .map(&spec, &platform, &platform.initial_state())
            .is_err());
    }
}
