//! Greedy first-fit without local search: the step-2 ablation.
//!
//! Runs the paper's step 1 (desirability + first-fit) and goes straight to
//! routing and the constraint check, skipping step 2. On the paper's case
//! this keeps the initial cost of 11 instead of improving to 7 — the
//! ablation benches quantify how much step 2 buys on larger workloads.

use crate::common::{finalize_assignment, no_feasible_mapping};
use rtsm_app::ApplicationSpec;
use rtsm_core::constraints::MappingConstraints;
use rtsm_core::feedback::Constraints;
use rtsm_core::step1::assign_implementations;
use rtsm_core::{MapError, MappingAlgorithm, MappingOutcome};
use rtsm_platform::{Platform, PlatformState};

/// Step-1-only mapper.
#[derive(Debug, Clone, Default)]
pub struct GreedyMapper;

impl MappingAlgorithm for GreedyMapper {
    fn name(&self) -> &str {
        "greedy first-fit (no step 2)"
    }

    fn map_constrained(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        base: &PlatformState,
        constraints: &MappingConstraints,
    ) -> Result<MappingOutcome, MapError> {
        assign_implementations(
            spec,
            platform,
            base,
            &Constraints::with_external(constraints.clone()),
        )
        .ok()
        .and_then(|out| finalize_assignment(spec, platform, base, out.mapping, 1))
        .ok_or_else(|| no_feasible_mapping(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
    use rtsm_platform::paper::paper_platform;

    #[test]
    fn greedy_keeps_the_initial_cost_of_eleven() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let result = GreedyMapper
            .map(&spec, &platform, &platform.initial_state())
            .expect("greedy mapping is feasible on the paper case");
        assert_eq!(result.communication_hops, 11);
    }

    #[test]
    fn step2_improves_on_greedy() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let greedy = GreedyMapper
            .map(&spec, &platform, &platform.initial_state())
            .unwrap();
        let full = crate::SpatialMapper::default()
            .map(&spec, &platform, &platform.initial_state())
            .unwrap();
        assert!(full.communication_hops < greedy.communication_hops);
        assert!(full.energy_pj <= greedy.energy_pj);
    }
}
