//! Seeded bias-elitist genetic mapper (after Quan & Pimentel,
//! arXiv:1406.7539).
//!
//! A genome is one `(implementation, tile)` gene per process. The initial
//! population is *seeded* with the greedy first-fit and spiral
//! region-growing solutions (the paper's key trick for fast convergence on
//! a run-time budget); the rest is sampled uniformly from each process's
//! viable options. Selection is *biased towards feasibility*: individuals
//! are compared lexicographically by (capacity violations, cost), so any
//! claim-feasible individual beats every infeasible one regardless of
//! cost, and an elite carries over unchanged each generation.
//!
//! Fitness stays cheap on purpose — capacity replay plus the decomposed
//! [`CostModel::assignment_cost`], no routing — so a whole run costs about
//! as much as one annealing run. Only the final ranked candidates go
//! through the shared step-3/step-4 back-end ([`finalize_assignment`]),
//! which is what makes the returned outcome committable and comparable.

use crate::common::{finalize_assignment, no_feasible_mapping, viable_options};
use crate::spiral::spiral_assignment;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rtsm_app::{ApplicationSpec, ProcessId};
use rtsm_core::claims::{claim_for, reservation_of};
use rtsm_core::constraints::MappingConstraints;
use rtsm_core::cost::CostModel;
use rtsm_core::step1::assign_implementations;
use rtsm_core::{feedback, MapError, Mapping, MappingAlgorithm, MappingOutcome};
use rtsm_platform::{Platform, PlatformState, TileId};

/// One `(impl_index, tile)` gene per process, in topological order.
type Genome = Vec<(usize, TileId)>;

/// Seeded bias-elitist genetic mapper.
#[derive(Debug, Clone)]
pub struct GeneticMapper {
    /// RNG seed — runs are reproducible.
    pub seed: u64,
    /// Individuals per generation (including the greedy/spiral seeds).
    pub population: usize,
    /// Generations evolved before the best candidates are finalized.
    pub generations: u32,
    /// Individuals carried over unchanged each generation.
    pub elite: usize,
    /// Per-gene mutation probability, permille.
    pub mutation_permille: u64,
    /// Cost model the (feasibility-biased) fitness minimises.
    pub cost_model: CostModel,
}

impl Default for GeneticMapper {
    fn default() -> Self {
        GeneticMapper {
            seed: 0x6E0_2008,
            population: 16,
            generations: 24,
            elite: 4,
            mutation_permille: 150,
            cost_model: CostModel::Energy(rtsm_platform::EnergyModel::default()),
        }
    }
}

/// Capacity violations and cost of one genome: genes are replayed onto a
/// scratch state in order; a gene that no longer fits counts as a
/// violation and claims nothing. `(0, cost)` means claim-feasible.
fn fitness(
    spec: &ApplicationSpec,
    platform: &Platform,
    base: &PlatformState,
    processes: &[ProcessId],
    genome: &Genome,
    cost_model: &CostModel,
) -> (u32, u64) {
    let mut working = base.clone();
    let mut violations = 0u32;
    let mut mapping = Mapping::new();
    for (&process, &(impl_index, tile)) in processes.iter().zip(genome) {
        let implementation = &spec.library.impls_for(process)[impl_index];
        let claim = claim_for(spec, process, implementation);
        if working.fits_tile(platform, tile, &claim) {
            working
                .claim_tile(platform, tile, &reservation_of(&claim))
                .expect("fits_tile just checked");
        } else {
            violations += 1;
        }
        mapping.assign(process, impl_index, tile);
    }
    (
        violations,
        cost_model.assignment_cost(&mapping, spec, platform),
    )
}

impl GeneticMapper {
    /// The deterministic greedy (step-1) and spiral seed genomes, when
    /// those heuristics produce an assignment under `constraints`.
    fn seed_genomes(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        base: &PlatformState,
        constraints: &MappingConstraints,
        processes: &[ProcessId],
    ) -> Vec<Genome> {
        let to_genome = |mapping: &Mapping| -> Option<Genome> {
            processes
                .iter()
                .map(|&p| mapping.assignment(p).map(|a| (a.impl_index, a.tile)))
                .collect()
        };
        let mut seeds = Vec::new();
        if let Ok(out) = assign_implementations(
            spec,
            platform,
            base,
            &feedback::Constraints::with_external(constraints.clone()),
        ) {
            seeds.extend(to_genome(&out.mapping));
        }
        let mut working = base.clone();
        if let Some((mapping, _)) = spiral_assignment(
            spec,
            platform,
            &mut working,
            constraints,
            &CostModel::TrafficWeighted,
            1,
        ) {
            seeds.extend(to_genome(&mapping));
        }
        seeds
    }
}

impl MappingAlgorithm for GeneticMapper {
    fn name(&self) -> &str {
        "bias-elitist genetic"
    }

    fn map_constrained(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        base: &PlatformState,
        constraints: &MappingConstraints,
    ) -> Result<MappingOutcome, MapError> {
        let processes = spec
            .graph
            .topological_order()
            .map_err(|_| no_feasible_mapping(0))?;
        // Options are enumerated against the *empty-claim* base once; the
        // fitness replay accounts for intra-genome capacity interactions.
        let options: Vec<Vec<(usize, TileId)>> = processes
            .iter()
            .map(|&p| viable_options(spec, platform, base, p, constraints))
            .collect();
        if options.iter().any(Vec::is_empty) {
            return Err(no_feasible_mapping(0));
        }

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut evaluated = 0u64;
        let score = |genome: &Genome, evaluated: &mut u64| {
            *evaluated += 1;
            fitness(spec, platform, base, &processes, genome, &self.cost_model)
        };

        // Population: deterministic seeds first, random fill after.
        let population_size = self.population.max(4);
        let mut population: Vec<(Genome, (u32, u64))> = Vec::with_capacity(population_size);
        for genome in self.seed_genomes(spec, platform, base, constraints, &processes) {
            let fit = score(&genome, &mut evaluated);
            population.push((genome, fit));
        }
        while population.len() < population_size {
            let genome: Genome = options
                .iter()
                .map(|opts| opts[rng.random_range(0..opts.len())])
                .collect();
            let fit = score(&genome, &mut evaluated);
            population.push((genome, fit));
        }

        let elite = self.elite.clamp(1, population_size - 1);
        for _ in 0..self.generations {
            // Bias-elitist ranking: feasibility first, cost second. The
            // sort is stable, so equal individuals keep their order and
            // the evolution stays deterministic.
            population.sort_by_key(|(_, fit)| *fit);
            let mut next: Vec<(Genome, (u32, u64))> = population[..elite].to_vec();
            while next.len() < population_size {
                // Binary tournaments with the same feasibility bias.
                let pick = |rng: &mut StdRng| {
                    let a = rng.random_range(0..population.len());
                    let b = rng.random_range(0..population.len());
                    if population[a].1 <= population[b].1 {
                        &population[a].0
                    } else {
                        &population[b].0
                    }
                };
                let mother = pick(&mut rng).clone();
                let father = pick(&mut rng).clone();
                // Uniform crossover + per-gene mutation from the options.
                let child: Genome = mother
                    .iter()
                    .zip(&father)
                    .zip(&options)
                    .map(|((&m, &f), opts)| {
                        if u64::from(rng.random_range(0..1000u32)) < self.mutation_permille {
                            opts[rng.random_range(0..opts.len())]
                        } else if rng.random_range(0..2u32) == 0 {
                            m
                        } else {
                            f
                        }
                    })
                    .collect();
                let fit = score(&child, &mut evaluated);
                next.push((child, fit));
            }
            population = next;
        }

        // Finalize the claim-feasible candidates best-first; routing or
        // dataflow may still reject some, so walk the ranking.
        population.sort_by_key(|(_, fit)| *fit);
        for (genome, (violations, _)) in &population {
            if *violations > 0 {
                break;
            }
            let mut mapping = Mapping::new();
            for (&p, &(impl_index, tile)) in processes.iter().zip(genome) {
                mapping.assign(p, impl_index, tile);
            }
            if let Some(outcome) = finalize_assignment(spec, platform, base, mapping, evaluated) {
                return Ok(outcome);
            }
        }
        Err(no_feasible_mapping(evaluated))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
    use rtsm_platform::paper::paper_platform;

    #[test]
    fn genetic_finds_a_feasible_mapping_on_the_paper_case() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let result = GeneticMapper::default()
            .map(&spec, &platform, &platform.initial_state())
            .expect("the GA maps the paper case");
        assert!(result.feasible);
        assert!(result.evaluated > 0);
    }

    #[test]
    fn genetic_is_deterministic_per_seed() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let a = GeneticMapper::default()
            .map(&spec, &platform, &platform.initial_state())
            .unwrap();
        let b = GeneticMapper::default()
            .map(&spec, &platform, &platform.initial_state())
            .unwrap();
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.energy_pj, b.energy_pj);
    }

    #[test]
    fn seeding_keeps_the_ga_at_least_as_good_as_greedy() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let ga = GeneticMapper::default()
            .map(&spec, &platform, &platform.initial_state())
            .unwrap();
        let greedy = crate::GreedyMapper
            .map(&spec, &platform, &platform.initial_state())
            .unwrap();
        // The greedy solution is in the initial population and elitism
        // never loses it, so the GA can only match or improve its energy.
        assert!(ga.energy_pj <= greedy.energy_pj);
    }

    #[test]
    fn genetic_honours_pinning_constraints() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let p = spec.graph.process_by_name("Prefix removal").unwrap();
        let tile = platform.tile_by_name("ARM1").unwrap();
        let constraints = MappingConstraints::none().pin(p, tile);
        let result = GeneticMapper::default()
            .map_constrained(&spec, &platform, &platform.initial_state(), &constraints)
            .expect("pinned paper case stays mappable");
        assert_eq!(result.mapping.assignment(p).unwrap().tile, tile);
        assert!(constraints.satisfied_by(&result.mapping));
    }
}
