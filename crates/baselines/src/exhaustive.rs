//! Exhaustive branch-and-bound: the optimal-energy reference.
//!
//! Enumerates every (implementation, tile) assignment in application order,
//! pruning branches whose partial energy already exceeds the incumbent.
//! The partial energy — processing energy of assigned processes plus
//! communication energy over Manhattan distances of fully decided channels
//! — is an admissible lower bound (routes are never shorter than Manhattan
//! distance, and remaining terms are non-negative).
//!
//! Intended for small instances; the paper's point is precisely that
//! "exhaustive search already requires far too much time" at run time, and
//! the benches quantify that claim.

use crate::common::{
    claim_option, finalize_assignment, no_feasible_mapping, release_option, viable_options,
};
use rtsm_app::{ApplicationSpec, Endpoint, ProcessId};
use rtsm_core::constraints::MappingConstraints;
use rtsm_core::{MapError, Mapping, MappingAlgorithm, MappingOutcome};
use rtsm_platform::{EnergyModel, Platform, PlatformState};

/// Branch-and-bound optimal mapper.
#[derive(Debug, Clone)]
pub struct ExhaustiveMapper {
    /// Abort after this many search nodes (returns best-so-far).
    pub max_nodes: u64,
    /// Energy model for the bound and final scoring.
    pub energy_model: EnergyModel,
}

impl Default for ExhaustiveMapper {
    fn default() -> Self {
        ExhaustiveMapper {
            max_nodes: 5_000_000,
            energy_model: EnergyModel::default(),
        }
    }
}

struct Search<'a> {
    spec: &'a ApplicationSpec,
    platform: &'a Platform,
    base: &'a PlatformState,
    model: &'a EnergyModel,
    constraints: &'a MappingConstraints,
    order: Vec<ProcessId>,
    best: Option<(u64, Mapping)>,
    nodes: u64,
    max_nodes: u64,
}

impl Search<'_> {
    /// Communication energy of channels fully decided by assigning `p`
    /// (both endpoints placed, or the other endpoint is a stream tile).
    fn comm_delta(&self, mapping: &Mapping, p: ProcessId) -> u64 {
        self.spec
            .graph
            .stream_channels()
            .filter_map(|(_, ch)| {
                let touches_p = ch.src == Endpoint::Process(p) || ch.dst == Endpoint::Process(p);
                if !touches_p {
                    return None;
                }
                let a = mapping.endpoint_tile(self.platform, ch.src)?;
                let b = mapping.endpoint_tile(self.platform, ch.dst)?;
                let hops = self.platform.manhattan(a, b);
                Some(self.model.channel_energy_pj(ch.tokens_per_period, hops))
            })
            .sum()
    }

    fn recurse(
        &mut self,
        depth: usize,
        mapping: &mut Mapping,
        working: &mut PlatformState,
        partial_energy: u64,
    ) {
        if self.nodes >= self.max_nodes {
            return;
        }
        self.nodes += 1;
        if let Some((best_energy, _)) = &self.best {
            if partial_energy >= *best_energy {
                return; // bound
            }
        }
        let Some(&process) = self.order.get(depth) else {
            // Leaf: validate with the shared routing + dataflow pipeline.
            if let Some(result) = finalize_assignment(
                self.spec,
                self.platform,
                self.base,
                mapping.clone(),
                self.nodes,
            ) {
                let better = self
                    .best
                    .as_ref()
                    .is_none_or(|(e, _)| result.energy_pj < *e);
                if better {
                    self.best = Some((result.energy_pj, result.mapping));
                }
            }
            return;
        };
        for (impl_index, tile) in
            viable_options(self.spec, self.platform, working, process, self.constraints)
        {
            if !claim_option(self.spec, self.platform, working, process, impl_index, tile) {
                continue;
            }
            mapping.assign(process, impl_index, tile);
            let implementation = &self.spec.library.impls_for(process)[impl_index];
            let delta = implementation.energy_pj_per_period + self.comm_delta(mapping, process);
            self.recurse(depth + 1, mapping, working, partial_energy + delta);
            // Undo: BTreeMap has no unassign; rebuild by overwrite at next
            // iteration and final removal below.
            release_option(self.spec, working, process, impl_index, tile);
        }
        mapping.unassign(process);
    }
}

impl MappingAlgorithm for ExhaustiveMapper {
    fn name(&self) -> &str {
        "exhaustive branch & bound"
    }

    fn map_constrained(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        base: &PlatformState,
        constraints: &MappingConstraints,
    ) -> Result<MappingOutcome, MapError> {
        let order = spec
            .graph
            .topological_order()
            .map_err(MapError::InvalidSpec)?;
        let mut search = Search {
            spec,
            platform,
            base,
            model: &self.energy_model,
            constraints,
            order,
            best: None,
            nodes: 0,
            max_nodes: self.max_nodes,
        };
        let mut mapping = Mapping::new();
        let mut working = base.clone();
        search.recurse(0, &mut mapping, &mut working, 0);
        let nodes = search.nodes;
        search
            .best
            .and_then(|(_, best)| finalize_assignment(spec, platform, base, best, nodes))
            .ok_or_else(|| no_feasible_mapping(nodes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
    use rtsm_platform::paper::paper_platform;

    #[test]
    fn optimal_on_paper_case_is_feasible_and_cheap() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let result = ExhaustiveMapper::default()
            .map(&spec, &platform, &platform.initial_state())
            .expect("paper case has feasible mappings");
        assert!(result.feasible);
        // Optimal uses both MONTIUMs (processing 341 nJ) and minimal
        // communication; it can be no worse than the heuristic.
        let heuristic = crate::SpatialMapper::default()
            .map(&spec, &platform, &platform.initial_state())
            .unwrap();
        assert!(result.energy_pj <= heuristic.energy_pj);
    }

    #[test]
    fn heuristic_matches_optimal_on_paper_case() {
        // The paper's walk-through is small enough that the heuristic finds
        // the optimum — the interesting quantitative fact E7 reports.
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let optimal = ExhaustiveMapper::default()
            .map(&spec, &platform, &platform.initial_state())
            .unwrap();
        let heuristic = crate::SpatialMapper::default()
            .map(&spec, &platform, &platform.initial_state())
            .unwrap();
        assert_eq!(optimal.energy_pj, heuristic.energy_pj);
    }

    #[test]
    fn node_guard_terminates_search() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let limited = ExhaustiveMapper {
            max_nodes: 1,
            ..ExhaustiveMapper::default()
        };
        // With one node the search cannot reach a leaf: no result.
        assert!(limited
            .map(&spec, &platform, &platform.initial_state())
            .is_err());
    }
}
