//! Best-of-N random adherent mappings: the sanity floor.

use crate::common::{claim_option, finalize_assignment, no_feasible_mapping, viable_options};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use rtsm_app::ApplicationSpec;
use rtsm_core::constraints::MappingConstraints;
use rtsm_core::{MapError, Mapping, MappingAlgorithm, MappingOutcome};
use rtsm_platform::{EnergyModel, Platform, PlatformState};

/// Samples `samples` random adherent mappings and returns the best
/// feasible one by energy.
#[derive(Debug, Clone)]
pub struct RandomMapper {
    /// RNG seed.
    pub seed: u64,
    /// Number of samples to draw.
    pub samples: u32,
    /// Energy model for scoring.
    pub energy_model: EnergyModel,
}

impl Default for RandomMapper {
    fn default() -> Self {
        RandomMapper {
            seed: 0x5EED,
            samples: 32,
            energy_model: EnergyModel::default(),
        }
    }
}

impl RandomMapper {
    fn sample(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        base: &PlatformState,
        constraints: &MappingConstraints,
        rng: &mut StdRng,
    ) -> Option<Mapping> {
        let mut order: Vec<_> = spec.graph.stream_processes().map(|(pid, _)| pid).collect();
        order.shuffle(rng);
        let mut working = base.clone();
        let mut mapping = Mapping::new();
        for pid in order {
            let options = viable_options(spec, platform, &working, pid, constraints);
            if options.is_empty() {
                return None;
            }
            let (impl_index, tile) = options[rng.random_range(0..options.len())];
            claim_option(spec, platform, &mut working, pid, impl_index, tile);
            mapping.assign(pid, impl_index, tile);
        }
        Some(mapping)
    }
}

impl MappingAlgorithm for RandomMapper {
    fn name(&self) -> &str {
        "random (best of N)"
    }

    fn map_constrained(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        base: &PlatformState,
        constraints: &MappingConstraints,
    ) -> Result<MappingOutcome, MapError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut best: Option<MappingOutcome> = None;
        let mut evaluated = 0u64;
        for _ in 0..self.samples {
            let Some(mapping) = self.sample(spec, platform, base, constraints, &mut rng) else {
                continue;
            };
            evaluated += 1;
            if let Some(result) = finalize_assignment(spec, platform, base, mapping, evaluated) {
                let better = best.as_ref().is_none_or(|b| result.energy_pj < b.energy_pj);
                if better {
                    best = Some(result);
                }
            }
        }
        best.map(|mut b| {
            b.evaluated = evaluated;
            b
        })
        .ok_or_else(|| no_feasible_mapping(evaluated))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
    use rtsm_platform::paper::paper_platform;

    #[test]
    fn random_finds_a_feasible_mapping_on_paper_case() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let result = RandomMapper::default()
            .map(&spec, &platform, &platform.initial_state())
            .expect("32 samples hit a feasible mapping");
        assert!(result.feasible);
    }

    #[test]
    fn random_no_better_than_heuristic_needs_not_hold_but_energy_positive() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let result = RandomMapper::default()
            .map(&spec, &platform, &platform.initial_state())
            .unwrap();
        // Structural sanity: at least the MONTIUM processing energy.
        assert!(result.energy_pj >= 341_000);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let a = RandomMapper::default()
            .map(&spec, &platform, &platform.initial_state())
            .unwrap();
        let b = RandomMapper::default()
            .map(&spec, &platform, &platform.initial_state())
            .unwrap();
        assert_eq!(a.energy_pj, b.energy_pj);
    }
}
