//! Simulated annealing: a design-time-strength optimiser for comparison.
//!
//! Starts from a first-fit assignment, then perturbs it with random
//! re-assignments and swaps under a geometric cooling schedule, optimising
//! the same energy objective the heuristic reports. The final state (and,
//! as a fallback, the best state seen) is validated with the shared
//! routing + dataflow pipeline.

use crate::common::{
    claim_option, finalize_assignment, no_feasible_mapping, release_option, viable_options,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rtsm_app::{ApplicationSpec, ProcessId};
use rtsm_core::constraints::MappingConstraints;
use rtsm_core::{MapError, Mapping, MappingAlgorithm, MappingOutcome};
use rtsm_platform::{EnergyModel, Platform, PlatformState};

/// Simulated-annealing mapper (seeded: runs are reproducible).
#[derive(Debug, Clone)]
pub struct AnnealingMapper {
    /// RNG seed.
    pub seed: u64,
    /// Number of proposed moves.
    pub iterations: u32,
    /// Initial temperature, in picojoules of acceptable uphill move.
    pub initial_temperature: f64,
    /// Geometric cooling factor per iteration.
    pub cooling: f64,
    /// Energy model scored against.
    pub energy_model: EnergyModel,
}

impl Default for AnnealingMapper {
    fn default() -> Self {
        AnnealingMapper {
            seed: 0xD41E_2008,
            iterations: 4000,
            initial_temperature: 50_000.0,
            cooling: 0.998,
            energy_model: EnergyModel::default(),
        }
    }
}

impl AnnealingMapper {
    /// First-fit initial assignment in application order.
    fn initial(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        working: &mut PlatformState,
        constraints: &MappingConstraints,
    ) -> Option<Mapping> {
        let mut mapping = Mapping::new();
        for pid in spec.graph.topological_order().ok()? {
            let options = viable_options(spec, platform, working, pid, constraints);
            let &(impl_index, tile) = options.first()?;
            claim_option(spec, platform, working, pid, impl_index, tile);
            mapping.assign(pid, impl_index, tile);
        }
        Some(mapping)
    }
}

impl MappingAlgorithm for AnnealingMapper {
    fn name(&self) -> &str {
        "simulated annealing"
    }

    fn map_constrained(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        base: &PlatformState,
        constraints: &MappingConstraints,
    ) -> Result<MappingOutcome, MapError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut working = base.clone();
        let mut mapping = self
            .initial(spec, platform, &mut working, constraints)
            .ok_or_else(|| no_feasible_mapping(0))?;
        let processes: Vec<ProcessId> = spec.graph.stream_processes().map(|(pid, _)| pid).collect();
        let mut energy = mapping.energy_pj(spec, platform, &self.energy_model) as f64;
        let mut best = (energy, mapping.clone());
        let mut temperature = self.initial_temperature;
        let mut evaluated = 0u64;

        for _ in 0..self.iterations {
            temperature *= self.cooling;
            let p = processes[rng.random_range(0..processes.len())];
            let current = mapping.assignment(p).expect("all processes assigned");
            // Propose: release p, pick a random alternative option.
            release_option(spec, &mut working, p, current.impl_index, current.tile);
            let options = viable_options(spec, platform, &working, p, constraints);
            if options.is_empty() {
                claim_option(
                    spec,
                    platform,
                    &mut working,
                    p,
                    current.impl_index,
                    current.tile,
                );
                continue;
            }
            let (impl_index, tile) = options[rng.random_range(0..options.len())];
            claim_option(spec, platform, &mut working, p, impl_index, tile);
            mapping.assign(p, impl_index, tile);
            evaluated += 1;
            let proposal = mapping.energy_pj(spec, platform, &self.energy_model) as f64;
            let delta = proposal - energy;
            let accept = delta <= 0.0
                || (temperature > f64::EPSILON
                    && rng.random::<f64>() < (-delta / temperature).exp());
            if accept {
                energy = proposal;
                if energy < best.0 {
                    best = (energy, mapping.clone());
                }
            } else {
                // Revert.
                release_option(spec, &mut working, p, impl_index, tile);
                claim_option(
                    spec,
                    platform,
                    &mut working,
                    p,
                    current.impl_index,
                    current.tile,
                );
                mapping.assign(p, current.impl_index, current.tile);
            }
        }

        finalize_assignment(spec, platform, base, mapping, evaluated)
            .or_else(|| finalize_assignment(spec, platform, base, best.1, evaluated))
            .ok_or_else(|| no_feasible_mapping(evaluated))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
    use rtsm_platform::paper::paper_platform;

    #[test]
    fn annealing_finds_a_feasible_mapping() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let result = AnnealingMapper::default()
            .map(&spec, &platform, &platform.initial_state())
            .expect("SA finds the paper case");
        assert!(result.feasible);
    }

    #[test]
    fn annealing_is_deterministic_per_seed() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let a = AnnealingMapper::default()
            .map(&spec, &platform, &platform.initial_state())
            .unwrap();
        let b = AnnealingMapper::default()
            .map(&spec, &platform, &platform.initial_state())
            .unwrap();
        assert_eq!(a.energy_pj, b.energy_pj);
        assert_eq!(a.mapping, b.mapping);
    }

    #[test]
    fn annealing_close_to_heuristic_on_paper_case() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let sa = AnnealingMapper::default()
            .map(&spec, &platform, &platform.initial_state())
            .unwrap();
        let heuristic = crate::SpatialMapper::default()
            .map(&spec, &platform, &platform.initial_state())
            .unwrap();
        // SA with thousands of evaluations should land within 25% of the
        // heuristic (usually it matches the optimum).
        assert!(sa.energy_pj as f64 <= heuristic.energy_pj as f64 * 1.25);
    }
}
