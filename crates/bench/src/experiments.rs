//! Experiment runners: one function per paper artefact (E1–E12 of
//! `DESIGN.md`).

use crate::render::{render_kpn, Table};
use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
use rtsm_app::{
    ApplicationSpec, Endpoint, Implementation, ImplementationLibrary, ProcessGraph, QosSpec,
};
use rtsm_baselines::{AnnealingMapper, ExhaustiveMapper, GreedyMapper, RandomMapper};
use rtsm_core::cost::CostModel;
use rtsm_core::report::{render_summary, render_table1, render_table2};
use rtsm_core::step2::{Step2Config, Step2Strategy};
use rtsm_core::trace::Step2Trace;
use rtsm_core::{MapperConfig, MappingAlgorithm, MappingOutcome, SpatialMapper};
use rtsm_dataflow::PhaseVec;
use rtsm_platform::paper::paper_platform;
use rtsm_platform::render::render_layout;
use rtsm_platform::{Platform, TileKind};
use rtsm_workloads::apps::{jpeg_encoder, wlan_tx};
use rtsm_workloads::{mesh_platform, synthetic_app, GraphShape, SyntheticConfig};
use std::fmt::Write as _;
use std::time::Instant;

/// The paper's default walk-through mode (`b` left symbolic in the paper;
/// QPSK ¾ keeps every Table 1 expression positive).
pub const DEFAULT_MODE: Hiperlan2Mode = Hiperlan2Mode::Qpsk34;

fn paper_mapping() -> (ApplicationSpec, Platform, MappingOutcome) {
    let spec = hiperlan2_receiver(DEFAULT_MODE);
    let platform = paper_platform();
    let result = SpatialMapper::new(MapperConfig::default())
        .map(&spec, &platform, &platform.initial_state())
        .expect("the paper's case study maps");
    (spec, platform, result)
}

/// E1 — Figure 1: the HIPERLAN/2 receiver KPN.
pub fn fig1() -> String {
    render_kpn(&hiperlan2_receiver(DEFAULT_MODE))
}

/// E2 — Table 1: the implementation library.
pub fn table1() -> String {
    render_table1(&hiperlan2_receiver(DEFAULT_MODE))
}

/// E3 — Figure 2: the MPSoC layout.
pub fn fig2() -> String {
    render_layout(&paper_platform())
}

/// E4 — Table 2: the step-2 processor-assignment iterations (rendered
/// table plus the raw trace for assertions).
pub fn table2() -> (String, Step2Trace) {
    let (spec, platform, result) = paper_mapping();
    let trace = result
        .trace
        .as_ref()
        .expect("the heuristic records a trace")
        .successful_attempt()
        .expect("feasible attempt exists")
        .step2
        .clone();
    (render_table2(&spec, &platform, &trace), trace)
}

/// Structured summary of the composed CSDF graph (Figure 3).
#[derive(Debug, Clone)]
pub struct Fig3Summary {
    /// Graphviz rendering of the composed graph.
    pub dot: String,
    /// Number of router actors (the paper's figure has 12).
    pub routers: usize,
    /// Total actors (paper: A/D + Sink + 4 processes + 12 routers = 18).
    pub actors: usize,
    /// The computed `B_i` capacities in words, channel-labelled.
    pub buffers: Vec<(String, u64)>,
    /// Achieved source period `(ps, iterations)`.
    pub achieved_period: (u64, u64),
    /// Human-readable mapping summary.
    pub summary: String,
}

/// E5 — Figure 3: the final CSDF graph with computed buffer capacities.
pub fn fig3() -> Fig3Summary {
    let (spec, platform, result) = paper_mapping();
    let csdf = result
        .csdf
        .as_ref()
        .expect("the heuristic retains the CSDF graph");
    let routers = csdf
        .actors()
        .filter(|(_, a)| a.name.starts_with("R("))
        .count();
    let buffers = result
        .buffers
        .iter()
        .enumerate()
        .map(|(i, b)| {
            (
                format!(
                    "B{} ({:?} @ {})",
                    i + 1,
                    b.channel,
                    platform.tile(b.tile).name
                ),
                b.capacity_words,
            )
        })
        .collect();
    Fig3Summary {
        dot: rtsm_dataflow::dot::to_dot(csdf),
        routers,
        actors: csdf.n_actors(),
        buffers,
        achieved_period: result.achieved_period,
        summary: render_summary(&result, &spec, &platform),
    }
}

/// Timing statistics of repeated full mapping runs (E6, §4.5).
#[derive(Debug, Clone, Copy)]
pub struct PerfStats {
    /// Number of timed runs.
    pub runs: u32,
    /// Fastest run in microseconds.
    pub min_us: f64,
    /// Mean run in microseconds.
    pub mean_us: f64,
    /// Slowest run in microseconds.
    pub max_us: f64,
}

/// E6 — §4.5: wall-clock time of the full four-step mapping.
pub fn perf(runs: u32) -> PerfStats {
    let spec = hiperlan2_receiver(DEFAULT_MODE);
    let platform = paper_platform();
    let state = platform.initial_state();
    let mapper = SpatialMapper::new(MapperConfig::default());
    // Warm-up.
    let _ = mapper.map(&spec, &platform, &state);
    let mut times = Vec::with_capacity(runs as usize);
    for _ in 0..runs {
        let t0 = Instant::now();
        let result = mapper.map(&spec, &platform, &state);
        let dt = t0.elapsed().as_secs_f64() * 1e6;
        assert!(result.is_ok());
        times.push(dt);
    }
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    let max = times.iter().copied().fold(0.0, f64::max);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    PerfStats {
        runs,
        min_us: min,
        mean_us: mean,
        max_us: max,
    }
}

/// One row of the E7 quality comparison.
#[derive(Debug, Clone)]
pub struct QualityRow {
    /// Workload label.
    pub workload: String,
    /// Algorithm label.
    pub algorithm: String,
    /// Energy in pJ/period (`None` = no feasible mapping found).
    pub energy_pj: Option<u64>,
    /// Communication hops.
    pub hops: Option<u32>,
    /// Wall time in microseconds.
    pub time_us: f64,
    /// Algorithm-reported search effort.
    pub evaluated: u64,
}

/// E7 — the quantitative benchmark §5 calls for: the heuristic against
/// optimal, annealing, random, and greedy baselines on synthetic workloads.
pub fn quality_comparison(seeds: &[u64]) -> (String, Vec<QualityRow>) {
    let mut rows = Vec::new();
    for &seed in seeds {
        let spec = synthetic_app(&SyntheticConfig {
            seed,
            n_processes: 6,
            shape: GraphShape::Chain,
            ..SyntheticConfig::default()
        });
        let platform = mesh_platform(
            seed ^ 0xA5A5,
            4,
            4,
            &[(TileKind::Montium, 4), (TileKind::Arm, 5)],
        );
        let state = platform.initial_state();
        let algorithms: Vec<Box<dyn MappingAlgorithm>> = vec![
            Box::new(SpatialMapper::default()),
            Box::new(GreedyMapper),
            Box::new(RandomMapper::default()),
            Box::new(AnnealingMapper {
                iterations: 1500,
                ..AnnealingMapper::default()
            }),
            Box::new(ExhaustiveMapper {
                max_nodes: 200_000,
                ..ExhaustiveMapper::default()
            }),
        ];
        for algorithm in &algorithms {
            let t0 = Instant::now();
            let outcome = algorithm.map(&spec, &platform, &state).ok();
            let time_us = t0.elapsed().as_secs_f64() * 1e6;
            rows.push(QualityRow {
                workload: format!("chain-6 seed {seed}"),
                algorithm: algorithm.name().to_string(),
                energy_pj: outcome.as_ref().map(|o| o.energy_pj),
                hops: outcome.as_ref().map(|o| o.communication_hops),
                time_us,
                evaluated: outcome.as_ref().map(|o| o.evaluated).unwrap_or(0),
            });
        }
    }

    let mut table = Table::new(&[
        "workload",
        "algorithm",
        "energy [nJ]",
        "hops",
        "time [µs]",
        "evaluations",
    ]);
    for r in &rows {
        table.row(vec![
            r.workload.clone(),
            r.algorithm.to_string(),
            r.energy_pj
                .map(|e| format!("{:.1}", e as f64 / 1000.0))
                .unwrap_or_else(|| "-".into()),
            r.hops.map(|h| h.to_string()).unwrap_or_else(|| "-".into()),
            format!("{:.0}", r.time_us),
            r.evaluated.to_string(),
        ]);
    }
    (table.render(), rows)
}

/// E8/E9 — ablations: step 2 on/off, search strategy, cost model.
pub fn ablation() -> String {
    let mut out = String::new();
    let spec = hiperlan2_receiver(DEFAULT_MODE);
    let platform = paper_platform();
    let state = platform.initial_state();

    // E8: step 2 on/off on the paper case.
    let full = SpatialMapper::default()
        .map(&spec, &platform, &state)
        .unwrap();
    let greedy = GreedyMapper.map(&spec, &platform, &state).unwrap();
    let _ = writeln!(out, "E8 — step 2 ablation (HIPERLAN/2 on paper platform):");
    let _ = writeln!(
        out,
        "  with step 2:    cost {} hops, {:.1} nJ",
        full.communication_hops,
        full.energy_pj as f64 / 1000.0
    );
    let _ = writeln!(
        out,
        "  without step 2: cost {} hops, {:.1} nJ",
        greedy.communication_hops,
        greedy.energy_pj as f64 / 1000.0
    );
    let _ = writeln!(
        out,
        "  communication reduction: {:.0}%",
        100.0 * (1.0 - full.communication_hops as f64 / greedy.communication_hops as f64)
    );

    // E9a: search strategy.
    let _ = writeln!(
        out,
        "\nE9a — step-2 strategy (PaperScan vs BestImprovement):"
    );
    for strategy in [Step2Strategy::PaperScan, Step2Strategy::BestImprovement] {
        let config = MapperConfig {
            step2: Step2Config {
                strategy,
                ..Step2Config::default()
            },
            ..MapperConfig::default()
        };
        let result = SpatialMapper::new(config)
            .map(&spec, &platform, &state)
            .unwrap();
        let evals: usize = result
            .trace
            .as_ref()
            .expect("the heuristic records a trace")
            .attempts
            .iter()
            .map(|a| a.step2.events.len())
            .sum();
        let _ = writeln!(
            out,
            "  {strategy:?}: final cost {} hops, {evals} evaluations",
            result.communication_hops
        );
    }

    // E9c: routing policy — the paper's adaptive capacity-aware search vs
    // classic dimension-ordered XY, on a congested platform.
    let _ = writeln!(out, "\nE9c — step-3 routing policy (congested 4×4 mesh):");
    {
        use rtsm_platform::RoutingPolicy;
        let platform = mesh_platform(77, 4, 4, &[(TileKind::Montium, 5), (TileKind::Arm, 5)]);
        // Pre-congest: another application already holds bandwidth on a
        // column of links.
        let mut base = platform.initial_state();
        for (l, link) in platform.links() {
            if link.from.x == 1 && link.to.x == 1 {
                base.allocate_link(&platform, l, link.capacity - 10_000_000)
                    .expect("empty ledger accepts");
            }
        }
        let syn = synthetic_app(&SyntheticConfig {
            seed: 77,
            n_processes: 6,
            ..SyntheticConfig::default()
        });
        for (label, routing) in [
            ("adaptive", RoutingPolicy::Adaptive),
            ("XY", RoutingPolicy::DimensionOrdered),
        ] {
            let config = MapperConfig {
                routing,
                ..MapperConfig::default()
            };
            match SpatialMapper::new(config).map(&syn, &platform, &base) {
                Ok(r) => {
                    let _ = writeln!(
                        out,
                        "  {label}: feasible, {} hops, {:.1} nJ, attempt {}",
                        r.communication_hops,
                        r.energy_pj as f64 / 1000.0,
                        r.attempts
                    );
                }
                Err(_) => {
                    let _ = writeln!(out, "  {label}: no feasible mapping");
                }
            }
        }
    }

    // E9b: cost model on synthetic workloads (hop count vs traffic vs
    // energy as the step-2 objective).
    let _ = writeln!(
        out,
        "\nE9b — step-2 cost model (synthetic chains, energy in nJ):"
    );
    for seed in [11u64, 12, 13] {
        let syn = synthetic_app(&SyntheticConfig {
            seed,
            n_processes: 6,
            ..SyntheticConfig::default()
        });
        let syn_platform = mesh_platform(seed, 4, 4, &[(TileKind::Montium, 4), (TileKind::Arm, 5)]);
        let syn_state = syn_platform.initial_state();
        let mut line = format!("  seed {seed}:");
        for (label, cost_model) in [
            ("hops", CostModel::HopCount),
            ("traffic", CostModel::TrafficWeighted),
            (
                "energy",
                CostModel::Energy(rtsm_platform::EnergyModel::default()),
            ),
        ] {
            let config = MapperConfig {
                cost_model,
                ..MapperConfig::default()
            };
            match SpatialMapper::new(config).map(&syn, &syn_platform, &syn_state) {
                Ok(r) => {
                    let _ = write!(line, " {label}={:.1}", r.energy_pj as f64 / 1000.0);
                }
                Err(_) => {
                    let _ = write!(line, " {label}=infeasible");
                }
            }
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

/// E10 — run-time knowledge vs design-time worst case (§1.3).
pub fn runtime_scenario() -> String {
    let mut out = String::new();
    // A 4×4 platform with seven MONTIUMs: the running 802.11a transmitter
    // claims six of them, so exactly one remains for the JPEG encoder — a
    // fact only known at run time.
    let platform = mesh_platform(99, 4, 4, &[(TileKind::Montium, 7), (TileKind::Arm, 5)]);
    let mapper = SpatialMapper::new(MapperConfig::default());
    let wlan = wlan_tx();
    let jpeg = jpeg_encoder();

    let mut state = platform.initial_state();
    let wlan_result = mapper
        .map(&wlan, &platform, &state)
        .expect("wlan maps on the empty platform");
    wlan_result
        .commit(&wlan, &platform, &mut state)
        .expect("commit after map");
    let _ = writeln!(
        out,
        "running: {} at {:.1} nJ/period",
        wlan.name,
        wlan_result.energy_pj as f64 / 1000.0
    );

    // Run-time mapping of B against the *actual* occupancy.
    let runtime = mapper.map(&jpeg, &platform, &state);

    // Design-time worst case: B's mapping must assume every MONTIUM could
    // be taken by other applications (the paper's worst-case argument), so
    // forbid them all by marking them occupied.
    let mut worst_case = platform.initial_state();
    for (tile, _) in platform.tiles_of_kind(TileKind::Montium) {
        worst_case
            .claim_tile(
                &platform,
                tile,
                &rtsm_platform::TileClaim {
                    slots: platform.tile(tile).compute_slots,
                    memory_bytes: 0,
                    cycles_per_second: 0,
                    injection: 0,
                    ejection: 0,
                },
            )
            .expect("empty ledger accepts the claim");
    }
    let designtime = mapper.map(&jpeg, &platform, &worst_case);

    match (&runtime, &designtime) {
        (Ok(rt), Ok(dt)) => {
            let _ = writeln!(
                out,
                "JPEG encoder, run-time mapping (actual occupancy): {:.1} nJ/period",
                rt.energy_pj as f64 / 1000.0
            );
            let _ = writeln!(
                out,
                "JPEG encoder, design-time worst case (all MONTIUMs assumed busy): {:.1} nJ/period",
                dt.energy_pj as f64 / 1000.0
            );
            let _ = writeln!(
                out,
                "run-time saving: {:.0}%",
                100.0 * (1.0 - rt.energy_pj as f64 / dt.energy_pj as f64)
            );
        }
        (Ok(rt), Err(_)) => {
            let _ = writeln!(
                out,
                "JPEG encoder, run-time mapping: {:.1} nJ/period; design-time worst case: \
                 NO mapping at all",
                rt.energy_pj as f64 / 1000.0
            );
        }
        _ => {
            let _ = writeln!(out, "unexpected: run-time mapping failed");
        }
    }
    out
}

/// One row of the E11 mode sweep.
#[derive(Debug, Clone)]
pub struct ModeRow {
    /// Mode name.
    pub mode: &'static str,
    /// Demapped words per symbol (`b`).
    pub b_words: u64,
    /// Whether the mapping is feasible.
    pub feasible: bool,
    /// Computed buffer capacities `B_1..B_4` in words.
    pub buffers: Vec<u64>,
    /// Energy in pJ/period.
    pub energy_pj: u64,
}

/// E11 — the seven HIPERLAN/2 modes: feasibility and buffer sizes vs `b`.
pub fn modes() -> (String, Vec<ModeRow>) {
    let platform = paper_platform();
    let mapper = SpatialMapper::new(MapperConfig::default());
    let mut rows = Vec::new();
    for mode in Hiperlan2Mode::ALL {
        let spec = hiperlan2_receiver(mode);
        match mapper.map(&spec, &platform, &platform.initial_state()) {
            Ok(result) => rows.push(ModeRow {
                mode: mode.name(),
                b_words: mode.demapped_words(),
                feasible: true,
                buffers: result.buffers.iter().map(|b| b.capacity_words).collect(),
                energy_pj: result.energy_pj,
            }),
            Err(_) => rows.push(ModeRow {
                mode: mode.name(),
                b_words: mode.demapped_words(),
                feasible: false,
                buffers: Vec::new(),
                energy_pj: 0,
            }),
        }
    }
    let mut table = Table::new(&[
        "mode",
        "b [words]",
        "feasible",
        "B1..B4 [words]",
        "energy [nJ]",
    ]);
    for r in &rows {
        table.row(vec![
            r.mode.to_string(),
            r.b_words.to_string(),
            r.feasible.to_string(),
            format!("{:?}", r.buffers),
            format!("{:.1}", r.energy_pj as f64 / 1000.0),
        ]);
    }
    (table.render(), rows)
}

/// E12 — feedback-driven refinement: a first-fit placement that cannot be
/// routed is repaired on the second attempt.
pub fn feedback_demo() -> (String, MappingOutcome) {
    use rtsm_platform::{Coord, PlatformBuilder};
    // ARM-best sits between A/D and Sink (communication cost 2) but all of
    // its links are pre-saturated; ARM-detour costs 6. Step 1 first-fits
    // onto ARM-best, step 2 keeps it (moving would *raise* the Manhattan
    // cost), so step 3 must fail and feed back — the refinement then
    // forbids the tile and attempt 2 lands on ARM-detour.
    let platform = PlatformBuilder::mesh(3, 3)
        .tile("ARM-best", TileKind::Arm, Coord { x: 0, y: 1 })
        .tile("ARM-detour", TileKind::Arm, Coord { x: 2, y: 1 })
        .tile("A/D", TileKind::AdcSource, Coord { x: 0, y: 0 })
        .tile("Sink", TileKind::Sink, Coord { x: 0, y: 2 })
        .build()
        .expect("valid layout");
    let mut base = platform.initial_state();
    let blocked = Coord { x: 0, y: 1 };
    for n in platform.neighbours(blocked) {
        for (a, b) in [(blocked, n), (n, blocked)] {
            let link = platform.link_between(a, b).expect("adjacent");
            let residual = base.residual_link(&platform, link);
            base.allocate_link(&platform, link, residual).expect("fits");
        }
    }

    // A single-process pass-through application.
    let mut graph = ProcessGraph::new();
    let p = graph.add_process_abbrev("Filter", "Flt.");
    graph
        .add_channel(Endpoint::StreamInput, Endpoint::Process(p), 16)
        .expect("valid endpoints");
    graph
        .add_channel(Endpoint::Process(p), Endpoint::StreamOutput, 16)
        .expect("valid endpoints");
    let mut library = ImplementationLibrary::new();
    library.register(
        p,
        Implementation::simple(
            "Filter @ ARM",
            TileKind::Arm,
            PhaseVec::from_slice(&[4, 40, 4]),
            PhaseVec::from_slice(&[16, 0, 0]),
            PhaseVec::from_slice(&[0, 0, 16]),
            10_000,
            1024,
        ),
    );
    let spec = ApplicationSpec {
        name: "pass-through filter".into(),
        graph,
        qos: QosSpec::with_period(4_000_000),
        library,
    };

    let result = SpatialMapper::new(MapperConfig::default())
        .map(&spec, &platform, &base)
        .expect("refinement finds the detour ARM");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "steps 1–2 placed `Filter` on ARM-best (cheapest, but unroutable: links saturated);"
    );
    let _ = writeln!(
        out,
        "step-3 feedback forbade that tile; attempt {} mapped it on {} — feasible.",
        result.attempts,
        platform
            .tile(
                result
                    .mapping
                    .assignments()
                    .next()
                    .expect("assigned")
                    .1
                    .tile
            )
            .name
    );
    (out, result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_trace_matches_paper_exactly() {
        let (rendered, trace) = table2();
        assert_eq!(trace.initial_cost, 11);
        let shown: Vec<(u64, bool)> = trace.events.iter().map(|e| (e.cost, e.kept)).collect();
        assert_eq!(&shown[..3], &[(11, false), (9, true), (7, true)]);
        assert!(rendered.contains("Initial (greedy) assignment"));
        assert!(rendered.contains("No further choices"));
    }

    #[test]
    fn fig3_summary_matches_paper_shape() {
        let f = fig3();
        assert_eq!(f.routers, 12);
        assert_eq!(f.actors, 18);
        assert_eq!(f.buffers.len(), 4);
        assert_eq!(f.achieved_period.0, 4_000_000 * f.achieved_period.1);
        assert!(f.dot.contains("digraph"));
    }

    #[test]
    fn perf_is_run_time_scale() {
        let stats = perf(5);
        // The paper's C implementation took <4 ms at 100 MHz; release
        // builds here measure ~10 ms (exact simulation instead of the
        // paper's closed-form buffer bounds). Debug builds are ~15× slower,
        // so the guard is profile-dependent.
        let bound_us = if cfg!(debug_assertions) {
            2_000_000.0
        } else {
            100_000.0
        };
        assert!(stats.mean_us < bound_us, "mean {} µs", stats.mean_us);
    }

    #[test]
    fn quality_heuristic_never_worse_than_random_never_better_than_optimal() {
        let (_, rows) = quality_comparison(&[21]);
        let energy = |name: &str| {
            rows.iter()
                .find(|r| r.algorithm.contains(name))
                .and_then(|r| r.energy_pj)
        };
        let heuristic = energy("heuristic").expect("heuristic maps");
        if let Some(optimal) = energy("exhaustive") {
            assert!(heuristic >= optimal);
            // Shape claim: heuristic within 2x of optimal.
            assert!(
                heuristic <= optimal * 2,
                "heuristic {heuristic} vs optimal {optimal}"
            );
        }
        if let Some(random) = energy("random") {
            assert!(
                heuristic <= random * 11 / 10,
                "heuristic {heuristic} vs random {random}"
            );
        }
    }

    #[test]
    fn mode_sweep_all_feasible_with_monotone_last_buffer() {
        let (_, rows) = modes();
        assert!(rows.iter().all(|r| r.feasible));
        assert_eq!(rows.len(), 7);
    }

    #[test]
    fn feedback_demo_recovers_on_second_attempt() {
        let (_, result) = feedback_demo();
        assert!(result.attempts >= 2);
        assert!(result.feasible);
    }

    #[test]
    fn runtime_scenario_reports_saving_or_rejection() {
        let s = runtime_scenario();
        assert!(s.contains("run-time"), "{s}");
    }
}
