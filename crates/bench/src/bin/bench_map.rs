//! `bench_map` — the tracked perf baseline of the mapping hot path.
//!
//! Emits `BENCH_map.json` with:
//!
//! * median `map()` latency on the paper case (trace capture on and off),
//!   next to the recorded pre-optimisation baseline, so the perf
//!   trajectory has explicit data points;
//! * the `observability` section (new in schema 5): a per-step latency
//!   breakdown of `map()` (steps 1–4 + buffer sizing, p50/p90/p99/max
//!   from a `SpanLatencyProbe`) plus the **probe-overhead gate** — the
//!   `map()` median with a no-op probe installed must stay within 3% of
//!   the bare median (interleaved samples, asserted);
//! * synthetic-chain scaling (map latency vs. application size);
//! * simulated events/second for every algorithm in the
//!   `rtsm_exp::ALGORITHMS` registry under a fixed-seed stochastic
//!   workload;
//! * the energy-aware reconfiguration **Pareto front** (`pareto` section):
//!   blocking ‰ vs. total migration energy for a sweep of the objective
//!   weight λ and the admission-policy set on the defrag workload, with
//!   sanity gates (bounded policies must still recover admissions while
//!   spending strictly less migration energy than always-admit);
//! * peak live heap allocation during one `map()` call, via the workspace's
//!   [`PeakAlloc`] global allocator;
//! * the fault-injection chaos run (`resilience` section, new in schema
//!   6): a seeded tile/link failure process on the mixed catalog,
//!   recovered through `RuntimeManager::evacuate`, with evacuation
//!   latency percentiles from a `SpanLatencyProbe` on `Span::Evacuate`
//!   and degraded-vs-healthy blocking. Byte-identical determinism of the
//!   fault-injected report, at least one successful evacuation, full
//!   repair coverage, and a leak-free ledger are asserted;
//! * the template-library admission split (`templates` section, new in
//!   schema 7): hit-path latency (`Span::TemplateMatch`, pure-hit
//!   admissions of the paper case) against the full-heuristic miss path
//!   (`Span::Map`), p50/p90/p99 from a `SpanLatencyProbe` over one
//!   interleaved window, with the **hit-beats-miss gate** (hit p50 <
//!   miss p50, asserted) and the deterministic steady-state hit-rate
//!   floor (≥ 500‰ on the mixed catalog, asserted) plus events/second
//!   with templates on vs off;
//! * the budget-raced algorithm portfolio (`portfolio` section, new in
//!   schema 8): blocking ‰ of the default `PortfolioMapper` next to its
//!   best standalone member on every registered catalog, with the
//!   **portfolio-beats-members gate** (per-admission: every arrival the
//!   portfolio blocks is replayed through all members on the identical
//!   platform state and must be unmappable by each — asserted zero
//!   recoverable blocks per catalog) and the racing-determinism gate
//!   (the fixed-seed mixed-catalog report byte-identical at 1 vs 4
//!   racing workers, asserted);
//! * worker-pool **scaling** (`scaling` section): events/second of one
//!   fixed experiment spec run through `rtsm_exp` at 1, 2, and 4 workers.
//!   The sealed reports are asserted byte-identical across worker counts;
//!   the >1-worker speedup is gated only when the machine actually has
//!   ≥ 2 hardware threads (recorded as `speedup_gated`), so the smoke
//!   cannot fail on a single-core runner where no speedup is possible.
//!
//! ```text
//! bench_map [--out PATH] [--iters N] [--sim-arrivals N] [--seed N]
//! ```
//!
//! Everything except wall-clock numbers is deterministic per seed; the run
//! re-checks the paper reproduction (cost 7, 4 buffers) and fixed-seed
//! report determinism, and **fails** (exit ≠ 0) if either breaks — these
//! are the CI sanity gates. Wall-clock figures are reported but never
//! gated — with one deliberate exception: the probe-overhead bound
//! compares two interleaved measurements of the *same* workload taken in
//! the same window, so runner speed cancels out and only a real
//! instrumentation regression can trip it.

use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
use rtsm_baselines::PortfolioMapper;
use rtsm_bench::alloc_track::PeakAlloc;
use rtsm_core::{
    AdmissionPolicy, MapperConfig, MappingAlgorithm, ReconfigurationObjective,
    ReconfigurationPolicy, RuntimeManager, SpatialMapper, TemplatedMapper,
};
use rtsm_exp::{run_experiment, write_atomic, ExperimentSpec, PolicySpec, SpecTemplate};
use rtsm_obs::{self as obs, Counter, NoopProbe, Span, SpanLatencyProbe};
use rtsm_platform::paper::paper_platform;
use rtsm_platform::TileKind;
use rtsm_sim::{run_sim, Catalog, SimConfig};
use rtsm_workloads::{
    defrag_heavy, defrag_light, defrag_platform, mesh_platform, synthetic_app, GraphShape,
    SyntheticConfig,
};
use serde::Serialize;
use std::hint::black_box;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc::new();

/// Median map latency on the paper case, measured before this PR's
/// allocation-free hot path landed (commit `c9eb51b`, same harness and
/// container class, trace capture always on — the only mode that existed).
/// Kept in the report so every run shows the trajectory explicitly.
const PRE_PR_BASELINE_MEDIAN_NS: u64 = 9_308_103;

#[derive(Serialize)]
struct PaperCase {
    iterations: u64,
    capture_on_median_ns: u64,
    capture_off_median_ns: u64,
    /// `baseline_median_ns / capture_off_median_ns`, in percent (250 = 2.5×).
    speedup_vs_baseline_pct: u64,
    peak_alloc_capture_on_bytes: u64,
    peak_alloc_capture_off_bytes: u64,
}

#[derive(Serialize)]
struct Baseline {
    commit: String,
    map_paper_median_ns: u64,
    note: String,
}

#[derive(Serialize)]
struct ChainPoint {
    n_processes: u64,
    median_ns: u64,
}

#[derive(Serialize)]
struct SimPoint {
    algorithm: String,
    arrivals: u64,
    admitted: u64,
    events_processed: u64,
    wall_ms: u64,
    events_per_sec: u64,
    mean_map_us: u64,
}

/// The fill → churn → admit experiment: how many admissions that plain
/// admission loses to fragmentation does reconfiguration recover, and at
/// what latency.
#[derive(Serialize)]
struct FragmentedAdmission {
    rounds: u64,
    /// Heavy admissions recovered per round by plain admission (always 0:
    /// the scenario is constructed so plain admission is blocked).
    plain_recovered: u64,
    /// Heavy admissions recovered by `start_with_reconfiguration`.
    reconfig_recovered: u64,
    /// `reconfig_recovered / rounds`, in percent.
    recovered_admission_rate_pct: u64,
    /// Migrations committed over all recovered admissions.
    migrations_committed: u64,
    /// Median wall latency of one recovering `start_with_reconfiguration`
    /// call (release + map + re-map + commit, all transactional), in ns.
    remap_median_ns: u64,
}

/// One point of the energy-aware reconfiguration Pareto front: a (policy,
/// λ) configuration simulated on the defrag workload. Deterministic per
/// seed — the λ-sweep table in the README is generated from these.
#[derive(Serialize)]
struct ParetoPoint {
    policy: String,
    lambda_permille: u64,
    blocking_permille: u64,
    admissions_recovered: u64,
    migrations_committed: u64,
    migration_energy_pj: u64,
    plans_refused: u64,
    mode_switches_survived: u64,
}

/// The fault-injection chaos run (new in schema 6): a seeded tile/link
/// failure process on the mixed catalog, recovered through
/// `RuntimeManager::evacuate`. Virtual-time counters are deterministic
/// per seed; the evacuation latency percentiles (from a
/// `SpanLatencyProbe` on `Span::Evacuate`) are wall-clock and reported
/// but never gated.
#[derive(Serialize)]
struct Resilience {
    arrivals: u64,
    mttf: u64,
    mttr: u64,
    failures_injected: u64,
    repairs: u64,
    apps_evacuated: u64,
    apps_evicted: u64,
    processes_moved: u64,
    evacuation_energy_pj: u64,
    mean_recovery_ticks: u64,
    degraded_blocking_permille: u64,
    healthy_blocking_permille: u64,
    /// Evacuations timed by the probe (= failures that had any victims
    /// or none — one span per `evacuate` call).
    evacuate_calls: u64,
    evacuate_p50_ns: u64,
    evacuate_p99_ns: u64,
    evacuate_max_ns: u64,
}

/// Latency distribution of one admission path in the template split,
/// in ns (log2-bucket percentile resolution).
#[derive(Serialize)]
struct PathLatency {
    count: u64,
    p50_ns: u64,
    p90_ns: u64,
    p99_ns: u64,
    max_ns: u64,
}

/// The template-library admission benchmark (new in schema 7): the
/// microsecond hit path (`Span::TemplateMatch` over pure-hit admissions
/// of the paper case) against the full-heuristic miss path (`Span::Map`
/// on the same case, interleaved in the same window — so the asserted
/// `hit p50 < miss p50` gate is runner-independent), plus the mixed-
/// catalog steady-state simulation with templates on vs off. The hit
/// rate is a virtual-time counter and therefore gated; the 100 µs hit
/// p50 target is wall-clock and reported but never gated.
#[derive(Serialize)]
struct Templates {
    iterations: u64,
    hit: PathLatency,
    miss: PathLatency,
    /// The issue's hit-path latency target (100 µs), informational.
    hit_p50_target_ns: u64,
    hit_p50_within_target: bool,
    /// Mixed-catalog steady-state run, templates on vs off.
    sim_arrivals: u64,
    hit_permille: u64,
    shapes_cached: u64,
    events_per_sec_templates_on: u64,
    events_per_sec_templates_off: u64,
    mean_map_us_templates_on: u64,
    mean_map_us_templates_off: u64,
}

/// One catalog of the portfolio-vs-members comparison: the budget-raced
/// `PortfolioMapper` against its best standalone member at the same
/// modeled per-admission latency budget.
#[derive(Serialize)]
struct PortfolioPoint {
    catalog: String,
    portfolio_blocking_permille: u64,
    best_member: String,
    best_member_blocking_permille: u64,
    /// Arrivals the portfolio blocked that some standalone member could
    /// have mapped on the identical platform state. Asserted zero — this
    /// is the per-admission "portfolio blocks no more than its best
    /// member" gate, checked where the comparison is actually like for
    /// like.
    recoverable_blocks: u64,
    portfolio_mean_map_us: u64,
    best_member_mean_map_us: u64,
}

/// The algorithm-portfolio benchmark (new in schema 8). Two hard gates:
/// per-admission, the portfolio never blocks an arrival any single
/// member could have mapped on the same platform state
/// (`recoverable_blocks == 0` per catalog — the ROADMAP acceptance
/// bar), and fixed-seed portfolio reports must be byte-identical at
/// 1 vs 4 racing workers.
#[derive(Serialize)]
struct Portfolio {
    arrivals: u64,
    budget_us: u64,
    members: Vec<String>,
    /// Fixed-seed mixed-catalog reports byte-identical at 1 vs 4 workers.
    reports_identical_across_workers: bool,
    points: Vec<PortfolioPoint>,
}

/// Replays every portfolio member on each admission the portfolio
/// blocks, counting the blocks a standalone member could have recovered
/// on the identical platform state. Delegates mapping to the wrapped
/// portfolio, so the simulated trajectory is exactly the portfolio's.
struct MemberCoverage<'a> {
    portfolio: PortfolioMapper,
    members: &'a [rtsm_baselines::PortfolioMember],
    recoverable_blocks: std::cell::Cell<u64>,
}

impl MappingAlgorithm for MemberCoverage<'_> {
    fn name(&self) -> &str {
        self.portfolio.name()
    }

    fn map_constrained(
        &self,
        spec: &rtsm_app::ApplicationSpec,
        platform: &rtsm_platform::Platform,
        base: &rtsm_platform::PlatformState,
        constraints: &rtsm_core::MappingConstraints,
    ) -> Result<rtsm_core::MappingOutcome, rtsm_core::MapError> {
        let result = self
            .portfolio
            .map_constrained(spec, platform, base, constraints);
        if result.is_err() {
            let recovered = self.members.iter().any(|member| {
                (member.build)()
                    .map_constrained(spec, platform, base, constraints)
                    .is_ok()
            });
            if recovered {
                self.recoverable_blocks
                    .set(self.recoverable_blocks.get() + 1);
            }
        }
        result
    }
}

/// Throughput of the sharded experiment harness at one worker count.
#[derive(Serialize)]
struct ScalingPoint {
    workers: u64,
    events_processed: u64,
    wall_ms: u64,
    events_per_sec: u64,
}

/// The worker-pool scaling sweep: one fixed spec run at 1→N workers.
/// Wall-clock only — the sealed experiment reports themselves are
/// byte-identical across worker counts (asserted every run).
#[derive(Serialize)]
struct Scaling {
    /// Hardware threads the machine reports; on 1 no speedup is
    /// physically possible and the speedup gate is skipped.
    available_parallelism: u64,
    spec_trials: u64,
    spec_total_arrivals: u64,
    /// Sealed reports byte-identical across all swept worker counts.
    reports_identical: bool,
    /// Whether the >1-worker-beats-1-worker assertion was enforced.
    speedup_gated: bool,
    points: Vec<ScalingPoint>,
}

/// Latency distribution of one instrumented span across the breakdown
/// iterations, in ns (log2-bucket percentile resolution).
#[derive(Serialize)]
struct StepLatency {
    span: String,
    count: u64,
    p50_ns: u64,
    p90_ns: u64,
    p99_ns: u64,
    max_ns: u64,
}

/// Total of one probe counter across the breakdown iterations.
#[derive(Serialize)]
struct CounterTotal {
    counter: String,
    total: u64,
}

/// The probe-overhead gate: bare `map()` vs `map()` with a no-op probe
/// installed, interleaved in the same measurement window.
#[derive(Serialize)]
struct ProbeOverhead {
    iterations: u64,
    bare_median_ns: u64,
    noop_probe_median_ns: u64,
    /// `(probed − bare) · 1000 / bare`; negative when probed ran faster.
    overhead_permille: i64,
    /// The asserted bound (30‰ = 3%).
    max_allowed_permille: u64,
}

/// Per-step latency breakdown and instrumentation cost — the baseline the
/// template-library work will be judged against.
#[derive(Serialize)]
struct Observability {
    breakdown_iterations: u64,
    step_latency: Vec<StepLatency>,
    counters: Vec<CounterTotal>,
    probe_overhead: ProbeOverhead,
}

#[derive(Serialize)]
struct BenchReport {
    schema: String,
    seed: u64,
    baseline: Baseline,
    map_paper: PaperCase,
    observability: Observability,
    synthetic_chain: Vec<ChainPoint>,
    sim: Vec<SimPoint>,
    fragmented_admission: FragmentedAdmission,
    pareto: Vec<ParetoPoint>,
    resilience: Resilience,
    templates: Templates,
    portfolio: Portfolio,
    scaling: Scaling,
    sanity_checks_passed: bool,
}

fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_u64(args: &[String], flag: &str, default: u64) -> u64 {
    parse_flag(args, flag).map_or(default, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: {flag} expects an integer, got `{v}`");
            std::process::exit(2);
        })
    })
}

fn median(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Times `iters` runs of `f` and returns the median latency in ns.
fn measure(iters: u64, mut f: impl FnMut()) -> u64 {
    let mut samples = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_nanos() as u64);
    }
    median(&mut samples)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = parse_flag(&args, "--out").unwrap_or_else(|| "BENCH_map.json".into());
    let iters = parse_u64(&args, "--iters", 200);
    let sim_arrivals = parse_u64(&args, "--sim-arrivals", 2000);
    let seed = parse_u64(&args, "--seed", 2008);

    // --- Paper case: median map latency, capture on vs off ----------------
    let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
    let platform = paper_platform();
    let state = platform.initial_state();
    let mapper_on = SpatialMapper::new(MapperConfig::default());
    let mapper_off = SpatialMapper::new(MapperConfig::default().without_capture());

    // Sanity gates (deterministic; these FAIL the smoke when broken).
    let outcome = mapper_off.map(&spec, &platform, &state).expect("feasible");
    assert_eq!(outcome.communication_hops, 7, "paper cost regression");
    assert_eq!(outcome.buffers.len(), 4, "paper buffer-count regression");
    assert!(outcome.trace.is_none(), "capture off must not build traces");
    let on_outcome = mapper_on.map(&spec, &platform, &state).expect("feasible");
    assert_eq!(
        on_outcome.evaluated, outcome.evaluated,
        "capture knob changed search-effort counters"
    );

    for _ in 0..iters.min(50) {
        black_box(mapper_off.map(&spec, &platform, &state).ok()); // warm-up
    }
    // Interleave the two configurations so thermal/frequency drift over the
    // measurement window biases neither.
    let mut off_samples = Vec::with_capacity(iters as usize);
    let mut on_samples = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t = Instant::now();
        black_box(mapper_off.map(&spec, &platform, &state).ok());
        off_samples.push(t.elapsed().as_nanos() as u64);
        let t = Instant::now();
        black_box(mapper_on.map(&spec, &platform, &state).ok());
        on_samples.push(t.elapsed().as_nanos() as u64);
    }
    let capture_off_median_ns = median(&mut off_samples);
    let capture_on_median_ns = median(&mut on_samples);

    ALLOC.reset_peak();
    let live_before = ALLOC.live_bytes() as u64;
    black_box(mapper_off.map(&spec, &platform, &state).ok());
    let peak_alloc_capture_off_bytes = ALLOC.peak_bytes() as u64 - live_before;
    ALLOC.reset_peak();
    let live_before = ALLOC.live_bytes() as u64;
    black_box(mapper_on.map(&spec, &platform, &state).ok());
    let peak_alloc_capture_on_bytes = ALLOC.peak_bytes() as u64 - live_before;

    println!(
        "map/hiperlan2_paper_platform: median {:.3} ms (capture off {:.3} ms); \
         pre-PR baseline {:.3} ms → {:.2}x",
        capture_on_median_ns as f64 / 1e6,
        capture_off_median_ns as f64 / 1e6,
        PRE_PR_BASELINE_MEDIAN_NS as f64 / 1e6,
        PRE_PR_BASELINE_MEDIAN_NS as f64 / capture_off_median_ns as f64,
    );

    // --- Observability: per-step breakdown + probe-overhead gate ----------
    // Per-step latency: a SpanLatencyProbe times every instrumented span
    // of the capture-off mapper over the paper case.
    let breakdown_iterations = iters.clamp(1, 100);
    let span_probe = Rc::new(SpanLatencyProbe::new());
    {
        let _guard = obs::install(span_probe.clone());
        for _ in 0..breakdown_iterations {
            black_box(mapper_off.map(&spec, &platform, &state).ok());
        }
    }
    let step_spans = [
        Span::Map,
        Span::Step1,
        Span::Step2,
        Span::Step3,
        Span::Step4,
        Span::BufferSizing,
    ];
    let mut step_latency = Vec::with_capacity(step_spans.len());
    for span in step_spans {
        let h = span_probe.histogram(span);
        println!(
            "map/steps/{}: {} samples, p50 {:.1} µs, p99 {:.1} µs, max {:.1} µs",
            span.name(),
            h.count(),
            h.p50_ns() as f64 / 1e3,
            h.p99_ns() as f64 / 1e3,
            h.max_ns() as f64 / 1e3,
        );
        step_latency.push(StepLatency {
            span: span.name().to_string(),
            count: h.count(),
            p50_ns: h.p50_ns(),
            p90_ns: h.p90_ns(),
            p99_ns: h.p99_ns(),
            max_ns: h.max_ns(),
        });
    }
    let counters = Counter::ALL
        .iter()
        .map(|&c| CounterTotal {
            counter: c.name().to_string(),
            total: span_probe.counter_total(c),
        })
        .collect();

    // Probe overhead: the same map() workload bare vs with a no-op probe
    // installed, interleaved so drift biases neither. This is the one
    // wall-clock gate: both sides run in the same window on the same
    // work, so only real instrumentation cost can separate them.
    let mut bare_samples = Vec::with_capacity(iters as usize);
    let mut probed_samples = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t = Instant::now();
        black_box(mapper_off.map(&spec, &platform, &state).ok());
        bare_samples.push(t.elapsed().as_nanos() as u64);
        let _guard = obs::install(Rc::new(NoopProbe));
        let t = Instant::now();
        black_box(mapper_off.map(&spec, &platform, &state).ok());
        probed_samples.push(t.elapsed().as_nanos() as u64);
    }
    let bare_median_ns = median(&mut bare_samples);
    let noop_probe_median_ns = median(&mut probed_samples);
    let overhead_permille =
        (noop_probe_median_ns as i64 - bare_median_ns as i64) * 1000 / bare_median_ns.max(1) as i64;
    const MAX_PROBE_OVERHEAD_PERMILLE: i64 = 30;
    println!(
        "probe overhead: bare {:.3} ms, no-op probe {:.3} ms → {overhead_permille}‰ \
         (bound {MAX_PROBE_OVERHEAD_PERMILLE}‰)",
        bare_median_ns as f64 / 1e6,
        noop_probe_median_ns as f64 / 1e6,
    );
    assert!(
        overhead_permille <= MAX_PROBE_OVERHEAD_PERMILLE,
        "no-op probe overhead {overhead_permille}‰ exceeds the \
         {MAX_PROBE_OVERHEAD_PERMILLE}‰ (3%) bound \
         ({noop_probe_median_ns} vs {bare_median_ns} ns)"
    );
    let observability = Observability {
        breakdown_iterations,
        step_latency,
        counters,
        probe_overhead: ProbeOverhead {
            iterations: iters,
            bare_median_ns,
            noop_probe_median_ns,
            overhead_permille,
            max_allowed_permille: MAX_PROBE_OVERHEAD_PERMILLE as u64,
        },
    };

    // --- Synthetic-chain scaling ------------------------------------------
    let mut synthetic_chain = Vec::new();
    for n in [4u64, 6, 8, 10] {
        let chain_spec = synthetic_app(&SyntheticConfig {
            seed: 42,
            n_processes: n as usize,
            shape: GraphShape::Chain,
            ..SyntheticConfig::default()
        });
        let mesh = mesh_platform(7, 5, 5, &[(TileKind::Montium, 8), (TileKind::Arm, 8)]);
        let mesh_state = mesh.initial_state();
        if mapper_off.map(&chain_spec, &mesh, &mesh_state).is_err() {
            continue;
        }
        let median_ns = measure(iters.clamp(1, 50), || {
            black_box(mapper_off.map(&chain_spec, &mesh, &mesh_state).ok());
        });
        println!(
            "map/synthetic_chain/{n}: median {:.3} ms",
            median_ns as f64 / 1e6
        );
        synthetic_chain.push(ChainPoint {
            n_processes: n,
            median_ns,
        });
    }

    // --- Fragmented admission: fill, churn, admit -------------------------
    // Two lights share each ARM of the strip; stopping one per tile after a
    // full fill strands ~40 KiB on every tile, so a 48 KiB heavy app is
    // blocked although the platform holds plenty of free memory in total.
    // Reconfiguration migrates one light and recovers the admission —
    // every round, deterministically; only the latency is wall-clock.
    let frag_rounds = iters.clamp(1, 50);
    let frag_platform = defrag_platform(4);
    let light: Arc<_> = Arc::new(defrag_light());
    let heavy: Arc<_> = Arc::new(defrag_heavy());
    let policy = ReconfigurationPolicy::default();
    let mut manager = RuntimeManager::new(frag_platform, mapper_off.clone());
    let mut reconfig_recovered = 0u64;
    let mut migrations_committed = 0u64;
    let mut remap_samples = Vec::with_capacity(frag_rounds as usize);
    for _ in 0..frag_rounds {
        // Fill: lights pack two per ARM until the strip is full.
        let mut lights = Vec::new();
        while let Ok(handle) = manager.start(light.clone()) {
            lights.push(handle);
        }
        assert_eq!(lights.len(), 8, "four 2-slot ARMs hold eight lights");
        // Churn: stop one co-tenant per tile (fill order packs pairs).
        for pair in lights.chunks(2) {
            manager.stop(pair[0]).expect("live handle stops");
        }
        // Plain admission is lost to fragmentation…
        assert!(
            manager.start(heavy.clone()).is_err(),
            "plain admission must be blocked by the engineered fragmentation"
        );
        // …and recovered by one transactional migration plan.
        let t = Instant::now();
        let reconfiguration = manager
            .start_with_reconfiguration(heavy.clone(), &policy)
            .expect("migration recovers the engineered scenario");
        remap_samples.push(t.elapsed().as_nanos() as u64);
        reconfig_recovered += 1;
        migrations_committed += reconfiguration.migrations.len() as u64;
        manager.stop_all().expect("teardown");
        assert!(manager.utilization().is_idle(), "no claims leak per round");
    }
    let fragmented_admission = FragmentedAdmission {
        rounds: frag_rounds,
        plain_recovered: 0,
        reconfig_recovered,
        recovered_admission_rate_pct: reconfig_recovered * 100 / frag_rounds,
        migrations_committed,
        remap_median_ns: median(&mut remap_samples),
    };
    println!(
        "fragmented_admission: {}/{} recovered ({} migrations), remap median {:.3} ms",
        fragmented_admission.reconfig_recovered,
        fragmented_admission.rounds,
        fragmented_admission.migrations_committed,
        fragmented_admission.remap_median_ns as f64 / 1e6
    );
    assert_eq!(
        fragmented_admission.recovered_admission_rate_pct, 100,
        "reconfiguration must recover every engineered fragmented admission"
    );

    // --- Energy-aware reconfiguration Pareto front ------------------------
    // Sweep the migration-energy weight λ and the admission-policy set on
    // the defrag workload: blocking ‰ against total migration energy. The
    // sweep is fully deterministic per seed (only virtual-time counters are
    // recorded), so the emitted front is CI-comparable run to run.
    let pareto_catalog = Catalog::defrag();
    let pareto_platform = defrag_platform(4);
    let pareto_config = SimConfig {
        seed,
        arrivals: sim_arrivals.clamp(200, 1000),
        ..SimConfig::default()
    };
    let policies = [
        AdmissionPolicy::AlwaysAdmit,
        AdmissionPolicy::EnergyBudget {
            max_transfer_pj: 500_000,
        },
        AdmissionPolicy::AmortizedPayback {
            horizon_periods: 64,
        },
    ];
    let mut pareto = Vec::new();
    println!(
        "{:<26} {:>8} {:>9} {:>10} {:>10} {:>12} {:>8} {:>9}",
        "pareto/policy",
        "λ‰",
        "block ‰",
        "recovered",
        "migrations",
        "migr. pJ",
        "refused",
        "survived"
    );
    for admission in policies {
        for lambda_permille in [0u64, 1000, 4000] {
            let config = SimConfig {
                reconfiguration: Some(ReconfigurationPolicy {
                    objective: ReconfigurationObjective { lambda_permille },
                    admission,
                    ..ReconfigurationPolicy::default()
                }),
                track_fragmentation: true,
                ..pareto_config.clone()
            };
            let run = run_sim(
                &pareto_platform,
                SpatialMapper::new(MapperConfig::default().without_capture()),
                &pareto_catalog,
                &config,
            )
            .expect("the simulation never breaks its own ledger");
            let r = run
                .report
                .reconfiguration
                .clone()
                .expect("reconfiguration counters present");
            println!(
                "{:<26} {:>8} {:>9} {:>10} {:>10} {:>12} {:>8} {:>9}",
                r.policy,
                lambda_permille,
                run.report.blocking_permille,
                r.admissions_recovered,
                r.migrations_committed,
                r.migration_energy_pj,
                r.plans_refused,
                r.mode_switches_survived,
            );
            pareto.push(ParetoPoint {
                policy: r.policy,
                lambda_permille,
                blocking_permille: run.report.blocking_permille,
                admissions_recovered: r.admissions_recovered,
                migrations_committed: r.migrations_committed,
                migration_energy_pj: r.migration_energy_pj,
                plans_refused: r.plans_refused,
                mode_switches_survived: r.mode_switches_survived,
            });
        }
    }
    // Sanity gates on the front itself: always-admit recovers the most,
    // and every bounded policy spends strictly less migration energy than
    // always-admit at the same λ.
    for lambda in [0u64, 1000, 4000] {
        let energy_of = |policy_prefix: &str| {
            pareto
                .iter()
                .find(|p| p.lambda_permille == lambda && p.policy.starts_with(policy_prefix))
                .map(|p| (p.admissions_recovered, p.migration_energy_pj))
                .expect("sweep covers this point")
        };
        let (always_recovered, always_energy) = energy_of("always-admit");
        assert!(always_recovered > 0, "always-admit must recover admissions");
        for bounded in ["energy-budget", "amortized-payback"] {
            let (recovered, energy) = energy_of(bounded);
            assert!(
                recovered > 0,
                "{bounded} must still recover some admissions at λ={lambda}"
            );
            assert!(
                energy < always_energy,
                "{bounded} must spend strictly less migration energy than always-admit \
                 at λ={lambda} ({energy} vs {always_energy})"
            );
        }
    }

    // --- Simulated events/second, every registered algorithm --------------
    let algorithms: Vec<(&str, Box<dyn MappingAlgorithm>)> = rtsm_exp::ALGORITHMS
        .iter()
        .map(|entry| (entry.name, (entry.build)()))
        .collect();
    let catalog = Catalog::hiperlan2();
    let sim_config = SimConfig {
        seed,
        arrivals: sim_arrivals,
        ..SimConfig::default()
    };
    let mut sim = Vec::new();
    let mut deterministic = true;
    for (name, algorithm) in algorithms {
        let t = Instant::now();
        let run = run_sim(&platform, &algorithm, &catalog, &sim_config)
            .expect("the simulation never breaks its own ledger");
        let wall = t.elapsed();
        // Determinism gate: a second run must serialize byte-identically.
        let rerun = run_sim(&platform, &algorithm, &catalog, &sim_config)
            .expect("the simulation never breaks its own ledger");
        let a = serde_json::to_string(&run.report).expect("reports serialize");
        let b = serde_json::to_string(&rerun.report).expect("reports serialize");
        if a != b {
            eprintln!("DETERMINISM BROKEN for `{name}`");
            deterministic = false;
        }
        let report = &run.report;
        let events_processed = report.arrivals + report.departures + report.mode_switch_attempts;
        let wall_s = wall.as_secs_f64().max(1e-9);
        let point = SimPoint {
            algorithm: name.to_string(),
            arrivals: report.arrivals,
            admitted: report.admitted,
            events_processed,
            wall_ms: wall.as_millis() as u64,
            events_per_sec: (events_processed as f64 / wall_s) as u64,
            mean_map_us: run.wall.mean_ns() / 1000,
        };
        println!(
            "sim/{name}: {} events in {} ms → {} events/s (mean map {} µs)",
            point.events_processed, point.wall_ms, point.events_per_sec, point.mean_map_us
        );
        sim.push(point);
    }
    assert!(deterministic, "fixed-seed reports must be byte-identical");

    // --- Resilience: fault-injected chaos run on the mixed catalog --------
    // A seeded failure process (exponential inter-failure, fixed repair)
    // drives the evacuation path; Span::Evacuate latency comes from a
    // SpanLatencyProbe installed for the primary run only. The bare rerun
    // doubles as the observer-effect + determinism gate.
    let chaos_platform = mesh_platform(
        42,
        4,
        4,
        &[
            (TileKind::Montium, 4),
            (TileKind::Arm, 4),
            (TileKind::Dsp, 2),
        ],
    );
    let chaos_catalog = Catalog::mixed_dsp();
    let chaos_config = SimConfig {
        seed,
        arrivals: sim_arrivals.clamp(300, 2000),
        faults: Some(rtsm_sim::FaultConfig {
            mttf: 10_000,
            mttr: 3_000,
            ..rtsm_sim::FaultConfig::default()
        }),
        ..SimConfig::default()
    };
    let chaos_algorithm = SpatialMapper::new(MapperConfig::default().without_capture());
    let evac_probe = Rc::new(SpanLatencyProbe::new());
    let chaos_run = {
        let _guard = obs::install(evac_probe.clone());
        run_sim(
            &chaos_platform,
            &chaos_algorithm,
            &chaos_catalog,
            &chaos_config,
        )
        .expect("fault recovery never breaks the ledger")
    };
    let chaos_rerun = run_sim(
        &chaos_platform,
        &chaos_algorithm,
        &chaos_catalog,
        &chaos_config,
    )
    .expect("fault recovery never breaks the ledger");
    assert_eq!(
        serde_json::to_string(&chaos_run.report).expect("reports serialize"),
        serde_json::to_string(&chaos_rerun.report).expect("reports serialize"),
        "fault-injected reports must be byte-identical (and probe-independent)"
    );
    assert!(
        chaos_run.report.ledger_idle_at_end,
        "failure/repair cycles must leak no slots or bandwidth"
    );
    let surv = chaos_run
        .report
        .survivability
        .clone()
        .expect("faults were enabled");
    assert!(
        surv.apps_evacuated > 0,
        "the chaos run must recover at least one app by evacuation"
    );
    assert_eq!(
        surv.repairs,
        surv.tile_failures + surv.link_failures,
        "every injected failure must be repaired before the queue drains"
    );
    let evac_hist = evac_probe.histogram(Span::Evacuate);
    let blocking =
        |arrivals: u64, blocked: u64| (blocked * 1000).checked_div(arrivals).unwrap_or(0);
    let resilience = Resilience {
        arrivals: chaos_config.arrivals,
        mttf: surv.mttf,
        mttr: surv.mttr,
        failures_injected: surv.tile_failures + surv.link_failures,
        repairs: surv.repairs,
        apps_evacuated: surv.apps_evacuated,
        apps_evicted: surv.apps_evicted,
        processes_moved: surv.processes_moved,
        evacuation_energy_pj: surv.evacuation_energy_pj,
        mean_recovery_ticks: surv.mean_recovery_ticks,
        degraded_blocking_permille: blocking(surv.degraded_arrivals, surv.degraded_blocked),
        healthy_blocking_permille: blocking(surv.healthy_arrivals, surv.healthy_blocked),
        evacuate_calls: evac_hist.count(),
        evacuate_p50_ns: evac_hist.p50_ns(),
        evacuate_p99_ns: evac_hist.p99_ns(),
        evacuate_max_ns: evac_hist.max_ns(),
    };
    println!(
        "resilience: {} failures, {} evacuated, {} evicted; evacuate p50 {:.1} µs, \
         blocking {}‰ degraded vs {}‰ healthy",
        resilience.failures_injected,
        resilience.apps_evacuated,
        resilience.apps_evicted,
        resilience.evacuate_p50_ns as f64 / 1e3,
        resilience.degraded_blocking_permille,
        resilience.healthy_blocking_permille,
    );

    // --- Templates: microsecond hit path vs full-heuristic miss path ------
    // The paper case is seeded once into a TemplatedMapper; every later
    // admission of the same spec on a free platform is a pure hit, so
    // Span::TemplateMatch times exactly the hit path. The full heuristic
    // (Span::Map) runs interleaved in the same window — the hit-beats-miss
    // gate compares two measurements of the same machine moment, so only a
    // real hit-path regression can trip it.
    let templated_paper = TemplatedMapper::new(SpatialMapper::new(
        MapperConfig::default().without_capture(),
    ));
    let seeded = templated_paper
        .map(&spec, &platform, &state)
        .expect("the paper case is mappable");
    assert!(seeded.feasible, "the seeded admission must be feasible");
    assert_eq!(
        templated_paper.stats().hits,
        1,
        "the first arrival must seed the library and then hit"
    );
    let tpl_probe = Rc::new(SpanLatencyProbe::new());
    {
        let _guard = obs::install(tpl_probe.clone());
        for _ in 0..iters {
            black_box(templated_paper.map(&spec, &platform, &state).ok());
            black_box(mapper_off.map(&spec, &platform, &state).ok());
        }
    }
    assert_eq!(
        templated_paper.stats().misses,
        0,
        "repeated paper-case admissions on a free platform must all hit"
    );
    let hit_hist = tpl_probe.histogram(Span::TemplateMatch);
    let miss_hist = tpl_probe.histogram(Span::Map);
    const HIT_P50_TARGET_NS: u64 = 100_000;
    println!(
        "templates/paper: hit p50 {:.1} µs p99 {:.1} µs vs miss p50 {:.1} µs p99 {:.1} µs \
         (target hit p50 ≤ {:.0} µs: {})",
        hit_hist.p50_ns() as f64 / 1e3,
        hit_hist.p99_ns() as f64 / 1e3,
        miss_hist.p50_ns() as f64 / 1e3,
        miss_hist.p99_ns() as f64 / 1e3,
        HIT_P50_TARGET_NS as f64 / 1e3,
        if hit_hist.p50_ns() <= HIT_P50_TARGET_NS {
            "met"
        } else {
            "MISSED"
        },
    );
    assert!(
        hit_hist.p50_ns() < miss_hist.p50_ns(),
        "the template hit path must beat the full heuristic at the median \
         ({} vs {} ns)",
        hit_hist.p50_ns(),
        miss_hist.p50_ns()
    );

    // Steady state on the mixed catalog: templates on vs off at a load
    // the platform can actually carry (heavy overload turns every
    // platform-full rejection into a miss and says nothing about reuse).
    let tpl_platform = mesh_platform(
        42,
        4,
        4,
        &[
            (TileKind::Montium, 4),
            (TileKind::Arm, 4),
            (TileKind::Dsp, 2),
        ],
    );
    let tpl_catalog = Catalog::mixed_dsp();
    let tpl_config = SimConfig {
        seed,
        arrivals: sim_arrivals.clamp(500, 2000),
        arrival_process: rtsm_sim::ArrivalProcess::Poisson { mean_gap: 2000 },
        ..SimConfig::default()
    };
    let tpl_inner = SpatialMapper::new(MapperConfig::default().without_capture());
    let t = Instant::now();
    let off_run = run_sim(&tpl_platform, &tpl_inner, &tpl_catalog, &tpl_config)
        .expect("the simulation never breaks its own ledger");
    let off_wall = t.elapsed();
    let tpl_mapper = TemplatedMapper::new(tpl_inner);
    let t = Instant::now();
    let on_run = run_sim(&tpl_platform, &tpl_mapper, &tpl_catalog, &tpl_config)
        .expect("the simulation never breaks its own ledger");
    let on_wall = t.elapsed();
    assert_eq!(
        (on_run.report.admitted, on_run.report.blocked),
        (off_run.report.admitted, off_run.report.blocked),
        "templates must change admission latency, never admission decisions, \
         on the steady-state workload"
    );
    let tpl_stats = rtsm_sim::TemplateReport::from_stats(
        tpl_mapper.stats(),
        rtsm_core::template::DEFAULT_SHAPE_CAP,
    );
    let events = |r: &rtsm_sim::SimReport| r.arrivals + r.departures + r.mode_switch_attempts;
    let rate = |n: u64, wall: std::time::Duration| (n as f64 / wall.as_secs_f64().max(1e-9)) as u64;
    // The hit rate is a virtual-time counter — deterministic per seed —
    // so unlike the wall-clock figures it is safe to gate.
    assert!(
        tpl_stats.hit_permille >= 500,
        "steady-state mixed-catalog hit rate {}‰ fell below the 500‰ floor",
        tpl_stats.hit_permille
    );
    let templates = Templates {
        iterations: iters,
        hit: PathLatency {
            count: hit_hist.count(),
            p50_ns: hit_hist.p50_ns(),
            p90_ns: hit_hist.p90_ns(),
            p99_ns: hit_hist.p99_ns(),
            max_ns: hit_hist.max_ns(),
        },
        miss: PathLatency {
            count: miss_hist.count(),
            p50_ns: miss_hist.p50_ns(),
            p90_ns: miss_hist.p90_ns(),
            p99_ns: miss_hist.p99_ns(),
            max_ns: miss_hist.max_ns(),
        },
        hit_p50_target_ns: HIT_P50_TARGET_NS,
        hit_p50_within_target: hit_hist.p50_ns() <= HIT_P50_TARGET_NS,
        sim_arrivals: tpl_config.arrivals,
        hit_permille: tpl_stats.hit_permille,
        shapes_cached: tpl_stats.shapes_cached,
        events_per_sec_templates_on: rate(events(&on_run.report), on_wall),
        events_per_sec_templates_off: rate(events(&off_run.report), off_wall),
        mean_map_us_templates_on: on_run.wall.mean_ns() / 1000,
        mean_map_us_templates_off: off_run.wall.mean_ns() / 1000,
    };
    println!(
        "templates/mixed: {}‰ hit rate, {} shapes; {} events/s on vs {} off \
         (mean map {} µs on vs {} off)",
        templates.hit_permille,
        templates.shapes_cached,
        templates.events_per_sec_templates_on,
        templates.events_per_sec_templates_off,
        templates.mean_map_us_templates_on,
        templates.mean_map_us_templates_off,
    );

    // --- Portfolio vs its members, every catalog --------------------------
    // The **portfolio-beats-members gate**: at an equal modeled
    // per-admission latency budget, the portfolio's per-admission
    // blocking must be ≤ every member's — i.e. every arrival the
    // portfolio blocks is unmappable by *every* standalone member on the
    // exact platform state the portfolio saw. The `MemberCoverage`
    // wrapper replays all members at each blocked admission to check
    // this. (Whole-trajectory blocking of standalone members is reported
    // next to the portfolio's for context but never gated: once one
    // admission differs the platform states diverge and the trajectories
    // are no longer comparing like with like.)
    let portfolio_arrivals = sim_arrivals.clamp(100, 500);
    let portfolio_members = rtsm_baselines::default_members();
    let mut portfolio_points = Vec::new();
    for catalog_name in rtsm_exp::VALID_CATALOGS {
        let resolved = rtsm_exp::resolve_catalog(catalog_name, 42).expect("registered catalog");
        let config = SimConfig {
            seed,
            arrivals: portfolio_arrivals,
            ..SimConfig::default()
        };
        let run_one = |algorithm: &dyn MappingAlgorithm| {
            run_sim(&resolved.platform, algorithm, &resolved.catalog, &config)
                .expect("the simulation never breaks its own ledger")
        };
        let gated = MemberCoverage {
            portfolio: PortfolioMapper::default(),
            members: &portfolio_members,
            recoverable_blocks: std::cell::Cell::new(0),
        };
        let portfolio_run = run_one(&gated);
        assert_eq!(
            gated.recoverable_blocks.get(),
            0,
            "on `{catalog_name}` the portfolio blocked an arrival a standalone member \
             could have mapped on the same platform state"
        );
        let member_runs: Vec<(&str, rtsm_sim::SimRun)> = portfolio_members
            .iter()
            .map(|m| (m.name, run_one((m.build)().as_ref())))
            .collect();
        let (best_member, best_run) = member_runs
            .iter()
            .min_by_key(|(_, run)| run.report.blocking_permille)
            .map(|(name, run)| (*name, run))
            .expect("the portfolio has members");
        let point = PortfolioPoint {
            catalog: catalog_name.to_string(),
            portfolio_blocking_permille: portfolio_run.report.blocking_permille,
            best_member: best_member.to_string(),
            best_member_blocking_permille: best_run.report.blocking_permille,
            recoverable_blocks: gated.recoverable_blocks.get(),
            portfolio_mean_map_us: portfolio_run.wall.mean_ns() / 1000,
            best_member_mean_map_us: best_run.wall.mean_ns() / 1000,
        };
        println!(
            "portfolio/{catalog_name}: {}‰ blocking ({} recoverable blocks) vs {}‰ \
             best standalone member (`{}`), mean map {} µs vs {} µs",
            point.portfolio_blocking_permille,
            point.recoverable_blocks,
            point.best_member_blocking_permille,
            point.best_member,
            point.portfolio_mean_map_us,
            point.best_member_mean_map_us,
        );
        portfolio_points.push(point);
    }
    // Racing determinism: the same mixed-catalog run at 1 and 4 workers
    // must serialize byte-identically — worker count is pure wall-clock.
    let portfolio_race_reports: Vec<String> = [1usize, 4]
        .iter()
        .map(|&workers| {
            let resolved = rtsm_exp::resolve_catalog("mixed", 42).expect("registered catalog");
            let config = SimConfig {
                seed,
                arrivals: portfolio_arrivals,
                ..SimConfig::default()
            };
            let run = run_sim(
                &resolved.platform,
                PortfolioMapper::with_workers(workers),
                &resolved.catalog,
                &config,
            )
            .expect("the simulation never breaks its own ledger");
            serde_json::to_string(&run.report).expect("reports serialize")
        })
        .collect();
    let portfolio_reports_identical = portfolio_race_reports[0] == portfolio_race_reports[1];
    assert!(
        portfolio_reports_identical,
        "fixed-seed portfolio reports must be byte-identical at 1 vs 4 racing workers"
    );
    let portfolio = Portfolio {
        arrivals: portfolio_arrivals,
        budget_us: rtsm_baselines::DEFAULT_BUDGET_US,
        members: portfolio_members
            .iter()
            .map(|m| m.name.to_string())
            .collect(),
        reports_identical_across_workers: portfolio_reports_identical,
        points: portfolio_points,
    };

    // --- Worker-pool scaling: events/s vs workers -------------------------
    // One fixed 8-trial spec through the experiment harness at 1, 2, and
    // 4 workers. The sealed reports must be byte-identical (hard gate);
    // the speedup itself is only gated where the hardware can deliver one.
    let scaling_spec = ExperimentSpec {
        schema: None,
        name: "bench-map-scaling".to_string(),
        template: SpecTemplate {
            arrivals: sim_arrivals.clamp(200, 2000),
            mean_hold: None,
            switch_prob_pct: None,
            sample_interval: None,
            horizon: None,
            platform_seed: None,
        },
        algorithms: vec!["paper".to_string(), "greedy".to_string()],
        catalogs: vec!["hiperlan2".to_string()],
        mean_gaps: vec![400, 1200],
        policies: vec![PolicySpec::none()],
        seeds: vec![seed, seed + 1],
        repeats: None,
    };
    let available_parallelism = rtsm_exp::available_workers() as u64;
    let mut scaling_points = Vec::new();
    let mut sealed_reports: Vec<String> = Vec::new();
    for workers in [1usize, 2, 4] {
        let run =
            run_experiment(&scaling_spec, workers, |_, _| {}).expect("the scaling spec is valid");
        sealed_reports.push(serde_json::to_string(&run.report).expect("reports serialize"));
        let point = ScalingPoint {
            workers: workers as u64,
            events_processed: run.events,
            wall_ms: run.wall.as_millis() as u64,
            events_per_sec: run.events_per_second(),
        };
        println!(
            "scaling/{workers}w: {} events in {} ms → {} events/s",
            point.events_processed, point.wall_ms, point.events_per_sec
        );
        scaling_points.push(point);
    }
    let reports_identical = sealed_reports.windows(2).all(|w| w[0] == w[1]);
    assert!(
        reports_identical,
        "sealed experiment reports must be byte-identical across worker counts"
    );
    let single_rate = scaling_points[0].events_per_sec;
    let best_multi_rate = scaling_points[1..]
        .iter()
        .map(|p| p.events_per_sec)
        .max()
        .unwrap_or(0);
    let speedup_gated = available_parallelism >= 2;
    if speedup_gated {
        assert!(
            best_multi_rate > single_rate,
            "with {available_parallelism} hardware threads, >1 worker must beat \
             single-threaded throughput ({best_multi_rate} vs {single_rate} events/s)"
        );
    } else {
        println!(
            "scaling: single hardware thread — speedup gate skipped \
             ({best_multi_rate} vs {single_rate} events/s)"
        );
    }
    let scaling = Scaling {
        available_parallelism,
        spec_trials: scaling_spec.expand().len() as u64,
        spec_total_arrivals: scaling_spec.total_arrivals(),
        reports_identical,
        speedup_gated,
        points: scaling_points,
    };

    let report = BenchReport {
        schema: "rtsm-bench-map/8".into(),
        seed,
        baseline: Baseline {
            commit: "c9eb51b".into(),
            map_paper_median_ns: PRE_PR_BASELINE_MEDIAN_NS,
            note: "pre-optimisation mapper (trace capture always on), same harness".into(),
        },
        map_paper: PaperCase {
            iterations: iters,
            capture_on_median_ns,
            capture_off_median_ns,
            speedup_vs_baseline_pct: PRE_PR_BASELINE_MEDIAN_NS * 100 / capture_off_median_ns.max(1),
            peak_alloc_capture_on_bytes,
            peak_alloc_capture_off_bytes,
        },
        observability,
        synthetic_chain,
        sim,
        fragmented_admission,
        pareto,
        resilience,
        templates,
        portfolio,
        scaling,
        sanity_checks_passed: true,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    // Atomic: an interrupted run must not leave a truncated artifact.
    write_atomic(&out, &json).expect("write BENCH_map.json");
    println!("wrote {out}");
}
