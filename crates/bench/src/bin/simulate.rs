//! `simulate` — long-horizon admission experiments: a seeded stochastic
//! workload driven through the `RuntimeManager`, compared across every
//! mapping algorithm registered in `rtsm_exp::ALGORITHMS`.
//!
//! ```text
//! simulate [--seed N] [--arrivals N] [--algorithm NAME|all]
//!          [--catalog hiperlan2|mixed|synthetic|defrag] [--platform-seed N]
//!          [--mean-gap N] [--mean-hold N] [--switch-prob PCT]
//!          [--holding exponential|fixed|pareto] [--flash-crowd BURST]
//!          [--sample-interval N] [--horizon N] [--json] [--out PATH]
//!          [--trace-out PATH] [--reconfigure] [--max-migrations N] [--max-plans N]
//!          [--policy always|energy-budget|amortized-payback]
//!          [--lambda PERMILLE] [--budget-pj N] [--payback N]
//!          [--faults] [--mttf N] [--mttr N]
//!          [--templates] [--template-cap N] [--portfolio-workers N]
//! ```
//!
//! Algorithm and catalog names (including the `--algorithm` error text
//! below) come from the `rtsm_exp` registry — the same lists `experiment`
//! specs validate against — so the two CLIs cannot drift apart.
//!
//! `--portfolio-workers N` races the `portfolio` algorithm's members
//! across N threads instead of evaluating them sequentially. Reports are
//! byte-identical for any N (the CI portfolio smoke diffs 1 vs 4); the
//! flag only changes wall-clock.
//!
//! `--templates` wraps every algorithm in a `TemplatedMapper`: admissions
//! first try to instantiate a cached mapping shape (microsecond hit path)
//! and fall back to the full algorithm on miss, learning the result. The
//! report gains a `templates` section (hits, misses, hit rate, shapes
//! cached), and the run **asserts** templated determinism: each algorithm
//! is simulated twice from a freshly reset library and the serialized
//! reports byte-compared. `--template-cap N` bounds the cached shapes per
//! application spec (default 8); it requires `--templates`.
//!
//! `--faults` enables the seeded fault process: tile/link failures with
//! exponential inter-failure times (mean `--mttf`, default 50 000 ticks)
//! and a fixed repair time (`--mttr`, default 5000 ticks). Failed
//! resources are quarantined and their tenants evacuated through
//! `RuntimeManager::evacuate`; apps with no admissible relocation are
//! *evicted*. The report gains a `survivability` section, and the run
//! **asserts** fault-injected determinism (each algorithm simulated
//! twice, byte-compared), instance conservation including evictions, and
//! a leak-free ledger after every failure/repair cycle — the CI chaos
//! smoke. `--mttf`/`--mttr` without `--faults` is an error.
//!
//! `--flash-crowd BURST` replaces Poisson arrivals with flash crowds:
//! BURST arrivals land at one instant, with exponential gaps between
//! bursts of mean `--mean-gap × BURST` (same long-run rate, adversarial
//! spikes). BURST must be ≥ 1. `--holding pareto` draws heavy-tailed
//! bounded-Pareto holding times (support `[mean/3, mean×100]`, α = 1.5,
//! from `--mean-hold`); `fixed` holds every instance exactly
//! `--mean-hold` ticks.
//!
//! `--reconfigure` enables defragmentation-by-migration: blocked arrivals
//! retry through `RuntimeManager::start_with_reconfiguration`, the report
//! gains recovered-admission/migration counters plus per-sample
//! fragmentation, and the run **asserts** that the counters are
//! deterministic (each algorithm is simulated twice and byte-compared)
//! and that at least one admission was recovered overall — the CI smoke
//! for the reconfiguration path.
//!
//! `--lambda` sets the migration-energy weight λ (permille) of the plan
//! objective; `--policy` picks the admission policy (`energy-budget`
//! takes `--budget-pj`, `amortized-payback` takes `--payback` periods).
//! With a policy other than `always`, every algorithm is *also* simulated
//! under `AlwaysAdmit` at the same λ, and the run **asserts** the Pareto
//! trade: the bounded policy still recovers at least one admission while
//! spending strictly less total migration energy than `AlwaysAdmit` —
//! the CI Pareto smoke.
//!
//! `--out PATH` writes the serialized reports (one JSON line per
//! algorithm) to a file — what the CI determinism gate byte-compares
//! across two invocations.
//!
//! `--trace-out PATH` installs a `FlightRecorder` probe during each
//! algorithm's primary run and writes a Chrome trace-event JSON file:
//! open it in Perfetto (or `chrome://tracing`) to see one lane per
//! admission with the step1→step4→buffer-sizing→commit spans inside.
//! Probes are pure observers — the serialized reports are byte-identical
//! with or without `--trace-out` (the CI trace smoke diffs them).
//!
//! `--seed` varies only the *workload* (arrival times, catalog draws,
//! holding times); the platform layout and the synthetic application
//! population stay pinned to `--platform-seed`, so seed sweeps compare
//! the same system under different loads.
//!
//! Defaults: seed 2008, 10 000 arrivals, the paper platform with the
//! HIPERLAN/2 mode catalog, Poisson arrivals (mean gap 500 ticks),
//! exponential holding times (mean 2000 ticks), 10% mode switches. The
//! same seed always yields byte-identical serialized reports; wall-clock
//! mapping latency is printed separately because it cannot be.

use rtsm_baselines::PortfolioMapper;
use rtsm_core::{
    AdmissionPolicy, MappingAlgorithm, ReconfigurationObjective, ReconfigurationPolicy,
    TemplatedMapper,
};
use rtsm_obs::{self as obs, FlightRecorder};
use rtsm_sim::{
    run_sim, ArrivalProcess, FaultConfig, HoldingTime, SimConfig, SimRun, TemplateReport,
};

/// The requested algorithm set, straight from the `rtsm_exp` registry —
/// `all` expands it in display order. Only `portfolio` takes a CLI
/// override (racing workers, which cannot change report bytes).
fn algorithms(which: &str, portfolio_workers: usize) -> Vec<Box<dyn MappingAlgorithm>> {
    let build = |entry: &rtsm_exp::AlgorithmEntry| -> Box<dyn MappingAlgorithm> {
        if entry.name == "portfolio" && portfolio_workers > 1 {
            Box::new(PortfolioMapper::with_workers(portfolio_workers))
        } else {
            (entry.build)()
        }
    };
    if which == "all" {
        return rtsm_exp::ALGORITHMS.iter().map(build).collect();
    }
    match rtsm_exp::ALGORITHMS.iter().find(|e| e.name == which) {
        Some(entry) => vec![build(entry)],
        None => one_line_error(&format!(
            "unknown algorithm `{which}` (valid: all, {})",
            rtsm_exp::VALID_ALGORITHMS.join(", ")
        )),
    }
}

/// Flags that take a value, in usage order.
const VALUE_FLAGS: [&str; 24] = [
    "--seed",
    "--arrivals",
    "--algorithm",
    "--catalog",
    "--platform-seed",
    "--mean-gap",
    "--mean-hold",
    "--switch-prob",
    "--holding",
    "--flash-crowd",
    "--sample-interval",
    "--horizon",
    "--out",
    "--trace-out",
    "--max-migrations",
    "--max-plans",
    "--policy",
    "--lambda",
    "--budget-pj",
    "--payback",
    "--mttf",
    "--mttr",
    "--template-cap",
    "--portfolio-workers",
];

/// Rejects unknown flags, `--flag=value` syntax, and value flags missing
/// their value, so a typo can't silently run the default experiment.
fn validate_args(args: &[String]) {
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if VALUE_FLAGS.contains(&arg.as_str()) {
            if i + 1 >= args.len() {
                usage_error(&format!("{arg} expects a value"));
            }
            i += 2;
        } else if arg == "--json"
            || arg == "--reconfigure"
            || arg == "--faults"
            || arg == "--templates"
        {
            i += 1;
        } else {
            usage_error(&format!("unknown argument `{arg}`"));
        }
    }
}

/// A bad *value* for a known flag: one line naming the offender and the
/// valid options, without the full usage dump (that's for unknown
/// flags, where the user needs the whole grammar).
fn one_line_error(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}");
    // The name lists are derived from the registry, never retyped: the
    // help text cannot desync from what the parser accepts.
    eprintln!(
        "usage: simulate [--seed N] [--arrivals N] [--algorithm all|{algorithms}] \
         [--catalog {catalogs}] [--platform-seed N] \
         [--mean-gap N] [--mean-hold N] [--switch-prob PCT] \
         [--holding exponential|fixed|pareto] [--flash-crowd BURST] [--sample-interval N] \
         [--horizon N] [--json] [--out PATH] [--trace-out PATH] [--reconfigure] \
         [--max-migrations N] \
         [--max-plans N] [--policy {policies}] \
         [--lambda PERMILLE] [--budget-pj N] [--payback N] [--faults] [--mttf N] [--mttr N] \
         [--templates] [--template-cap N] [--portfolio-workers N]",
        algorithms = rtsm_exp::VALID_ALGORITHMS.join("|"),
        catalogs = rtsm_exp::VALID_CATALOGS.join("|"),
        policies = rtsm_exp::VALID_POLICY_KINDS[1..].join("|"),
    );
    std::process::exit(2);
}

fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_u64(args: &[String], flag: &str, default: u64) -> u64 {
    parse_flag(args, flag).map_or(default, |v| {
        v.parse()
            .unwrap_or_else(|_| usage_error(&format!("{flag} expects an integer, got `{v}`")))
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    validate_args(&args);
    let seed = parse_u64(&args, "--seed", 2008);
    let arrivals = parse_u64(&args, "--arrivals", 10_000);
    let mean_gap = parse_u64(&args, "--mean-gap", 500);
    let mean_hold = parse_u64(&args, "--mean-hold", 2000);
    let switch_pct = parse_u64(&args, "--switch-prob", 10);
    let sample_interval = parse_u64(&args, "--sample-interval", 10_000);
    let platform_seed = parse_u64(&args, "--platform-seed", 42);
    let horizon = parse_flag(&args, "--horizon").map(|v| {
        v.parse()
            .unwrap_or_else(|_| usage_error(&format!("--horizon expects an integer, got `{v}`")))
    });
    let which = parse_flag(&args, "--algorithm").unwrap_or_else(|| "all".into());
    let catalog_name = parse_flag(&args, "--catalog").unwrap_or_else(|| "hiperlan2".into());
    let json = args.iter().any(|a| a == "--json");
    let out = parse_flag(&args, "--out");
    let trace_out = parse_flag(&args, "--trace-out");
    let reconfigure = args.iter().any(|a| a == "--reconfigure");
    let max_migrations = parse_u64(&args, "--max-migrations", 2);
    let max_plans = parse_u64(&args, "--max-plans", 8);
    let lambda_permille = parse_u64(&args, "--lambda", 1000);
    let budget_pj = parse_u64(&args, "--budget-pj", 500_000);
    let payback = parse_u64(&args, "--payback", 64);
    let faults = args.iter().any(|a| a == "--faults");
    if !faults {
        for flag in ["--mttf", "--mttr"] {
            if parse_flag(&args, flag).is_some() {
                one_line_error(&format!("{flag} requires --faults"));
            }
        }
    }
    let mttf = parse_u64(&args, "--mttf", 50_000);
    let mttr = parse_u64(&args, "--mttr", 5_000);
    if faults && mttf == 0 {
        one_line_error("--mttf is 0, must be ≥ 1 tick");
    }
    let templates = args.iter().any(|a| a == "--templates");
    if !templates && parse_flag(&args, "--template-cap").is_some() {
        one_line_error("--template-cap requires --templates");
    }
    let template_cap = parse_u64(
        &args,
        "--template-cap",
        rtsm_core::template::DEFAULT_SHAPE_CAP as u64,
    ) as usize;
    if templates && template_cap == 0 {
        one_line_error("--template-cap is 0, must be ≥ 1 shape per spec");
    }
    let flash_crowd = parse_flag(&args, "--flash-crowd").map(|v| {
        v.parse::<u32>().unwrap_or_else(|_| {
            usage_error(&format!("--flash-crowd expects an integer, got `{v}`"))
        })
    });
    if flash_crowd == Some(0) {
        one_line_error("--flash-crowd is 0, burst size must be ≥ 1");
    }
    let holding_name = parse_flag(&args, "--holding").unwrap_or_else(|| "exponential".into());
    let policy_name = parse_flag(&args, "--policy").unwrap_or_else(|| "always".into());
    // `none` is a spec-file concept (a policy *axis* point meaning "no
    // reconfiguration"); here that is spelled by omitting --reconfigure.
    let admission: AdmissionPolicy = rtsm_exp::admission_policy(&policy_name, budget_pj, payback)
        .unwrap_or_else(|| {
            one_line_error(&format!(
                "unknown admission policy `{policy_name}` (valid: {})",
                rtsm_exp::VALID_POLICY_KINDS[1..].join(", ")
            ))
        });
    if switch_pct > 100 {
        one_line_error(&format!("--switch-prob is {switch_pct}%, must be 0–100"));
    }
    let portfolio_workers = parse_u64(&args, "--portfolio-workers", 1) as usize;
    if portfolio_workers == 0 {
        one_line_error("--portfolio-workers is 0, must be ≥ 1");
    }
    // Resolve the algorithm set before any output, so a bad name fails
    // with just the one-line error.
    let algorithms = algorithms(&which, portfolio_workers);

    // Catalog resolution is shared with the experiment harness
    // (`rtsm_exp::resolve_catalog`), so the two CLIs agree on every
    // platform/population pair.
    let resolved = rtsm_exp::resolve_catalog(&catalog_name, platform_seed).unwrap_or_else(|| {
        one_line_error(&format!(
            "unknown catalog `{catalog_name}` (valid: {})",
            rtsm_exp::VALID_CATALOGS.join(", ")
        ))
    });
    let (platform, catalog) = (resolved.platform, resolved.catalog);

    let reconfiguration_policy = |admission: AdmissionPolicy| ReconfigurationPolicy {
        max_migrations: max_migrations as usize,
        max_plans: max_plans as usize,
        objective: ReconfigurationObjective { lambda_permille },
        admission,
        ..ReconfigurationPolicy::default()
    };
    let holding = match holding_name.as_str() {
        "exponential" => HoldingTime::Exponential { mean: mean_hold },
        "fixed" => HoldingTime::Fixed { ticks: mean_hold },
        "pareto" => HoldingTime::BoundedPareto {
            min: (mean_hold / 3).max(1),
            max: mean_hold.saturating_mul(100),
            alpha_permille: 1500,
        },
        other => one_line_error(&format!(
            "unknown holding-time distribution `{other}` (valid: exponential, fixed, pareto)"
        )),
    };
    let config = SimConfig {
        seed,
        arrivals,
        arrival_process: match flash_crowd {
            Some(burst_size) => ArrivalProcess::FlashCrowd {
                mean_gap,
                burst_size,
            },
            None => ArrivalProcess::Poisson { mean_gap },
        },
        holding,
        mode_switch_probability: switch_pct as f64 / 100.0,
        sample_interval,
        horizon,
        reconfiguration: reconfigure.then(|| reconfiguration_policy(admission)),
        track_fragmentation: reconfigure,
        faults: faults.then(|| FaultConfig {
            mttf,
            mttr,
            ..FaultConfig::default()
        }),
    };
    // The Pareto smoke: a bounded policy is compared against AlwaysAdmit
    // at the same λ — same recoveries where affordable, strictly less
    // migration energy overall.
    let baseline_config =
        (reconfigure && admission != AdmissionPolicy::AlwaysAdmit).then(|| SimConfig {
            reconfiguration: Some(reconfiguration_policy(AdmissionPolicy::AlwaysAdmit)),
            ..config.clone()
        });

    println!(
        "simulating {arrivals} arrivals on `{catalog_name}` (seed {seed}, mean gap {mean_gap}, \
         mean hold {mean_hold} ({holding_name}), switch prob {switch_pct}%{}{}{})",
        match flash_crowd {
            Some(burst) => format!(", flash crowds of {burst}"),
            None => String::new(),
        },
        if faults {
            format!(", faults mttf {mttf} mttr {mttr}")
        } else {
            String::new()
        },
        if reconfigure {
            format!(
                ", reconfigure ≤{max_migrations} migrations × {max_plans} plans, \
                 λ={lambda_permille}‰, policy {}",
                admission.label()
            )
        } else {
            String::new()
        }
    );
    println!(
        "{:<32} {:>8} {:>8} {:>9} {:>9} {:>10} {:>12} {:>12} {:>12} {:>11}",
        "algorithm",
        "admitted",
        "blocked",
        "block ‰",
        "recovered",
        "migrations",
        "migr. pJ",
        "energy pJ·t",
        "mean slots‰",
        "map µs/call"
    );

    // One recorder across all algorithms: enough capacity for every span
    // and counter of the run, bounded so a million-arrival trace cannot
    // exhaust memory (the ring keeps the most recent events).
    let recorder = trace_out.as_ref().map(|_| {
        std::rc::Rc::new(FlightRecorder::new(
            usize::try_from(arrivals.saturating_mul(512))
                .unwrap_or(usize::MAX)
                .clamp(65_536, 4_000_000),
        ))
    });
    let mut runs: Vec<SimRun> = Vec::new();
    let mut total_recovered = 0u64;
    let mut total_migration_energy = 0u64;
    let mut total_plans_refused = 0u64;
    let mut baseline_recovered = 0u64;
    let mut baseline_migration_energy = 0u64;
    for algorithm in algorithms {
        // `--templates` wraps the boxed algorithm; the untemplated path
        // keeps the bare box so existing reports stay byte-identical.
        let mut templated: Option<TemplatedMapper<Box<dyn MappingAlgorithm>>> = None;
        let runner: &dyn MappingAlgorithm = if templates {
            templated = Some(TemplatedMapper::with_cap(algorithm, template_cap));
            templated.as_ref().expect("just wrapped")
        } else {
            &algorithm
        };
        let template_report = |t: &TemplatedMapper<Box<dyn MappingAlgorithm>>| {
            TemplateReport::from_stats(t.stats(), template_cap)
        };
        // The probe stays installed only for the primary run; the
        // determinism rerun and the always-admit baseline run bare, so
        // the byte-compare below doubles as an observer-effect gate.
        let mut run = {
            let _probe = recorder
                .as_ref()
                .map(|r| obs::install(r.clone() as std::rc::Rc<dyn obs::Probe>));
            run_sim(&platform, runner, &catalog, &config)
                .expect("the simulation never breaks its own ledger")
        };
        run.report.templates = templated.as_ref().map(template_report);
        if reconfigure || faults || templates {
            // Determinism gate for the reconfiguration, fault-injection
            // and template paths: a second run must serialize
            // byte-identically. Templated reruns start from a freshly
            // reset library so the learn/hit history replays exactly.
            if let Some(t) = &templated {
                t.reset();
            }
            let mut rerun = run_sim(&platform, runner, &catalog, &config)
                .expect("the simulation never breaks its own ledger");
            rerun.report.templates = templated.as_ref().map(template_report);
            let a = serde_json::to_string(&run.report).expect("reports serialize");
            let b = serde_json::to_string(&rerun.report).expect("reports serialize");
            assert_eq!(
                a, b,
                "fixed-seed reconfiguration/fault-injection/template reports must be \
                 byte-identical"
            );
        }
        if let Some(s) = &run.report.survivability {
            // Instance conservation with eviction as a terminal outcome:
            // every admitted instance departed, left at a blocked mode
            // switch, was evicted, or survived to the horizon cut.
            assert_eq!(
                run.report.departures
                    + run.report.mode_switch_blocked
                    + s.apps_evicted
                    + run.report.final_running,
                run.report.admitted,
                "evicted + departed + switch-lost + running must equal admitted"
            );
            assert_eq!(
                s.repairs,
                s.tile_failures + s.link_failures,
                "every injected failure must be repaired (no leaked quarantine)"
            );
        }
        if let Some(baseline) = &baseline_config {
            let always = run_sim(&platform, runner, &catalog, baseline)
                .expect("the simulation never breaks its own ledger");
            if let Some(r) = &always.report.reconfiguration {
                baseline_recovered += r.admissions_recovered;
                baseline_migration_energy += r.migration_energy_pj;
            }
        }
        let report = &run.report;
        let reconfiguration = report.reconfiguration.clone().unwrap_or_default();
        total_recovered += reconfiguration.admissions_recovered;
        total_migration_energy += reconfiguration.migration_energy_pj;
        total_plans_refused += reconfiguration.plans_refused;
        println!(
            "{:<32} {:>8} {:>8} {:>9} {:>9} {:>10} {:>12} {:>12} {:>12} {:>11.1}",
            report.algorithm,
            report.admitted,
            report.blocked,
            report.blocking_permille,
            reconfiguration.admissions_recovered,
            reconfiguration.migrations_committed,
            reconfiguration.migration_energy_pj,
            report.energy_pj_ticks,
            report.mean_slots_permille(),
            run.wall.mean_ns() as f64 / 1e3,
        );
        assert!(
            report.ledger_idle_at_end,
            "commit/release must stay exact inverses over the whole run"
        );
        runs.push(run);
    }
    if reconfigure {
        println!("recovered admissions (all algorithms): {total_recovered}");
        if baseline_config.is_some() {
            assert!(
                baseline_recovered > 0,
                "the always-admit twin run must recover at least one admission"
            );
            assert!(
                total_recovered > 0,
                "no admission recovered under {} — {total_plans_refused} feasible plan(s) \
                 were refused; loosen the bound (--budget-pj / --payback) or use \
                 --policy always",
                admission.label()
            );
            println!(
                "migration energy: {total_migration_energy} pJ under {}, \
                 {baseline_migration_energy} pJ under always-admit \
                 ({total_plans_refused} plans refused)",
                admission.label()
            );
            if total_plans_refused > 0 {
                assert!(
                    total_migration_energy < baseline_migration_energy,
                    "a binding admission policy must spend strictly less migration energy \
                     than always-admit ({total_migration_energy} vs {baseline_migration_energy} pJ)"
                );
            } else {
                // A bound that never binds filters nothing: the runs must
                // coincide exactly.
                assert_eq!(
                    total_migration_energy, baseline_migration_energy,
                    "a non-binding admission policy must behave exactly like always-admit"
                );
            }
        } else {
            assert!(
                total_recovered > 0,
                "reconfiguration must recover at least one admission on this workload"
            );
        }
    }
    if templates {
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut shapes = 0u64;
        for run in &runs {
            let t = run
                .report
                .templates
                .as_ref()
                .expect("templates were enabled");
            hits += t.hits;
            misses += t.misses;
            shapes += t.shapes_cached;
        }
        let permille = (hits * 1000).checked_div(hits + misses).unwrap_or(0);
        println!(
            "templates (all algorithms): {hits} hits / {misses} misses ({permille}‰ hit rate), \
             {shapes} shapes cached, cap {template_cap} per spec"
        );
    }
    if faults {
        let mut failures = 0u64;
        let mut evacuated = 0u64;
        let mut evicted = 0u64;
        let mut degraded = (0u64, 0u64); // (arrivals, blocked)
        let mut healthy = (0u64, 0u64);
        for run in &runs {
            let s = run
                .report
                .survivability
                .as_ref()
                .expect("faults were enabled");
            failures += s.tile_failures + s.link_failures;
            evacuated += s.apps_evacuated;
            evicted += s.apps_evicted;
            degraded.0 += s.degraded_arrivals;
            degraded.1 += s.degraded_blocked;
            healthy.0 += s.healthy_arrivals;
            healthy.1 += s.healthy_blocked;
        }
        let blocking =
            |(arrivals, blocked): (u64, u64)| (blocked * 1000).checked_div(arrivals).unwrap_or(0);
        println!(
            "survivability (all algorithms): {failures} failures, {evacuated} evacuated, \
             {evicted} evicted; blocking {}‰ degraded vs {}‰ healthy \
             ({} of {} arrivals degraded)",
            blocking(degraded),
            blocking(healthy),
            degraded.0,
            degraded.0 + healthy.0,
        );
        assert!(
            failures > 0,
            "the chaos smoke needs at least one injected failure — lower --mttf"
        );
        assert!(
            evacuated > 0,
            "the chaos smoke needs at least one successful evacuation — this workload \
             only produced evictions; raise --mttf or use a roomier catalog"
        );
    }

    let json_lines = || -> Vec<String> {
        runs.iter()
            .map(|run| serde_json::to_string(&run.report).expect("reports serialize"))
            .collect()
    };
    if json {
        for line in json_lines() {
            println!("{line}");
        }
    }
    if let Some(path) = out {
        let mut contents = json_lines().join("\n");
        contents.push('\n');
        // Atomic: CI byte-diffs this artifact; an interrupted run must
        // not leave a truncated file behind.
        rtsm_exp::write_atomic(&path, contents).expect("write --out file");
        println!("wrote {path}");
    }
    if let (Some(path), Some(recorder)) = (trace_out, recorder) {
        rtsm_exp::write_atomic(&path, recorder.chrome_trace_json())
            .expect("write --trace-out file");
        println!(
            "wrote {path} ({} trace events{}) — open in Perfetto or chrome://tracing",
            recorder.len(),
            if recorder.dropped() > 0 {
                format!(", {} older ones dropped by the ring", recorder.dropped())
            } else {
                String::new()
            }
        );
    }
}
