//! `repro` — regenerates every table and figure of the DATE 2008 paper.
//!
//! ```text
//! repro [all|fig1|table1|fig2|table2|fig3|perf|quality|ablation|
//!        runtime-scenario|modes|feedback]
//! ```
//!
//! Paper-vs-measured comparisons for each experiment are recorded in
//! `EXPERIMENTS.md`.

use rtsm_bench::alloc_track::PeakAlloc;
use rtsm_bench::{
    ablation, feedback_demo, fig1, fig2, fig3, modes, perf, quality_comparison, runtime_scenario,
    table1, table2,
};

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc::new();

fn section(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

fn run(which: &str) -> bool {
    match which {
        "fig1" => {
            section("E1 / Figure 1 — HIPERLAN/2 receiver KPN");
            print!("{}", fig1());
        }
        "table1" => {
            section("E2 / Table 1 — available implementations");
            print!("{}", table1());
        }
        "fig2" => {
            section("E3 / Figure 2 — MPSoC layout (reconstructed, see DESIGN.md)");
            print!("{}", fig2());
        }
        "table2" => {
            section("E4 / Table 2 — processor assignment iterations in step 2");
            let (rendered, trace) = table2();
            print!("{rendered}");
            println!(
                "\npaper: costs 11 (initial), 11 (revert), 9 (keep), 7 (keep) — measured: \
                 {} (initial), {}",
                trace.initial_cost,
                trace
                    .events
                    .iter()
                    .map(|e| format!("{} ({})", e.cost, if e.kept { "keep" } else { "revert" }))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        "fig3" => {
            section("E5 / Figure 3 — final CSDF graph with computed buffers");
            let f = fig3();
            println!(
                "router actors: {} (paper: 12); total actors: {} (paper: 18)",
                f.routers, f.actors
            );
            for (label, words) in &f.buffers {
                println!("  {label} = {words} words");
            }
            println!(
                "achieved period: {} ps / {} iterations (required 4000000 ps)",
                f.achieved_period.0, f.achieved_period.1
            );
            println!("\n{}", f.summary);
            println!("DOT of the composed CSDF graph:\n{}", f.dot);
        }
        "perf" => {
            section("E6 / §4.5 — mapper run time and memory");
            ALLOC.reset_peak();
            let stats = perf(100);
            let peak_kb = ALLOC.peak_bytes() as f64 / 1024.0;
            println!(
                "mapping the HIPERLAN/2 receiver, {} runs: min {:.0} µs, mean {:.0} µs, \
                 max {:.0} µs",
                stats.runs, stats.min_us, stats.mean_us, stats.max_us
            );
            println!("peak heap during runs: {peak_kb:.0} kB");
            println!(
                "paper (C on ARM926 @ 100 MHz): < 4 ms, 137 kB code, 110 kB peak data — \
                 shape reproduced: run-time capable on both."
            );
        }
        "quality" => {
            section("E7 / §5 — quantitative benchmark: heuristic vs baselines");
            let (table, _) = quality_comparison(&[21, 22, 23, 24]);
            print!("{table}");
        }
        "ablation" => {
            section("E8/E9 — ablations");
            print!("{}", ablation());
        }
        "runtime-scenario" => {
            section("E10 / §1.3 — run-time knowledge vs design-time worst case");
            print!("{}", runtime_scenario());
        }
        "modes" => {
            section("E11 / §4.1 — the seven HIPERLAN/2 modes");
            let (table, _) = modes();
            print!("{table}");
        }
        "feedback" => {
            section("E12 / §3 — feedback-driven iterative refinement");
            let (report, _) = feedback_demo();
            print!("{report}");
        }
        _ => return false,
    }
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let all = [
        "fig1",
        "table1",
        "fig2",
        "table2",
        "fig3",
        "perf",
        "quality",
        "ablation",
        "runtime-scenario",
        "modes",
        "feedback",
    ];
    if which == "all" {
        for w in all {
            assert!(run(w));
        }
    } else if !run(which) {
        eprintln!(
            "unknown experiment `{which}`; expected one of: all {}",
            all.join(" ")
        );
        std::process::exit(2);
    }
}
