//! `experiment` — run a sharded sweep matrix from a JSON spec.
//!
//! ```text
//! experiment --spec PATH [--workers N] [--out PATH] [--jsonl PATH] [--quiet]
//!            [--heartbeat N] [--wall]
//! ```
//!
//! Loads an `ExperimentSpec`, expands it into independent trials, fans
//! them across `--workers` threads (default: the machine's available
//! parallelism), streams one JSON line per trial to `--jsonl` (and,
//! unless `--quiet`, a progress line to stdout) **in trial-id order**
//! while the run is in flight, and seals the aggregate
//! `ExperimentReport` to `--out` atomically (temp file + rename).
//!
//! The sealed report is byte-identical for a given spec regardless of
//! `--workers` — the CI determinism gate byte-diffs two runs at
//! different worker counts. Wall-clock throughput (events/s) is printed
//! to stdout only; it never enters the report.
//!
//! `--heartbeat N` prints a progress line to **stderr** every N
//! completed trials (trial id, cumulative events/s) — stderr only, so
//! the JSONL stream and the sealed report stay byte-identical with or
//! without it. `--wall` embeds the merged admission-latency histograms
//! into the report's clearly-marked non-deterministic `wall` section;
//! without it the section is absent and the report keeps its
//! deterministic byte shape.

use rtsm_exp::{run_experiment, write_atomic, ExperimentSpec};
use std::io::Write;
use std::time::Instant;

fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!(
        "usage: experiment --spec PATH [--workers N] [--out PATH] [--jsonl PATH] [--quiet] \
         [--heartbeat N] [--wall]"
    );
    std::process::exit(2);
}

const VALUE_FLAGS: [&str; 5] = ["--spec", "--workers", "--out", "--jsonl", "--heartbeat"];

fn validate_args(args: &[String]) {
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if VALUE_FLAGS.contains(&arg.as_str()) {
            if i + 1 >= args.len() {
                usage_error(&format!("{arg} expects a value"));
            }
            i += 2;
        } else if arg == "--quiet" || arg == "--wall" {
            i += 1;
        } else {
            usage_error(&format!("unknown argument `{arg}`"));
        }
    }
}

fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    validate_args(&args);
    let spec_path =
        parse_flag(&args, "--spec").unwrap_or_else(|| usage_error("--spec PATH is required"));
    let workers = match parse_flag(&args, "--workers") {
        None => rtsm_exp::available_workers(),
        Some(v) => v.parse().unwrap_or_else(|_| {
            usage_error(&format!("--workers expects a positive integer, got `{v}`"))
        }),
    };
    if workers == 0 {
        usage_error("--workers must be at least 1");
    }
    let out = parse_flag(&args, "--out");
    let jsonl = parse_flag(&args, "--jsonl");
    let quiet = args.iter().any(|a| a == "--quiet");
    let embed_wall = args.iter().any(|a| a == "--wall");
    let heartbeat = match parse_flag(&args, "--heartbeat") {
        None => 0,
        Some(v) => v.parse::<u64>().unwrap_or_else(|_| {
            usage_error(&format!(
                "--heartbeat expects a positive integer, got `{v}`"
            ))
        }),
    };

    let spec_text = std::fs::read_to_string(&spec_path)
        .unwrap_or_else(|e| usage_error(&format!("cannot read `{spec_path}`: {e}")));
    let spec: ExperimentSpec = serde_json::from_str(&spec_text)
        .unwrap_or_else(|e| usage_error(&format!("`{spec_path}` is not a valid spec: {e}")));
    if let Err(message) = spec.validate() {
        // One line, naming the offender and the valid options.
        eprintln!("error: {message}");
        std::process::exit(2);
    }

    let n_trials = spec.expand().len();
    let total_arrivals = spec.total_arrivals();
    println!(
        "experiment `{}`: {n_trials} trials, {total_arrivals} total arrivals, {workers} worker(s)",
        spec.name
    );

    let mut jsonl_file = jsonl.as_ref().map(|path| {
        std::io::BufWriter::new(std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("error: cannot create `{path}`: {e}");
            std::process::exit(2);
        }))
    });
    let started = Instant::now();
    let mut completed: u64 = 0;
    let mut events_done: u64 = 0;
    let run = run_experiment(&spec, workers, |record, line| {
        if let Some(file) = jsonl_file.as_mut() {
            writeln!(file, "{line}").expect("write JSONL line");
        }
        // Heartbeat goes to stderr only: the JSONL stream and the sealed
        // report must stay byte-identical with or without it.
        completed += 1;
        events_done += record.arrivals + record.departures + record.mode_switch_attempts;
        if heartbeat > 0 && completed.is_multiple_of(heartbeat) {
            let secs = started.elapsed().as_secs_f64().max(1e-9);
            eprintln!(
                "heartbeat: trial {} done ({completed}/{n_trials}), {:.0} events/s",
                record.id,
                events_done as f64 / secs
            );
        }
        if !quiet {
            println!(
                "trial {:>4}/{n_trials}: {} {} gap={} policy={} seed={}r{} → \
                 {} admitted / {} blocked ({}‰)",
                record.id + 1,
                record.catalog,
                record.algorithm,
                record.mean_gap,
                record.policy,
                record.seed,
                record.repeat,
                record.admitted,
                record.blocked,
                record.blocking_permille,
            );
        }
    })
    .unwrap_or_else(|e| {
        eprintln!("error: {}", e.0);
        std::process::exit(2);
    });
    if let Some(file) = jsonl_file.as_mut() {
        file.flush().expect("flush JSONL file");
    }

    println!(
        "{} trials, {} events in {:.1} s → {} events/s on {workers} worker(s); \
         blocking {}/{} arrivals, {} recovered, digest {:016x}",
        run.report.n_trials,
        run.events,
        run.wall.as_secs_f64(),
        run.events_per_second(),
        run.report.total_blocked,
        run.report.total_arrivals,
        run.report.total_recovered,
        run.report.trials_fnv1a,
    );
    for front in &run.report.pareto_fronts {
        println!("pareto[{}]: {} point(s)", front.catalog, front.points.len());
        for p in &front.points {
            println!(
                "  {} gap={} policy={}: blocking {}‰, {} pJ·t/admitted, {} pJ migrated",
                p.algorithm,
                p.mean_gap,
                p.policy,
                p.blocking_permille,
                p.energy_pj_ticks_per_admitted,
                p.migration_energy_pj,
            );
        }
    }

    let wall = &run.wall_section;
    println!(
        "admission latency (wall, non-deterministic): {} samples, mean {:.1} µs, \
         p50 {:.1} µs, p90 {:.1} µs, p99 {:.1} µs, max {:.1} µs",
        wall.map_latency.count(),
        wall.map_latency.mean_ns() as f64 / 1e3,
        wall.map_latency.p50_ns() as f64 / 1e3,
        wall.map_latency.p90_ns() as f64 / 1e3,
        wall.map_latency.p99_ns() as f64 / 1e3,
        wall.map_latency.max_ns() as f64 / 1e3,
    );

    if let Some(path) = out {
        let mut report = run.report.clone();
        if embed_wall {
            report.wall = Some(run.wall_section.clone());
        }
        let json = serde_json::to_string(&report).expect("reports serialize");
        write_atomic(&path, json).unwrap_or_else(|e| {
            eprintln!("error: cannot write `{path}`: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }
    if let Some(path) = jsonl {
        println!("wrote {path}");
    }
}
