//! A peak-tracking global allocator for the §4.5 memory measurement.
//!
//! The paper reports 110 kB peak data memory for its C implementation on an
//! ARM926. To compare shape (not absolute numbers — different language,
//! different machine), the `repro perf` command installs [`PeakAlloc`] and
//! reports the peak live allocation during a mapping run.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Byte-counting wrapper around the system allocator.
///
/// Install with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: rtsm_bench::alloc_track::PeakAlloc = rtsm_bench::alloc_track::PeakAlloc::new();
/// ```
pub struct PeakAlloc {
    live: AtomicUsize,
    peak: AtomicUsize,
}

impl PeakAlloc {
    /// A fresh counter.
    pub const fn new() -> Self {
        PeakAlloc {
            live: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// Currently live heap bytes.
    pub fn live_bytes(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Peak live heap bytes since the last [`PeakAlloc::reset_peak`].
    pub fn peak_bytes(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Resets the peak to the current live size.
    pub fn reset_peak(&self) {
        self.peak
            .store(self.live.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    fn add(&self, size: usize) {
        let live = self.live.fetch_add(size, Ordering::Relaxed) + size;
        self.peak.fetch_max(live, Ordering::Relaxed);
    }

    fn sub(&self, size: usize) {
        self.live.fetch_sub(size, Ordering::Relaxed);
    }
}

impl Default for PeakAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: delegates directly to `System`, only adding relaxed counter
// updates; layout handling is unchanged.
unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: forwarded verbatim to the system allocator.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            self.add(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim to the system allocator.
        unsafe { System.dealloc(ptr, layout) };
        self.sub(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: forwarded verbatim to the system allocator.
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            if new_size >= layout.size() {
                self.add(new_size - layout.size());
            } else {
                self.sub(layout.size() - new_size);
            }
        }
        p
    }
}
