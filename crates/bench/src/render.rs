//! Rendering helpers for experiment output (KPN figures, comparison
//! tables).

use rtsm_app::{ApplicationSpec, Endpoint};
use std::fmt::Write as _;

/// Renders a KPN as the paper's Figure 1: processes with the token counts
/// on every data channel, control parts marked.
pub fn render_kpn(spec: &ApplicationSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "KPN of {}:", spec.name);
    let name = |e: Endpoint| match e {
        Endpoint::Process(p) => spec.graph.process(p).name.clone(),
        Endpoint::StreamInput => "⟦stream in⟧".to_string(),
        Endpoint::StreamOutput => "⟦stream out⟧".to_string(),
    };
    for (_, ch) in spec.graph.channels() {
        let marker = if ch.is_control { " [control]" } else { "" };
        let _ = writeln!(
            out,
            "  {} --{}--> {}{}",
            name(ch.src),
            ch.tokens_per_period,
            name(ch.dst),
            marker
        );
    }
    let _ = writeln!(
        out,
        "  QoS: one period every {} µs",
        spec.qos.period_ps as f64 / 1e6
    );
    out
}

/// A generic fixed-width comparison table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with per-column widths.
    pub fn render(&self) -> String {
        let n = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for i in 0..n {
                widths[i] = widths[i].max(row[i].chars().count());
            }
        }
        let mut out = String::new();
        let emit = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let pad = widths[i] - c.chars().count();
                let _ = write!(out, "{}{}  ", c, " ".repeat(pad));
            }
            let _ = writeln!(out);
        };
        emit(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * n;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            emit(row, &widths, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};

    #[test]
    fn kpn_render_mentions_all_channels() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let s = render_kpn(&spec);
        assert!(s.contains("--80-->"));
        assert!(s.contains("--64-->"));
        assert!(s.contains("[control]"));
        assert!(s.contains("Inverse OFDM"));
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(vec!["xx".into(), "y".into()]);
        let s = t.render();
        assert!(s.contains("a   bbbb"));
        assert!(s.contains("xx  y"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["x".into(), "y".into()]);
    }
}
