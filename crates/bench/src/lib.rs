//! Benchmark harness: experiment runners shared by the `repro` binary, the
//! Criterion benches, and the workspace integration tests.
//!
//! Each public function regenerates one artefact of the paper (see
//! `DESIGN.md`'s per-experiment index); `EXPERIMENTS.md` records the
//! paper-vs-measured comparison for every one of them.

#![warn(missing_docs)]
// `unsafe` is confined to the GlobalAlloc delegation in `alloc_track`.

pub mod alloc_track;
pub mod experiments;
pub mod render;

pub use experiments::*;
