//! Per-step cost breakdown of the four-step algorithm on the paper case:
//! where do the <4 ms of §4.5 go?

use criterion::{criterion_group, criterion_main, Criterion};
use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
use rtsm_core::cost::CostModel;
use rtsm_core::feedback::Constraints;
use rtsm_core::step1::assign_implementations;
use rtsm_core::step2::{improve_assignment, Step2Config};
use rtsm_core::step3::route_channels;
use rtsm_core::step4::{check_constraints, Step4Config};
use rtsm_platform::paper::paper_platform;
use std::hint::black_box;

fn steps(c: &mut Criterion) {
    let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
    let platform = paper_platform();
    let base = platform.initial_state();
    let constraints = Constraints::new();

    c.bench_function("step1/implementations", |b| {
        b.iter(|| {
            let out = assign_implementations(&spec, &platform, &base, &constraints).unwrap();
            black_box(out.mapping.n_assigned())
        })
    });

    let step1 = assign_implementations(&spec, &platform, &base, &constraints).unwrap();
    c.bench_function("step2/local_search", |b| {
        b.iter(|| {
            let mut mapping = step1.mapping.clone();
            let mut working = step1.working.clone();
            let trace = improve_assignment(
                &spec,
                &platform,
                &constraints,
                &mut mapping,
                &mut working,
                &CostModel::HopCount,
                &Step2Config::default(),
            );
            black_box(trace.final_cost)
        })
    });

    // Prepare the improved mapping once for step 3/4 benches.
    let mut mapping = step1.mapping.clone();
    let mut working = step1.working.clone();
    improve_assignment(
        &spec,
        &platform,
        &constraints,
        &mut mapping,
        &mut working,
        &CostModel::HopCount,
        &Step2Config::default(),
    );

    c.bench_function("step3/routing", |b| {
        b.iter(|| {
            let mut m = mapping.clone();
            let mut w = working.clone();
            route_channels(&spec, &platform, &mut m, &mut w).unwrap();
            black_box(m.routes().count())
        })
    });

    let mut routed = mapping.clone();
    let mut routed_state = working.clone();
    route_channels(&spec, &platform, &mut routed, &mut routed_state).unwrap();
    c.bench_function("step4/dataflow_check", |b| {
        b.iter(|| {
            let result = check_constraints(
                &spec,
                &platform,
                &routed,
                &routed_state,
                &Step4Config::default(),
            );
            black_box(result.feasible)
        })
    });
}

/// Short, stable measurement settings so the whole suite completes in
/// minutes while keeping variance low enough for shape comparisons.
fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = steps
}
criterion_main!(benches);
