//! E7 — run-time cost of the heuristic against the baselines: the paper's
//! core claim is that exhaustive search "requires far too much time" at
//! run time while the heuristic stays in the millisecond class.

use criterion::{criterion_group, criterion_main, Criterion};
use rtsm_baselines::{
    AnnealingMapper, ExhaustiveMapper, GreedyMapper, MappingAlgorithm, RandomMapper, SpatialMapper,
};
use rtsm_platform::TileKind;
use rtsm_workloads::{mesh_platform, synthetic_app, GraphShape, SyntheticConfig};
use std::hint::black_box;

fn algorithms(c: &mut Criterion) {
    let spec = synthetic_app(&SyntheticConfig {
        seed: 21,
        n_processes: 6,
        shape: GraphShape::Chain,
        ..SyntheticConfig::default()
    });
    let platform = mesh_platform(
        21 ^ 0xA5A5,
        4,
        4,
        &[(TileKind::Montium, 4), (TileKind::Arm, 5)],
    );
    let state = platform.initial_state();

    let mut group = c.benchmark_group("baselines/chain6_mesh4x4");

    let heuristic = SpatialMapper::default();
    group.bench_function("heuristic", |b| {
        b.iter(|| black_box(heuristic.map(&spec, &platform, &state).map(|r| r.energy_pj)))
    });

    let greedy = GreedyMapper;
    group.bench_function("greedy", |b| {
        b.iter(|| black_box(greedy.map(&spec, &platform, &state).map(|r| r.energy_pj)))
    });

    let random = RandomMapper {
        samples: 8,
        ..RandomMapper::default()
    };
    group.bench_function("random8", |b| {
        b.iter(|| black_box(random.map(&spec, &platform, &state).map(|r| r.energy_pj)))
    });

    let annealing = AnnealingMapper {
        iterations: 500,
        ..AnnealingMapper::default()
    };
    group.bench_function("annealing500", |b| {
        b.iter(|| black_box(annealing.map(&spec, &platform, &state).map(|r| r.energy_pj)))
    });

    let exhaustive = ExhaustiveMapper {
        max_nodes: 100_000,
        ..ExhaustiveMapper::default()
    };
    group.bench_function("exhaustive", |b| {
        b.iter(|| {
            black_box(
                exhaustive
                    .map(&spec, &platform, &state)
                    .map(|r| r.energy_pj),
            )
        })
    });

    group.finish();
}

/// Short, stable measurement settings so the whole suite completes in
/// minutes while keeping variance low enough for shape comparisons.
fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = algorithms
}
criterion_main!(benches);
