//! Step-3 substrate benches: capacity-constrained routing on larger
//! meshes, with allocation/release round-trips.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtsm_platform::routing::{allocate, release, route};
use rtsm_platform::TileKind;
use rtsm_workloads::mesh_platform;
use std::hint::black_box;

fn shortest_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing/route_corner_to_corner");
    for &side in &[4u16, 8, 12] {
        let platform = mesh_platform(
            3,
            side,
            side,
            &[(TileKind::Arm, side as usize * side as usize)],
        );
        let state = platform.initial_state();
        let tiles: Vec<_> = platform.tiles().map(|(id, _)| id).collect();
        let from = *tiles.first().unwrap();
        let to = *tiles.last().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(side), &side, |b, _| {
            b.iter(|| {
                black_box(
                    route(&platform, &state, from, to, 1_000_000)
                        .unwrap()
                        .hops(),
                )
            })
        });
    }
    group.finish();
}

fn allocate_release(c: &mut Criterion) {
    let platform = mesh_platform(4, 8, 8, &[(TileKind::Arm, 62)]);
    let tiles: Vec<_> = platform.tiles().map(|(id, _)| id).collect();
    let from = *tiles.first().unwrap();
    let to = *tiles.last().unwrap();
    c.bench_function("routing/allocate_release_roundtrip", |b| {
        let mut state = platform.initial_state();
        b.iter(|| {
            let path = route(&platform, &state, from, to, 1_000_000).unwrap();
            allocate(&platform, &mut state, &path).unwrap();
            release(&platform, &mut state, &path).unwrap();
            black_box(path.hops())
        })
    });
}

fn congestion_avoidance(c: &mut Criterion) {
    // Saturate a corridor and measure detouring route search.
    let platform = mesh_platform(5, 8, 8, &[(TileKind::Arm, 62)]);
    let tiles: Vec<_> = platform.tiles().map(|(id, _)| id).collect();
    let from = *tiles.first().unwrap();
    let to = *tiles.last().unwrap();
    let mut state = platform.initial_state();
    // Pre-allocate a batch of routes to create congestion.
    for _ in 0..8 {
        let path = route(&platform, &state, from, to, 20_000_000).unwrap();
        allocate(&platform, &mut state, &path).unwrap();
    }
    c.bench_function("routing/route_under_congestion", |b| {
        b.iter(|| black_box(route(&platform, &state, from, to, 20_000_000).map(|p| p.hops())))
    });
}

/// Short, stable measurement settings so the whole suite completes in
/// minutes while keeping variance low enough for shape comparisons.
fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = shortest_path, allocate_release, congestion_avoidance
}
criterion_main!(benches);
