//! Dataflow-substrate benches: self-timed simulation, buffer sizing, and
//! MCR cross-validation speed on Figure-3-sized graphs.

use criterion::{criterion_group, criterion_main, Criterion};
use rtsm_dataflow::mcr::maximum_cycle_ratio;
use rtsm_dataflow::{
    check_source_period, hsdf, size_buffers, BufferSizingConfig, CsdfGraph, PhaseVec, SimConfig,
    Simulation,
};
use std::hint::black_box;

/// A Figure-3-like pipeline: source → 2 routers → worker → 3 routers →
/// sink, 64 tokens/period.
fn figure3_like() -> (
    CsdfGraph,
    rtsm_dataflow::ActorId,
    Vec<rtsm_dataflow::ChannelId>,
) {
    let mut g = CsdfGraph::new();
    let src = g.add_actor("src", PhaseVec::uniform(50_000, 64), 1);
    let r1 = g.add_actor("r1", PhaseVec::single(4), 5_000);
    let r2 = g.add_actor("r2", PhaseVec::single(4), 5_000);
    let worker = g.add_actor(
        "worker",
        PhaseVec::uniform(1, 64).concat(&PhaseVec::single(170)),
        5_000,
    );
    let r3 = g.add_actor("r3", PhaseVec::single(4), 5_000);
    let snk = g.add_actor("snk", PhaseVec::single(1), 5_000);
    let one = PhaseVec::single(1);
    g.add_channel_full(src, r1, PhaseVec::uniform(1, 64), one.clone(), 0, Some(8))
        .unwrap();
    g.add_channel_full(r1, r2, one.clone(), one.clone(), 0, Some(4))
        .unwrap();
    let b1 = g
        .add_channel(
            r2,
            worker,
            one.clone(),
            PhaseVec::uniform(1, 64).concat(&PhaseVec::single(0)),
        )
        .unwrap();
    let b2 = g
        .add_channel_full(
            worker,
            r3,
            PhaseVec::uniform(0, 64).concat(&PhaseVec::single(64)),
            one.clone(),
            0,
            Some(128),
        )
        .unwrap();
    let _ = b2;
    let b3 = g
        .add_channel(r3, snk, one.clone(), PhaseVec::single(64))
        .unwrap();
    (g, src, vec![b1, b3])
}

fn simulation(c: &mut Criterion) {
    let (g, src, _) = figure3_like();
    c.bench_function("dataflow/steady_state_simulation", |b| {
        b.iter(|| {
            let sim = Simulation::new(
                &g,
                SimConfig {
                    reference: Some(src),
                    ..SimConfig::default()
                },
            );
            black_box(sim.run().unwrap().steady)
        })
    });
}

fn sizing(c: &mut Criterion) {
    let (g, src, targets) = figure3_like();
    c.bench_function("dataflow/buffer_sizing", |b| {
        b.iter(|| {
            let sizing = size_buffers(
                g.clone(),
                &BufferSizingConfig {
                    source: src,
                    period: 3_200_000,
                    channels: targets.clone(),
                    max_sweeps: 3,
                },
            )
            .unwrap();
            black_box(sizing.total)
        })
    });
}

fn period_check(c: &mut Criterion) {
    let (mut g, src, targets) = figure3_like();
    let sizing = size_buffers(
        g.clone(),
        &BufferSizingConfig {
            source: src,
            period: 3_200_000,
            channels: targets,
            max_sweeps: 3,
        },
    )
    .unwrap();
    rtsm_dataflow::apply_sizing(&mut g, &sizing);
    c.bench_function("dataflow/period_check", |b| {
        b.iter(|| black_box(check_source_period(&g, src, 3_200_000).unwrap().0))
    });
}

fn mcr(c: &mut Criterion) {
    // Small cyclic CSDF for MCR (HSDF expansion grows with rates).
    let mut g = CsdfGraph::new();
    let a = g.add_actor("a", PhaseVec::from_slice(&[3, 5]), 1);
    let b = g.add_actor("b", PhaseVec::from_slice(&[2, 2, 2]), 1);
    g.add_channel(a, b, PhaseVec::from_slice(&[1, 2]), PhaseVec::uniform(1, 3))
        .unwrap();
    g.add_channel_full(
        b,
        a,
        PhaseVec::uniform(1, 3),
        PhaseVec::from_slice(&[1, 2]),
        3,
        None,
    )
    .unwrap();
    c.bench_function("dataflow/mcr_exact", |bch| {
        bch.iter(|| {
            let h = hsdf::expand(&g).unwrap();
            black_box(maximum_cycle_ratio(&h).unwrap())
        })
    });
}

/// Short, stable measurement settings so the whole suite completes in
/// minutes while keeping variance low enough for shape comparisons.
fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = simulation, sizing, period_check, mcr
}
criterion_main!(benches);
