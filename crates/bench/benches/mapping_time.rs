//! E6 — mapper run time (§4.5) and its scaling with application and
//! platform size (the paper claims run-time capability; this bench
//! quantifies it on the paper case and on growing synthetic instances).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
use rtsm_core::{MapperConfig, SpatialMapper};
use rtsm_platform::paper::paper_platform;
use rtsm_platform::TileKind;
use rtsm_workloads::{mesh_platform, synthetic_app, GraphShape, SyntheticConfig};
use std::hint::black_box;

fn paper_case(c: &mut Criterion) {
    let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
    let platform = paper_platform();
    let state = platform.initial_state();
    // The hot-path configuration: trace capture off, as a run-time manager
    // would run it (decisions and counters are identical either way).
    let mapper = SpatialMapper::new(MapperConfig::default().without_capture());
    c.bench_function("map/hiperlan2_paper_platform", |b| {
        b.iter(|| {
            let r = mapper
                .map(black_box(&spec), black_box(&platform), black_box(&state))
                .expect("feasible");
            black_box(r.energy_pj)
        })
    });
    // The same case with full Table-2 trace capture, to keep the cost of
    // tracing itself visible.
    let tracing = SpatialMapper::new(MapperConfig::default());
    c.bench_function("map/hiperlan2_paper_platform_capture", |b| {
        b.iter(|| {
            let r = tracing
                .map(black_box(&spec), black_box(&platform), black_box(&state))
                .expect("feasible");
            black_box(r.energy_pj)
        })
    });
}

fn synthetic_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("map/synthetic_chain");
    for &n in &[4usize, 6, 8, 10] {
        let spec = synthetic_app(&SyntheticConfig {
            seed: 42,
            n_processes: n,
            shape: GraphShape::Chain,
            ..SyntheticConfig::default()
        });
        let platform = mesh_platform(7, 5, 5, &[(TileKind::Montium, 8), (TileKind::Arm, 8)]);
        let state = platform.initial_state();
        let mapper = SpatialMapper::new(MapperConfig::default().without_capture());
        // Skip sizes the platform cannot host.
        if mapper.map(&spec, &platform, &state).is_err() {
            continue;
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let r = mapper.map(black_box(&spec), &platform, &state);
                black_box(r.map(|x| x.energy_pj).unwrap_or(0))
            })
        });
    }
    group.finish();
}

fn platform_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("map/mesh_size");
    for &side in &[3u16, 4, 6, 8] {
        let spec = synthetic_app(&SyntheticConfig {
            seed: 5,
            n_processes: 6,
            ..SyntheticConfig::default()
        });
        let platform = mesh_platform(
            11,
            side,
            side,
            &[
                (TileKind::Montium, (side as usize * side as usize) / 3),
                (TileKind::Arm, (side as usize * side as usize) / 3),
            ],
        );
        let state = platform.initial_state();
        let mapper = SpatialMapper::new(MapperConfig::default().without_capture());
        if mapper.map(&spec, &platform, &state).is_err() {
            continue;
        }
        group.bench_with_input(BenchmarkId::from_parameter(side), &side, |b, _| {
            b.iter(|| {
                let r = mapper.map(black_box(&spec), &platform, &state);
                black_box(r.map(|x| x.communication_hops).unwrap_or(0))
            })
        });
    }
    group.finish();
}

/// Short, stable measurement settings so the whole suite completes in
/// minutes while keeping variance low enough for shape comparisons.
fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = paper_case, synthetic_scaling, platform_scaling
}
criterion_main!(benches);
