//! The templates-off regression gate: with the template library disabled,
//! the fixed-seed 2008 reports of **every registered** mapping algorithm
//! must stay byte-identical to the golden fixtures
//! (`tests/golden/seed2008_*_prepr.jsonl`). This is the same guarantee
//! the CI `template-smoke` job checks through the `simulate` binary,
//! enforced here at `cargo test` granularity so a regression names the
//! exact algorithm and catalog that drifted.

use rtsm_core::MappingAlgorithm;
use rtsm_platform::paper::paper_platform;
use rtsm_platform::{Platform, TileKind};
use rtsm_sim::{run_sim, ArrivalProcess, Catalog, HoldingTime, SimConfig};
use rtsm_workloads::mesh_platform;

/// The registered algorithms in the `simulate` CLI's emission order —
/// golden fixture lines are matched positionally, so the fixture grows by
/// exactly one line whenever `rtsm_exp::ALGORITHMS` gains an entry.
fn algorithms() -> Vec<Box<dyn MappingAlgorithm>> {
    rtsm_exp::ALGORITHMS.iter().map(|e| (e.build)()).collect()
}

/// The exact configuration the fixtures were recorded with: the
/// `simulate` CLI defaults at `--seed 2008 --arrivals 500`.
fn fixture_config() -> SimConfig {
    SimConfig {
        seed: 2008,
        arrivals: 500,
        arrival_process: ArrivalProcess::Poisson { mean_gap: 500 },
        holding: HoldingTime::Exponential { mean: 2000 },
        mode_switch_probability: 0.1,
        sample_interval: 10_000,
        horizon: None,
        reconfiguration: None,
        track_fragmentation: false,
        faults: None,
    }
}

fn assert_matches_fixture(platform: &Platform, catalog: &Catalog, fixture: &str) {
    let path = format!(
        "{}/../../tests/golden/{fixture}",
        env!("CARGO_MANIFEST_DIR")
    );
    let golden = std::fs::read_to_string(&path).expect("golden fixture readable");
    let golden: Vec<&str> = golden.lines().collect();
    let config = fixture_config();
    let algorithms = algorithms();
    assert_eq!(
        golden.len(),
        algorithms.len(),
        "{fixture} must hold one line per algorithm"
    );
    for (algorithm, expected) in algorithms.into_iter().zip(golden) {
        let run = run_sim(platform, &algorithm, catalog, &config)
            .expect("the simulation never breaks its own ledger");
        let line = serde_json::to_string(&run.report).expect("reports serialize");
        assert_eq!(
            line, expected,
            "`{}` drifted from {fixture} with templates off",
            run.report.algorithm
        );
    }
}

#[test]
fn seed2008_hiperlan2_reports_match_the_golden_fixture() {
    assert_matches_fixture(
        &paper_platform(),
        &Catalog::hiperlan2(),
        "seed2008_hiperlan2_prepr.jsonl",
    );
}

#[test]
fn seed2008_mixed_reports_match_the_golden_fixture() {
    let platform = mesh_platform(
        42,
        4,
        4,
        &[
            (TileKind::Montium, 4),
            (TileKind::Arm, 4),
            (TileKind::Dsp, 2),
        ],
    );
    assert_matches_fixture(
        &platform,
        &Catalog::mixed_dsp(),
        "seed2008_mixed_prepr.jsonl",
    );
}
