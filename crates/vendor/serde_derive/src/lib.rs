//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! in-tree serde subset.
//!
//! Parses the item's token stream directly (no `syn`/`quote`, which are
//! unavailable offline) and supports what this workspace uses:
//!
//! * structs with named fields, tuple structs, and unit structs;
//! * enums with unit, tuple, and struct variants (externally tagged);
//! * the container attributes `#[serde(from = "Proxy", into = "Proxy")]`
//!   and `#[serde(rename = "…")]` (the latter is accepted and ignored —
//!   type names never appear in the encoding).
//!
//! Generics, lifetimes, and field-level serde attributes are not supported;
//! the model crates do not need them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default)]
struct ContainerAttrs {
    from: Option<String>,
    into: Option<String>,
}

enum Data {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Input {
    name: String,
    attrs: ContainerAttrs,
    data: Data,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    generate_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    generate_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    let attrs = parse_attrs(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);
    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    let data = match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Data::UnitStruct,
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            _ => panic!("enum without a body"),
        },
        other => panic!("derive target must be a struct or enum, found `{other}`"),
    };
    Input { name, attrs, data }
}

/// Consumes leading `#[...]` attributes, extracting `serde(from/into)`.
fn parse_attrs(tokens: &[TokenTree], pos: &mut usize) -> ContainerAttrs {
    let mut attrs = ContainerAttrs::default();
    while let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() != '#' {
            break;
        }
        *pos += 1;
        let Some(TokenTree::Group(g)) = tokens.get(*pos) else {
            panic!("`#` not followed by an attribute group");
        };
        *pos += 1;
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
            (inner.first(), inner.get(1))
        {
            if id.to_string() == "serde" {
                parse_serde_args(args.stream(), &mut attrs);
            }
        }
    }
    attrs
}

/// Parses `from = "X", into = "Y", rename = "Z"` inside `#[serde(...)]`.
fn parse_serde_args(stream: TokenStream, attrs: &mut ContainerAttrs) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        let key = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            _ => {
                i += 1;
                continue;
            }
        };
        if matches!(tokens.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            if let Some(TokenTree::Literal(lit)) = tokens.get(i + 2) {
                let value = string_literal(&lit.to_string());
                match key.as_str() {
                    "from" => attrs.from = Some(value),
                    "into" => attrs.into = Some(value),
                    "rename" => {} // type names never appear in the encoding
                    other => panic!("unsupported serde attribute `{other}`"),
                }
            }
            i += 3;
        } else {
            panic!("unsupported serde attribute form starting at `{key}`");
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
}

fn string_literal(raw: &str) -> String {
    raw.trim_matches('"').to_string()
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *pos += 1;
        if matches!(
            tokens.get(*pos),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *pos += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("expected an identifier, found {other:?}"),
    }
}

/// Field names of a `{ ... }` struct body. Types are skipped (the generated
/// code relies on inference), tracking `<...>` depth so commas inside
/// generic arguments do not split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let _ = parse_attrs(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        fields.push(name);
        skip_type(&tokens, &mut pos);
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    fields
}

/// Advances past one type, stopping at a top-level `,`.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Number of fields of a `( ... )` tuple body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for (i, token) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                // A trailing comma does not start a new field.
                ',' if angle_depth == 0 && i + 1 < tokens.len() => count += 1,
                _ => {}
            }
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let _ = parse_attrs(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    variants
}

// ------------------------------------------------------------ generation

fn generate_serialize(input: &Input) -> String {
    let name = &input.name;
    if let Some(proxy) = &input.attrs.into {
        // `#[serde(into = "Proxy")]`: serialize through the proxy type.
        return format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     let __proxy: {proxy} = \
                         ::core::convert::Into::into(::core::clone::Clone::clone(self));\n\
                     ::serde::Serialize::to_value(&__proxy)\n\
                 }}\n\
             }}"
        );
    }
    let body = match &input.data {
        Data::UnitStruct => "::serde::Value::Null".to_string(),
        Data::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Data::NamedStruct(fields) => struct_map_expr(fields, "self."),
        Data::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| serialize_arm(name, v)).collect();
            format!("match self {{\n{}\n}}", arms.join("\n"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

/// `Value::Map` literal for named fields accessed via `prefix` (`self.` for
/// structs, empty for bound variant fields).
fn struct_map_expr(fields: &[String], prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&{prefix}{f}))"))
        .collect();
    format!("::serde::Value::Map(vec![{}])", entries.join(", "))
}

fn serialize_arm(name: &str, variant: &Variant) -> String {
    let v = &variant.name;
    match &variant.kind {
        VariantKind::Unit => {
            format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),")
        }
        VariantKind::Tuple(1) => format!(
            "{name}::{v}(__b0) => ::serde::Value::Map(vec![(\"{v}\".to_string(), \
             ::serde::Serialize::to_value(__b0))]),"
        ),
        VariantKind::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__b{i}")).collect();
            let items: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b})"))
                .collect();
            format!(
                "{name}::{v}({}) => ::serde::Value::Map(vec![(\"{v}\".to_string(), \
                 ::serde::Value::Seq(vec![{}]))]),",
                binds.join(", "),
                items.join(", ")
            )
        }
        VariantKind::Named(fields) => {
            let inner = struct_map_expr(fields, "");
            format!(
                "{name}::{v} {{ {} }} => ::serde::Value::Map(vec![(\"{v}\".to_string(), \
                 {inner})]),",
                fields.join(", ")
            )
        }
    }
}

fn generate_deserialize(input: &Input) -> String {
    let name = &input.name;
    if let Some(proxy) = &input.attrs.from {
        // `#[serde(from = "Proxy")]`: deserialize the proxy, then convert.
        return format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) \
                     -> ::core::result::Result<Self, ::serde::de::Error> {{\n\
                     let __proxy: {proxy} = ::serde::Deserialize::from_value(__v)?;\n\
                     ::core::result::Result::Ok(::core::convert::From::from(__proxy))\n\
                 }}\n\
             }}"
        );
    }
    let body = match &input.data {
        Data::UnitStruct => format!("::core::result::Result::Ok({name})"),
        Data::TupleStruct(1) => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::de::element(__v, {i})?"))
                .collect();
            format!("::core::result::Result::Ok({name}({}))", items.join(", "))
        }
        Data::NamedStruct(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de::field(__v, \"{f}\")?"))
                .collect();
            format!(
                "::core::result::Result::Ok({name} {{ {} }})",
                items.join(", ")
            )
        }
        Data::Enum(variants) => deserialize_enum_body(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) \
                 -> ::core::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n\
         }}"
    )
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for variant in variants {
        let v = &variant.name;
        match &variant.kind {
            VariantKind::Unit => {
                unit_arms.push_str(&format!(
                    "\"{v}\" => ::core::result::Result::Ok({name}::{v}),\n"
                ));
            }
            VariantKind::Tuple(1) => {
                tagged_arms.push_str(&format!(
                    "\"{v}\" => ::core::result::Result::Ok({name}::{v}(\
                     ::serde::Deserialize::from_value(__inner)?)),\n"
                ));
            }
            VariantKind::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::de::element(__inner, {i})?"))
                    .collect();
                tagged_arms.push_str(&format!(
                    "\"{v}\" => ::core::result::Result::Ok({name}::{v}({})),\n",
                    items.join(", ")
                ));
            }
            VariantKind::Named(fields) => {
                let items: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{f}: ::serde::de::field(__inner, \"{f}\")?"))
                    .collect();
                tagged_arms.push_str(&format!(
                    "\"{v}\" => ::core::result::Result::Ok({name}::{v} {{ {} }}),\n",
                    items.join(", ")
                ));
            }
        }
    }
    format!(
        "match __v {{\n\
             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::core::result::Result::Err(::serde::de::Error::msg(\
                     format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
             }},\n\
             ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                 let (__tag, __inner) = &__m[0];\n\
                 match __tag.as_str() {{\n\
                     {tagged_arms}\
                     __other => ::core::result::Result::Err(::serde::de::Error::msg(\
                         format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }}\n\
             }},\n\
             __other => ::core::result::Result::Err(::serde::de::Error::msg(\
                 format!(\"unexpected value for enum {name}: {{__other:?}}\"))),\n\
         }}"
    )
}
