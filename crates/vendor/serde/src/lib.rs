//! A minimal, self-contained subset of the `serde` API.
//!
//! The real `serde` crate is unavailable in this offline workspace, so this
//! vendored stand-in provides exactly what the workspace uses: the
//! [`Serialize`] / [`Deserialize`] traits (value-based rather than
//! visitor-based), derive macros for structs and enums (including the
//! `#[serde(from = "…", into = "…")]` and `#[serde(rename = "…")]`
//! container attributes), and implementations for the primitive and
//! standard-library types that appear in the model crates.
//!
//! The data model is a single [`Value`] tree; `serde_json` renders it to
//! and from JSON text. Enum encodings follow serde's externally-tagged
//! convention, and maps are encoded as sequences of `[key, value]` pairs so
//! non-string keys round-trip losslessly.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::Hash;

/// The serialization data model: a self-describing value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / unit / `None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    UInt(u128),
    /// A signed integer.
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map (struct fields, enum tags).
    Map(Vec<(String, Value)>),
}

/// Types that can be turned into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the data model.
    ///
    /// # Errors
    ///
    /// [`de::Error`] when `value` does not have the expected shape.
    fn from_value(value: &Value) -> Result<Self, de::Error>;
}

/// Deserialization helpers and the error type.
pub mod de {
    use super::{Deserialize, Value};
    use std::fmt;

    /// A deserialization error with a human-readable message.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(String);

    impl Error {
        /// Creates an error from a message.
        pub fn msg(message: impl Into<String>) -> Self {
            Error(message.into())
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "deserialization error: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// Looks `name` up in a struct map and deserializes it. A missing key
    /// falls back to deserializing [`Value::Null`], which makes `Option`
    /// fields tolerant of omission.
    pub fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
        match value {
            Value::Map(entries) => match entries.iter().find(|(k, _)| k == name) {
                Some((_, v)) => T::from_value(v),
                None => T::from_value(&Value::Null)
                    .map_err(|_| Error::msg(format!("missing field `{name}`"))),
            },
            other => Err(Error::msg(format!(
                "expected a map for a struct field lookup, got {other:?}"
            ))),
        }
    }

    /// Deserializes element `index` of a sequence (tuple-struct fields).
    pub fn element<T: Deserialize>(value: &Value, index: usize) -> Result<T, Error> {
        match value {
            Value::Seq(items) => items
                .get(index)
                .ok_or_else(|| Error::msg(format!("sequence too short: no element {index}")))
                .and_then(T::from_value),
            other => Err(Error::msg(format!("expected a sequence, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

/// The identity deserialization: any value tree "is" a `Value`, which lets
/// callers parse arbitrary JSON (e.g. an exported trace) without a schema.
impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        Ok(value.clone())
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u128)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, de::Error> {
                match value {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| de::Error::msg("unsigned integer out of range")),
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| de::Error::msg("integer out of range")),
                    other => Err(de::Error::msg(format!(
                        "expected an unsigned integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, de::Error> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| de::Error::msg("integer out of range")),
                    Value::UInt(u) => i128::try_from(*u)
                        .ok()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| de::Error::msg("integer out of range")),
                    other => Err(de::Error::msg(format!(
                        "expected an integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, de::Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(de::Error::msg(format!(
                        "expected a number, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(de::Error::msg(format!("expected a bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(de::Error::msg(format!("expected a string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(de::Error::msg(format!(
                "expected a one-character string, got {other:?}"
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        T::from_value(value).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(de::Error::msg(format!(
                "expected a sequence, got {other:?}"
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, de::Error> {
                Ok(($(de::element::<$name>(value, $idx)?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(de::Error::msg(format!(
                "expected a sequence, got {other:?}"
            ))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Seq(items) => items
                .iter()
                .map(|pair| Ok((de::element::<K>(pair, 0)?, de::element::<V>(pair, 1)?)))
                .collect(),
            other => Err(de::Error::msg(format!(
                "expected a sequence of pairs, got {other:?}"
            ))),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Seq(items) => items
                .iter()
                .map(|pair| Ok((de::element::<K>(pair, 0)?, de::element::<V>(pair, 1)?)))
                .collect(),
            other => Err(de::Error::msg(format!(
                "expected a sequence of pairs, got {other:?}"
            ))),
        }
    }
}
