//! JSON text front-end for the in-tree serde subset.
//!
//! Provides [`to_string`] and [`from_str`] over [`serde::Value`]. The
//! encoding is plain JSON; integers print as decimal digits (including
//! 128-bit values), maps print as objects, and sequences as arrays.

use serde::{de, Deserialize, Serialize, Value};
use std::fmt;

/// A JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<de::Error> for Error {
    fn from(e: de::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Never fails for the supported data model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
///
/// # Errors
///
/// [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg("trailing characters after JSON value"));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------- writing

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest representation that round-trips.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected input at byte {}: {other:?}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else {
            text.parse::<u128>()
                .map(Value::UInt)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        }
    }
}
