//! A minimal Criterion-compatible benchmark harness.
//!
//! Implements the subset of the `criterion` API the workspace's benches
//! use: [`Criterion`] with `sample_size` / `warm_up_time` /
//! `measurement_time` builders, `bench_function`, `benchmark_group` with
//! `bench_with_input`, [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Timing is wall-clock via
//! [`std::time::Instant`]; results print as `name: mean ± spread` lines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark driver and configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Time spent warming up before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let config = self.clone();
        run_one(&config, name, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named parameter for per-input benchmarks.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter (the group provides the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        let config = self.criterion.clone();
        run_one(&config, &label, |b| f(b));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        let config = self.criterion.clone();
        run_one(&config, &label, |b| f(b, input));
        self
    }

    /// Ends the group (formatting parity with Criterion).
    pub fn finish(self) {}
}

/// Handed to each benchmark closure; call [`Bencher::iter`] with the code
/// under measurement.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measures `f`, collecting per-iteration timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            std::hint::black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Batch iterations so each sample is long enough to time reliably,
        // while staying within the measurement budget.
        let budget = self.measurement_time.as_secs_f64();
        let total_iters = (budget / per_iter.max(1e-9)).clamp(1.0, 1e9) as u64;
        let batch = (total_iters / self.sample_size as u64).max(1);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let dt = t0.elapsed().as_secs_f64();
            self.samples_ns.push(dt * 1e9 / batch as f64);
        }
    }
}

fn run_one<F: FnOnce(&mut Bencher)>(config: &Criterion, name: &str, f: F) {
    let mut bencher = Bencher {
        sample_size: config.sample_size,
        warm_up_time: config.warm_up_time,
        measurement_time: config.measurement_time,
        samples_ns: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples_ns.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let mean = bencher.samples_ns.iter().sum::<f64>() / bencher.samples_ns.len() as f64;
    let min = bencher
        .samples_ns
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let max = bencher.samples_ns.iter().copied().fold(0.0f64, f64::max);
    println!(
        "{name:<48} time: [{} {} {}]",
        format_ns(min),
        format_ns(mean),
        format_ns(max)
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function, Criterion-style. Both the simple
/// form `criterion_group!(name, target, …)` and the configured form
/// `criterion_group! { name = …; config = …; targets = … }` are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
