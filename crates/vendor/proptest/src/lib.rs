//! A minimal, deterministic subset of the `proptest` API.
//!
//! Supports what the workspace's property tests use: range strategies,
//! [`collection::vec`], `prop_map` / `prop_flat_map`, [`proptest!`] with an
//! optional `#![proptest_config(…)]` attribute, the `prop_assert*` macros,
//! `prop_assume!`, and the explicit [`test_runner::TestRunner`] /
//! `new_tree` / `current` flow. Generation is seeded and deterministic;
//! shrinking is not implemented (failures report the generated inputs via
//! the panic message of the underlying assertion).

use rand::rngs::StdRng;

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRunner;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// A recipe for generating values of one type.
    pub trait Strategy: Sized {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then generates from the
        /// strategy `f` derives from it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F> {
            FlatMap { inner: self, f }
        }

        /// Draws one value wrapped in a [`ValueTree`] (no shrinking).
        ///
        /// # Errors
        ///
        /// Never fails; the `Result` mirrors the real proptest signature.
        fn new_tree(&self, runner: &mut TestRunner) -> Result<Single<Self::Value>, String> {
            Ok(Single {
                value: self.generate(runner.rng()),
            })
        }
    }

    /// A generated value plus (in real proptest) its shrink state.
    pub trait ValueTree {
        /// The carried type.
        type Value;

        /// The current value.
        fn current(&self) -> Self::Value;
    }

    /// The trivial [`ValueTree`]: a single value, no shrinking.
    pub struct Single<T> {
        pub(crate) value: T,
    }

    impl<T: Clone> ValueTree for Single<T> {
        type Value = T;

        fn current(&self) -> T {
            self.value.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u16, u32, u64, usize);

    /// A strategy that always yields clones of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Element count for [`vec()`]: a fixed size or a size range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// A strategy producing `Vec`s of `element` with a size drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.size.min + 1 >= self.size.max_exclusive {
                self.size.min
            } else {
                rng.random_range(self.size.min..self.size.max_exclusive)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test execution: configuration and the runner that feeds strategies.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// How many cases to run per property.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Drives strategies with a deterministic RNG.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: StdRng,
    }

    impl Default for TestRunner {
        fn default() -> Self {
            TestRunner::new(ProptestConfig::default())
        }
    }

    impl TestRunner {
        /// A runner with the given configuration and a fixed seed
        /// (deterministic across runs).
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner {
                config,
                rng: StdRng::seed_from_u64(0x70_72_6F_70),
            }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The runner's RNG.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Re-export so strategies written against `proptest::sample` etc. have a
/// stable path for the RNG type.
pub type TestRng = StdRng;

/// Defines property tests. Each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]`-able function (the `#[test]` attribute is written
/// inside the macro, as in real proptest) running the body over generated
/// inputs. An optional leading `#![proptest_config(expr)]` sets the case
/// count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let mut __runner = $crate::test_runner::TestRunner::new(__config);
                for __case in 0..__runner.cases() {
                    let _ = __case;
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strategy), __runner.rng());
                    )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (plain `assert!` here).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (plain `assert_eq!` here).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (plain `assert_ne!` here).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}
