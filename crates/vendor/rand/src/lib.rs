//! A minimal, deterministic, self-contained subset of the `rand` API.
//!
//! Provides exactly what this workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], the [`RngExt`] extension trait
//! (`random`, `random_range`, `random_bool`), and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded
//! through SplitMix64 — high quality, fast, and fully reproducible.

/// Low-level random source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let state = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

/// Types samplable uniformly over their whole domain via [`RngExt::random`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range!(u16, u32, u64, usize);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// A uniform value over `T`'s standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rng: SampleRange<T>>(&mut self, range: Rng) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5usize..=9);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }
}
