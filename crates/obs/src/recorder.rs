//! [`FlightRecorder`] — a bounded ring-buffer probe sink — plus the
//! Chrome trace-event exporter and [`SpanLatencyProbe`], the per-span
//! histogram collector behind `bench_map`'s step-latency breakdown.
//!
//! The recorder keeps the last `capacity` events; older events are
//! dropped (and counted) so tracing a million-arrival run costs bounded
//! memory. Each [`Span`] whose [`Span::starts_lane`] is true opens a new
//! *lane* — the exporter maps lanes to Chrome `tid`s, so Perfetto shows
//! one row per admission with the step1→step4→buffer-sizing nesting
//! inside it.

use crate::hist::LatencyHistogram;
use crate::probe::{Counter, Probe, Span, N_COUNTERS, N_SPANS};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Instant;

/// What a recorded [`TraceEvent`] was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A [`Span`] region was entered.
    Begin(Span),
    /// The matching [`Span`] region was left.
    End(Span),
    /// A [`Counter`] advanced by the given delta.
    Count(Counter, u64),
}

/// One event captured by the [`FlightRecorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotone sequence number (survives ring-buffer drops, so gaps
    /// reveal how much history was lost).
    pub seq: u64,
    /// Nanoseconds since the recorder was created.
    pub ts_ns: u64,
    /// Trace lane — incremented every time a lane-starting span begins,
    /// 0 before the first one.
    pub lane: u32,
    /// What happened.
    pub kind: TraceEventKind,
}

struct Inner {
    events: VecDeque<TraceEvent>,
    seq: u64,
    lane: u32,
    dropped: u64,
}

/// A bounded ring buffer of probe events.
///
/// Install an `Rc<FlightRecorder>` with [`crate::install`] and every
/// span/counter emission on the thread lands here until the guard drops.
/// On a failed admission (or from a panic hook) [`FlightRecorder::dump`]
/// renders the last events as an indented span tree;
/// [`FlightRecorder::chrome_trace_json`] exports the whole buffer in
/// Chrome trace-event JSON for Perfetto.
pub struct FlightRecorder {
    epoch: Instant,
    capacity: usize,
    inner: RefCell<Inner>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("len", &inner.events.len())
            .field("dropped", &inner.dropped)
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder keeping at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            epoch: Instant::now(),
            capacity,
            inner: RefCell::new(Inner {
                events: VecDeque::with_capacity(capacity.min(4096)),
                seq: 0,
                lane: 0,
                dropped: 0,
            }),
        }
    }

    fn push(&self, kind: TraceEventKind) {
        let ts_ns = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut inner = self.inner.borrow_mut();
        if let TraceEventKind::Begin(span) = kind {
            if span.starts_lane() {
                inner.lane += 1;
            }
        }
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        let event = TraceEvent {
            seq: inner.seq,
            ts_ns,
            lane: inner.lane,
            kind,
        };
        inner.seq += 1;
        inner.events.push_back(event);
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.inner.borrow().events.len()
    }

    /// True when nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().events.is_empty()
    }

    /// Maximum events held before the oldest are dropped.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// Snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.borrow().events.iter().copied().collect()
    }

    /// Snapshot of the most recent `n` events, oldest first.
    pub fn last_events(&self, n: usize) -> Vec<TraceEvent> {
        let inner = self.inner.borrow();
        let skip = inner.events.len().saturating_sub(n);
        inner.events.iter().skip(skip).copied().collect()
    }

    /// Discards every buffered event (sequence numbers keep counting).
    pub fn clear(&self) {
        self.inner.borrow_mut().events.clear();
    }

    /// Number of unpaired span events in the buffer: `End`s whose `Begin`
    /// fell off the ring plus `Begin`s still open. A freshly traced,
    /// fully completed run with no drops has 0.
    pub fn balance_errors(&self) -> usize {
        let inner = self.inner.borrow();
        let mut stack: Vec<Span> = Vec::new();
        let mut errors = 0usize;
        for event in &inner.events {
            match event.kind {
                TraceEventKind::Begin(span) => stack.push(span),
                TraceEventKind::End(span) => {
                    if stack.last() == Some(&span) {
                        stack.pop();
                    } else {
                        errors += 1;
                    }
                }
                TraceEventKind::Count(..) => {}
            }
        }
        errors + stack.len()
    }

    /// Renders the last `n` events as an indented span tree — the
    /// post-mortem view dumped when an admission fails. Durations come
    /// from matched begin/end pairs; a span whose end (or begin) is
    /// outside the window renders without one.
    pub fn dump(&self, n: usize) -> String {
        let events = self.last_events(n);
        // Match begin/end pairs to attach durations to begins.
        let mut durations: Vec<Option<u64>> = vec![None; events.len()];
        let mut stack: Vec<(usize, Span)> = Vec::new();
        for (i, event) in events.iter().enumerate() {
            match event.kind {
                TraceEventKind::Begin(span) => stack.push((i, span)),
                TraceEventKind::End(span) => {
                    if let Some(&(begin_idx, top)) = stack.last() {
                        if top == span {
                            stack.pop();
                            durations[begin_idx] =
                                Some(event.ts_ns.saturating_sub(events[begin_idx].ts_ns));
                        }
                    }
                }
                TraceEventKind::Count(..) => {}
            }
        }
        let mut out = String::new();
        let dropped = self.dropped();
        if dropped > 0 {
            let _ = writeln!(out, "… {dropped} older event(s) dropped from the ring");
        }
        let mut depth = 0usize;
        for (i, event) in events.iter().enumerate() {
            match event.kind {
                TraceEventKind::Begin(span) => {
                    let indent = "  ".repeat(depth);
                    match durations[i] {
                        Some(dur) => {
                            let _ = writeln!(
                                out,
                                "{indent}{} [lane {}] {}",
                                span.name(),
                                event.lane,
                                format_ns(dur)
                            );
                        }
                        None => {
                            let _ = writeln!(
                                out,
                                "{indent}{} [lane {}] (unfinished)",
                                span.name(),
                                event.lane
                            );
                        }
                    }
                    depth += 1;
                }
                TraceEventKind::End(_) => depth = depth.saturating_sub(1),
                TraceEventKind::Count(counter, delta) => {
                    let indent = "  ".repeat(depth);
                    let _ = writeln!(out, "{indent}+{delta} {}", counter.name());
                }
            }
        }
        out
    }

    /// Exports the buffer as Chrome trace-event JSON (the format Perfetto
    /// and `chrome://tracing` load). Lanes become `tid`s, so each
    /// admission gets its own row. Only *matched* begin/end pairs are
    /// emitted — even if the ring dropped history, the exported trace is
    /// balanced by construction. Counter events export as `ph:"C"`.
    pub fn chrome_trace_json(&self) -> String {
        let events = self.events();
        // (ts_ns, seq, rendered event) so the output sorts by time with
        // the original emission order breaking ties (B before E at equal
        // timestamps).
        let mut rows: Vec<(u64, u64, String)> = Vec::new();
        let mut stack: Vec<(usize, Span)> = Vec::new();
        for (i, event) in events.iter().enumerate() {
            match event.kind {
                TraceEventKind::Begin(span) => stack.push((i, span)),
                TraceEventKind::End(span) => {
                    if let Some(&(begin_idx, top)) = stack.last() {
                        if top == span {
                            stack.pop();
                            let begin = &events[begin_idx];
                            rows.push((begin.ts_ns, begin.seq, phase_row(begin, "B", span)));
                            rows.push((event.ts_ns, event.seq, phase_row(event, "E", span)));
                        }
                    }
                }
                TraceEventKind::Count(counter, delta) => {
                    rows.push((
                        event.ts_ns,
                        event.seq,
                        format!(
                            "{{\"name\":\"{}\",\"cat\":\"rtsm\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{{\"value\":{}}}}}",
                            counter.name(),
                            format_ts_us(event.ts_ns),
                            event.lane,
                            delta
                        ),
                    ));
                }
            }
        }
        rows.sort_by_key(|&(ts, seq, _)| (ts, seq));
        let mut out = String::from("{\"traceEvents\":[");
        for (i, (_, _, row)) in rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(row);
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Chrome trace timestamps are floating-point microseconds; render the
/// integer nanosecond clock exactly as `µs.nnn`.
fn format_ts_us(ts_ns: u64) -> String {
    format!("{}.{:03}", ts_ns / 1000, ts_ns % 1000)
}

fn phase_row(event: &TraceEvent, ph: &str, span: Span) -> String {
    format!(
        "{{\"name\":\"{}\",\"cat\":\"rtsm\",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{}}}",
        span.name(),
        ph,
        format_ts_us(event.ts_ns),
        event.lane
    )
}

fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!(
            "{}.{:03}s",
            ns / 1_000_000_000,
            (ns % 1_000_000_000) / 1_000_000
        )
    } else if ns >= 1_000_000 {
        format!("{}.{:03}ms", ns / 1_000_000, (ns % 1_000_000) / 1_000)
    } else if ns >= 1_000 {
        format!("{}.{:03}µs", ns / 1_000, ns % 1_000)
    } else {
        format!("{ns}ns")
    }
}

impl Probe for FlightRecorder {
    fn span_begin(&self, span: Span) {
        self.push(TraceEventKind::Begin(span));
    }
    fn span_end(&self, span: Span) {
        self.push(TraceEventKind::End(span));
    }
    fn count(&self, counter: Counter, delta: u64) {
        self.push(TraceEventKind::Count(counter, delta));
    }
}

/// A probe that times every span into a per-span [`LatencyHistogram`]
/// and totals every counter — the collector behind `bench_map`'s
/// per-step latency breakdown. Nested spans are timed independently
/// (a `Map` sample includes the steps inside it).
#[derive(Default)]
pub struct SpanLatencyProbe {
    histograms: RefCell<[LatencyHistogram; N_SPANS]>,
    counters: RefCell<[u64; N_COUNTERS]>,
    stack: RefCell<Vec<(Span, Instant)>>,
}

impl std::fmt::Debug for SpanLatencyProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanLatencyProbe")
            .field("open_spans", &self.stack.borrow().len())
            .finish()
    }
}

impl SpanLatencyProbe {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The latency distribution observed for `span` so far.
    pub fn histogram(&self, span: Span) -> LatencyHistogram {
        self.histograms.borrow()[span.index()].clone()
    }

    /// Total delta accumulated for `counter` so far.
    pub fn counter_total(&self, counter: Counter) -> u64 {
        self.counters.borrow()[counter.index()]
    }
}

impl Probe for SpanLatencyProbe {
    fn span_begin(&self, span: Span) {
        self.stack.borrow_mut().push((span, Instant::now()));
    }

    fn span_end(&self, span: Span) {
        let mut stack = self.stack.borrow_mut();
        if let Some(&(top, started)) = stack.last() {
            if top == span {
                stack.pop();
                self.histograms.borrow_mut()[span.index()].record(started.elapsed());
            }
        }
    }

    fn count(&self, counter: Counter, delta: u64) {
        self.counters.borrow_mut()[counter.index()] += delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{count, install, span};
    use std::rc::Rc;

    fn record_admission(recorder: &Rc<FlightRecorder>) {
        let _guard = install(recorder.clone());
        let _admission = span(Span::Admission);
        let _map = span(Span::Map);
        {
            let _s = span(Span::Step1);
        }
        {
            let _s = span(Span::Step4);
            let _b = span(Span::BufferSizing);
            count(Counter::BufferProbe, 2);
            count(Counter::BufferMemoHit, 1);
        }
        count(Counter::TxCommit, 1);
    }

    #[test]
    fn records_balanced_lanes_and_events() {
        let recorder = Rc::new(FlightRecorder::new(1024));
        record_admission(&recorder);
        record_admission(&recorder);
        assert_eq!(recorder.balance_errors(), 0);
        assert_eq!(recorder.dropped(), 0);
        let events = recorder.events();
        assert_eq!(events.len(), 2 * 13);
        // Every event of the second admission is on lane 2.
        assert!(events[13..].iter().all(|e| e.lane == 2));
        assert!(events[..13].iter().all(|e| e.lane == 1));
        // Sequence numbers are dense when nothing was dropped.
        assert!(events.iter().enumerate().all(|(i, e)| e.seq == i as u64));
    }

    #[test]
    fn ring_drops_oldest_and_counts_them() {
        let recorder = Rc::new(FlightRecorder::new(5));
        record_admission(&recorder); // 13 events into a 5-slot ring
        assert_eq!(recorder.len(), 5);
        assert_eq!(recorder.dropped(), 8);
        assert_eq!(recorder.last_events(2).len(), 2);
        // Ends whose begins were evicted count as balance errors …
        assert!(recorder.balance_errors() > 0);
        // … but the Chrome export only emits matched pairs.
        let json = recorder.chrome_trace_json();
        let begins = json.matches("\"ph\":\"B\"").count();
        let ends = json.matches("\"ph\":\"E\"").count();
        assert_eq!(begins, ends);
    }

    fn map_field<'a>(value: &'a serde::Value, name: &str) -> &'a serde::Value {
        let serde::Value::Map(entries) = value else {
            panic!("expected a JSON object, got {value:?}");
        };
        &entries
            .iter()
            .find(|(k, _)| k == name)
            .unwrap_or_else(|| panic!("missing field {name}"))
            .1
    }

    fn str_field<'a>(value: &'a serde::Value, name: &str) -> &'a str {
        match map_field(value, name) {
            serde::Value::Str(s) => s,
            other => panic!("field {name} is not a string: {other:?}"),
        }
    }

    #[test]
    fn chrome_trace_is_valid_and_balanced() {
        let recorder = Rc::new(FlightRecorder::new(1024));
        record_admission(&recorder);
        let json = recorder.chrome_trace_json();
        let value: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let serde::Value::Seq(events) = map_field(&value, "traceEvents") else {
            panic!("traceEvents is not an array");
        };
        // 5 spans × (B+E) + 3 counters.
        assert_eq!(events.len(), 13);
        let mut stack: Vec<&str> = Vec::new();
        for e in events {
            match str_field(e, "ph") {
                "B" => stack.push(str_field(e, "name")),
                "E" => assert_eq!(stack.pop(), Some(str_field(e, "name"))),
                "C" => assert!(matches!(
                    map_field(map_field(e, "args"), "value"),
                    serde::Value::UInt(_)
                )),
                other => panic!("unexpected phase {other}"),
            }
        }
        assert!(stack.is_empty(), "unbalanced spans in export");
    }

    #[test]
    fn dump_renders_an_indented_tree() {
        let recorder = Rc::new(FlightRecorder::new(1024));
        record_admission(&recorder);
        let tree = recorder.dump(64);
        let lines: Vec<&str> = tree.lines().collect();
        assert!(lines[0].starts_with("admission [lane 1]"));
        assert!(lines[1].starts_with("  map"));
        assert!(lines[2].starts_with("    step1"));
        assert!(tree.contains("+2 buffer_probe"));
        assert!(tree.contains("+1 tx_commit"));
    }

    #[test]
    fn span_latency_probe_times_every_span() {
        let probe = Rc::new(SpanLatencyProbe::new());
        {
            let _guard = install(probe.clone());
            for _ in 0..3 {
                let _map = span(Span::Map);
                let _s1 = span(Span::Step1);
            }
            count(Counter::TxAbort, 2);
        }
        assert_eq!(probe.histogram(Span::Map).count(), 3);
        assert_eq!(probe.histogram(Span::Step1).count(), 3);
        assert_eq!(probe.histogram(Span::Step2).count(), 0);
        assert_eq!(probe.counter_total(Counter::TxAbort), 2);
        // Map encloses Step1, so its samples cannot be smaller.
        assert!(probe.histogram(Span::Map).total_ns() >= probe.histogram(Span::Step1).total_ns());
    }
}
