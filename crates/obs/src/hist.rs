//! [`LatencyHistogram`] — log2-bucketed integer-nanosecond latency
//! distribution, HdrHistogram-style.
//!
//! Bucket `i` holds samples whose value has highest set bit `i`, i.e. the
//! range `[2^i, 2^(i+1))` (bucket 0 holds 0 and 1 ns), so recording is a
//! `leading_zeros` and buckets from independent runs merge by addition.
//! Percentiles are read from the bucket upper bound clamped into the
//! observed `[min, max]`, so every reported figure is deterministic given
//! the recorded samples.
//!
//! Wall-clock latency can never be reproducible, so histograms live
//! strictly *outside* deterministic reports: `SimRun::wall` sits next to
//! — never inside — `SimReport`, and the experiment harness serializes
//! the merged histograms only into the explicitly non-deterministic
//! `wall` section when asked to.

use serde::{de, Deserialize, Serialize, Value};
use std::time::Duration;

/// Number of log2 buckets — one per possible highest set bit of a `u64`.
pub const N_BUCKETS: usize = 64;

/// A mergeable latency distribution over integer nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    count: u64,
    total_ns: u64,
    min_ns: u64, // u64::MAX while empty, so min() folds correctly on merge
    max_ns: u64,
    buckets: [u64; N_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; N_BUCKETS],
        }
    }

    const fn bucket_of(ns: u64) -> usize {
        if ns == 0 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        }
    }

    const fn bucket_upper(index: usize) -> u64 {
        if index >= N_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << (index + 1)) - 1
        }
    }

    /// Records one sample of `ns` nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.buckets[Self::bucket_of(ns)] += 1;
    }

    /// Records one sample (saturating at `u64::MAX` ns ≈ 584 years).
    pub fn record(&mut self, elapsed: Duration) {
        self.record_ns(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Folds `other`'s samples into `self` — bucket-wise addition, so
    /// merging per-trial histograms equals recording every sample into
    /// one histogram (up to the saturating total).
    pub fn merge(&mut self, other: &Self) {
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples, ns (saturating).
    pub fn total_ns(&self) -> u64 {
        self.total_ns
    }

    /// Smallest sample, ns (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Largest sample, ns.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean sample, ns — 0 when nothing was recorded (never a division
    /// by zero).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// The value at or below which `pct`% of samples fall, read from the
    /// log2 buckets (upper bound of the rank's bucket, clamped into the
    /// observed `[min, max]`). `pct` is clamped to 1–100; 0 when empty.
    pub fn percentile_ns(&self, pct: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let pct = pct.clamp(1, 100);
        let rank = self.count.saturating_mul(pct).div_ceil(100);
        let rank = rank.clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return Self::bucket_upper(i).clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median sample, ns (log2-bucket resolution).
    pub fn p50_ns(&self) -> u64 {
        self.percentile_ns(50)
    }

    /// 90th-percentile sample, ns (log2-bucket resolution).
    pub fn p90_ns(&self) -> u64 {
        self.percentile_ns(90)
    }

    /// 99th-percentile sample, ns (log2-bucket resolution).
    pub fn p99_ns(&self) -> u64 {
        self.percentile_ns(99)
    }

    /// Occupied buckets as `(bucket_index, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i as u32, n))
            .collect()
    }
}

/// Serialized as a map of summary figures plus the sparse occupied
/// buckets (`[bucket_index, count]` pairs). The p50/p90/p99 entries are
/// derived conveniences for human readers; deserialization recomputes
/// them from the buckets.
impl Serialize for LatencyHistogram {
    fn to_value(&self) -> Value {
        let buckets: Vec<Value> = self
            .nonzero_buckets()
            .into_iter()
            .map(|(i, n)| Value::Seq(vec![Value::UInt(u128::from(i)), Value::UInt(u128::from(n))]))
            .collect();
        Value::Map(vec![
            ("count".to_string(), Value::UInt(u128::from(self.count))),
            (
                "total_ns".to_string(),
                Value::UInt(u128::from(self.total_ns)),
            ),
            ("min_ns".to_string(), Value::UInt(u128::from(self.min_ns()))),
            ("max_ns".to_string(), Value::UInt(u128::from(self.max_ns))),
            (
                "mean_ns".to_string(),
                Value::UInt(u128::from(self.mean_ns())),
            ),
            ("p50_ns".to_string(), Value::UInt(u128::from(self.p50_ns()))),
            ("p90_ns".to_string(), Value::UInt(u128::from(self.p90_ns()))),
            ("p99_ns".to_string(), Value::UInt(u128::from(self.p99_ns()))),
            ("buckets".to_string(), Value::Seq(buckets)),
        ])
    }
}

impl Deserialize for LatencyHistogram {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        let count: u64 = de::field(value, "count")?;
        if count == 0 {
            return Ok(LatencyHistogram::new());
        }
        let mut hist = LatencyHistogram {
            count,
            total_ns: de::field(value, "total_ns")?,
            min_ns: de::field(value, "min_ns")?,
            max_ns: de::field(value, "max_ns")?,
            buckets: [0; N_BUCKETS],
        };
        let pairs: Vec<Vec<u64>> = de::field(value, "buckets")?;
        for pair in pairs {
            let [index, n] = pair[..] else {
                return Err(de::Error::msg("histogram buckets must be [index, count]"));
            };
            let slot = hist
                .buckets
                .get_mut(index as usize)
                .ok_or_else(|| de::Error::msg(format!("bucket index {index} out of range")))?;
            *slot = n;
        }
        Ok(hist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0, "zero count must not divide");
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.p50_ns(), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn records_land_in_log2_buckets() {
        let mut h = LatencyHistogram::new();
        for ns in [0, 1, 2, 3, 4, 1000, 1024] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 1024);
        let buckets = h.nonzero_buckets();
        // 0,1 → bucket 0; 2,3 → bucket 1; 4 → bucket 2; 1000 → bucket 9;
        // 1024 → bucket 10.
        assert_eq!(buckets, vec![(0, 2), (1, 2), (2, 1), (9, 1), (10, 1)]);
    }

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let mut h = LatencyHistogram::new();
        for ns in 1..=1000u64 {
            h.record_ns(ns * 17);
        }
        let (p50, p90, p99) = (h.p50_ns(), h.p90_ns(), h.p99_ns());
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p99 <= h.max_ns());
        assert!(p50 >= h.min_ns());
        assert_eq!(h.percentile_ns(100), h.max_ns());
    }

    #[test]
    fn merge_equals_recording_everything_once() {
        let samples_a = [3u64, 900, 40_000, 7];
        let samples_b = [1u64, 65_000, 12];
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for &s in &samples_a {
            a.record_ns(s);
            all.record_ns(s);
        }
        for &s in &samples_b {
            b.record_ns(s);
            all.record_ns(s);
        }
        a.merge(&b);
        assert_eq!(a, all);
        // Merging an empty histogram changes nothing.
        a.merge(&LatencyHistogram::new());
        assert_eq!(a, all);
    }

    #[test]
    fn serialization_round_trips() {
        let mut h = LatencyHistogram::new();
        for ns in [5u64, 5, 80, 3_000_000, 12] {
            h.record_ns(ns);
        }
        let back = LatencyHistogram::from_value(&h.to_value()).expect("round trip");
        assert_eq!(back, h);
        let empty = LatencyHistogram::new();
        let back = LatencyHistogram::from_value(&empty.to_value()).expect("round trip");
        assert_eq!(back, empty);
        assert_eq!(back.merge_probe(), u64::MAX);
    }

    impl LatencyHistogram {
        /// Test-only: the raw min sentinel survives the round trip, so
        /// later merges still fold minima correctly.
        fn merge_probe(&self) -> u64 {
            self.min_ns
        }
    }
}
