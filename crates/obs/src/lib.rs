//! # rtsm_obs — observability for the run-time admission path
//!
//! The paper's mapper lives or dies by per-arrival admission latency, so
//! this crate makes the hot path *observable* without making it
//! *different*: every instrumentation point is a thread-local dispatch
//! that costs one borrow-and-branch when no probe is installed, and no
//! probe may influence a mapping decision — enabling any probe leaves
//! every fixed-seed deterministic report byte-identical (the workspace's
//! cardinal no-observer-effect invariant, gated by proptest and CI).
//!
//! Three layers:
//!
//! * [`probe`] — the [`Probe`] trait plus the emission points the model
//!   crates call ([`span_begin`]/[`span_end`]/[`count`], or the RAII
//!   [`span`]). Instrumented regions are enumerated by [`Span`] (mapper
//!   steps 1–4, buffer sizing, admission/remap/switch, migration-plan
//!   evaluation) and [`Counter`] (buffer-sizing probes and memo hits,
//!   transaction commits and aborts). With no probe installed every
//!   emission is a no-op and allocates nothing.
//! * [`hist`] — [`LatencyHistogram`], a log2-bucketed integer-nanosecond
//!   histogram (HdrHistogram-style) with p50/p90/p99/max and mergeable
//!   buckets. Wall-clock numbers are inherently non-deterministic, so
//!   histograms stay strictly *outside* deterministic reports, exactly
//!   like the mean-only `WallStats` they replace.
//! * [`recorder`] — [`FlightRecorder`], a bounded ring buffer of probe
//!   events that can dump the last N events when an admission goes wrong,
//!   render a human-readable span tree, and export a Chrome trace-event
//!   JSON file (`simulate --trace-out trace.json`) that opens in
//!   Perfetto with one lane per admission. [`SpanLatencyProbe`] times
//!   every span into per-span histograms — the per-step latency
//!   breakdown `bench_map` reports.
//!
//! # Example
//!
//! ```
//! use rtsm_obs::{self as obs, FlightRecorder, Span};
//! use std::rc::Rc;
//!
//! let recorder = Rc::new(FlightRecorder::new(1024));
//! {
//!     let _probe = obs::install(recorder.clone());
//!     let _span = obs::span(Span::Map);
//!     obs::count(obs::Counter::BufferProbe, 1);
//! } // guard drop uninstalls the probe
//! assert_eq!(recorder.len(), 3); // begin + counter + end
//! assert_eq!(recorder.balance_errors(), 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hist;
pub mod probe;
pub mod recorder;

pub use hist::{LatencyHistogram, N_BUCKETS};
pub use probe::{
    count, enabled, install, span, span_begin, span_end, Counter, NoopProbe, Probe, ProbeGuard,
    Span, SpanGuard, N_COUNTERS, N_SPANS,
};
pub use recorder::{FlightRecorder, SpanLatencyProbe, TraceEvent, TraceEventKind};
