//! The [`Probe`] trait and the thread-local emission points.
//!
//! Instrumented crates call the free functions ([`span_begin`],
//! [`span_end`], [`count`], or the RAII [`span`]); whatever probe the
//! *caller* installed with [`install`] receives the events. The handle is
//! thread-local, so the experiment harness's worker threads never share a
//! probe, and a thread without one pays a single borrow-and-branch per
//! emission point — no allocation, no virtual dispatch.
//!
//! Probes observe, they never decide: an implementation must not call
//! back into instrumented code or [`install`] from inside a callback.

use std::cell::RefCell;
use std::rc::Rc;

/// Number of distinct [`Span`] kinds, for fixed-size per-span tables.
pub const N_SPANS: usize = 12;

/// Number of distinct [`Counter`] kinds, for fixed-size tables.
pub const N_COUNTERS: usize = 6;

/// The instrumented regions of the admission path. Span begin/end events
/// always come in balanced, properly nested pairs per thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Span {
    /// `RuntimeManager::start` — one admission attempt end to end
    /// (map + transactional commit). Opens a new trace lane.
    Admission,
    /// `RuntimeManager::remap` — transactional re-map of a running
    /// application under constraints. Opens a new trace lane.
    Remap,
    /// `RuntimeManager::switch` — transactional mode switch to a new
    /// specification. Opens a new trace lane.
    Switch,
    /// One migration-plan evaluation inside
    /// `RuntimeManager::start_with_reconfiguration` (staged, scored,
    /// aborted).
    PlanEval,
    /// One `SpatialMapper` map call — the four-step refinement loop.
    Map,
    /// Step 1: implementation assignment + first-fit tile packing.
    Step1,
    /// Step 2: local-search tile-assignment improvement.
    Step2,
    /// Step 3: channel-to-path routing.
    Step3,
    /// Step 4: QoS constraint check (CSDF composition + analysis).
    Step4,
    /// Buffer-capacity computation inside step 4 (`size_buffers`).
    BufferSizing,
    /// `RuntimeManager::evacuate` — one failure's recovery end to end
    /// (victim identification, constrained re-maps, evictions). Opens a
    /// new trace lane.
    Evacuate,
    /// One template-library lookup: matching cached mapping shapes
    /// against the current platform state (anchor enumeration,
    /// translation/rotation, transactional fit check). Covers only the
    /// instantiation attempt, not the full-heuristic fallback.
    TemplateMatch,
}

impl Span {
    /// All spans, in [`Span::index`] order.
    pub const ALL: [Span; N_SPANS] = [
        Span::Admission,
        Span::Remap,
        Span::Switch,
        Span::PlanEval,
        Span::Map,
        Span::Step1,
        Span::Step2,
        Span::Step3,
        Span::Step4,
        Span::BufferSizing,
        Span::Evacuate,
        Span::TemplateMatch,
    ];

    /// Dense index of this span, `0..N_SPANS`.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable display name (also the Chrome trace event name).
    pub const fn name(self) -> &'static str {
        match self {
            Span::Admission => "admission",
            Span::Remap => "remap",
            Span::Switch => "switch",
            Span::PlanEval => "plan_eval",
            Span::Map => "map",
            Span::Step1 => "step1",
            Span::Step2 => "step2",
            Span::Step3 => "step3",
            Span::Step4 => "step4",
            Span::BufferSizing => "buffer_sizing",
            Span::Evacuate => "evacuate",
            Span::TemplateMatch => "template_match",
        }
    }

    /// Whether beginning this span opens a new trace lane — one lane per
    /// admission-path entry, so Perfetto shows each arrival on its own
    /// row.
    pub const fn starts_lane(self) -> bool {
        matches!(
            self,
            Span::Admission | Span::Remap | Span::Switch | Span::Evacuate
        )
    }
}

/// Counted events on the admission path (no duration, only occurrence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// A buffer-sizing feasibility probe actually simulated.
    BufferProbe,
    /// A buffer-sizing feasibility probe answered from the memo table.
    BufferMemoHit,
    /// A `PlatformTransaction` committed.
    TxCommit,
    /// A `PlatformTransaction` aborted (explicitly or by drop).
    TxAbort,
    /// An admission served by instantiating a cached mapping shape — the
    /// template hit path, which skips the four-step heuristic entirely.
    TemplateHit,
    /// An admission that found no instantiable shape and fell back to
    /// the full heuristic (whose result is learned into the library).
    TemplateMiss,
}

impl Counter {
    /// All counters, in [`Counter::index`] order.
    pub const ALL: [Counter; N_COUNTERS] = [
        Counter::BufferProbe,
        Counter::BufferMemoHit,
        Counter::TxCommit,
        Counter::TxAbort,
        Counter::TemplateHit,
        Counter::TemplateMiss,
    ];

    /// Dense index of this counter, `0..N_COUNTERS`.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable display name (also the Chrome trace counter name).
    pub const fn name(self) -> &'static str {
        match self {
            Counter::BufferProbe => "buffer_probe",
            Counter::BufferMemoHit => "buffer_memo_hit",
            Counter::TxCommit => "tx_commit",
            Counter::TxAbort => "tx_abort",
            Counter::TemplateHit => "template_hit",
            Counter::TemplateMiss => "template_miss",
        }
    }
}

/// A sink for instrumentation events. Implementations must be pure
/// observers: decisions, counters, and reports of the instrumented code
/// must be identical whether or not a probe is installed.
pub trait Probe {
    /// A [`Span`] region was entered.
    fn span_begin(&self, span: Span);
    /// The matching [`Span`] region was left.
    fn span_end(&self, span: Span);
    /// A [`Counter`] advanced by `delta`.
    fn count(&self, counter: Counter, delta: u64);
}

/// The do-nothing probe: every callback is empty. Installing it measures
/// the pure dispatch overhead of the instrumentation points (what
/// `bench_map` gates at ≤ 3%).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopProbe;

impl Probe for NoopProbe {
    fn span_begin(&self, _span: Span) {}
    fn span_end(&self, _span: Span) {}
    fn count(&self, _counter: Counter, _delta: u64) {}
}

thread_local! {
    static CURRENT: RefCell<Option<Rc<dyn Probe>>> = const { RefCell::new(None) };
}

/// Installs `probe` as this thread's probe until the returned guard
/// drops; the previously installed probe (if any) is restored then.
#[must_use = "dropping the guard uninstalls the probe immediately"]
pub fn install(probe: Rc<dyn Probe>) -> ProbeGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(probe));
    ProbeGuard { prev }
}

/// Uninstalls the probe [`install`] set up, restoring its predecessor.
pub struct ProbeGuard {
    prev: Option<Rc<dyn Probe>>,
}

impl std::fmt::Debug for ProbeGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProbeGuard")
            .field("restores_previous", &self.prev.is_some())
            .finish()
    }
}

impl Drop for ProbeGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            *c.borrow_mut() = self.prev.take();
        });
    }
}

/// True when this thread currently has a probe installed.
pub fn enabled() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

#[inline]
fn with_probe(f: impl FnOnce(&dyn Probe)) {
    CURRENT.with(|c| {
        if let Some(p) = c.borrow().as_deref() {
            f(p);
        }
    });
}

/// Emits a span-begin event to the installed probe, if any.
#[inline]
pub fn span_begin(span: Span) {
    with_probe(|p| p.span_begin(span));
}

/// Emits a span-end event to the installed probe, if any.
#[inline]
pub fn span_end(span: Span) {
    with_probe(|p| p.span_end(span));
}

/// Emits a counter event to the installed probe, if any.
#[inline]
pub fn count(counter: Counter, delta: u64) {
    with_probe(|p| p.count(counter, delta));
}

/// Begins `span` now and ends it when the returned guard drops — the
/// emission form the instrumented crates use, so early returns and `?`
/// cannot unbalance the trace.
#[must_use = "dropping the guard ends the span immediately"]
#[inline]
pub fn span(span: Span) -> SpanGuard {
    span_begin(span);
    SpanGuard(span)
}

/// Ends the span [`span`] began, on drop.
#[derive(Debug)]
pub struct SpanGuard(Span);

impl Drop for SpanGuard {
    fn drop(&mut self) {
        span_end(self.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[derive(Default)]
    struct Tally {
        begins: Cell<u64>,
        ends: Cell<u64>,
        counts: Cell<u64>,
    }

    impl Probe for Tally {
        fn span_begin(&self, _span: Span) {
            self.begins.set(self.begins.get() + 1);
        }
        fn span_end(&self, _span: Span) {
            self.ends.set(self.ends.get() + 1);
        }
        fn count(&self, _counter: Counter, delta: u64) {
            self.counts.set(self.counts.get() + delta);
        }
    }

    #[test]
    fn events_reach_only_the_installed_probe() {
        let tally = Rc::new(Tally::default());
        span_begin(Span::Map); // no probe: dropped
        {
            let _guard = install(tally.clone());
            assert!(enabled());
            let _span = span(Span::Map);
            count(Counter::TxCommit, 3);
        }
        assert!(!enabled());
        span_end(Span::Map); // no probe again
        assert_eq!(tally.begins.get(), 1);
        assert_eq!(tally.ends.get(), 1);
        assert_eq!(tally.counts.get(), 3);
    }

    #[test]
    fn nested_installs_restore_the_outer_probe() {
        let outer = Rc::new(Tally::default());
        let inner = Rc::new(Tally::default());
        let _outer_guard = install(outer.clone());
        {
            let _inner_guard = install(inner.clone());
            span_begin(Span::Step1);
        }
        span_begin(Span::Step2);
        assert_eq!(inner.begins.get(), 1);
        assert_eq!(outer.begins.get(), 1);
    }

    #[test]
    fn span_indices_are_dense_and_names_distinct() {
        for (i, s) in Span::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        let mut names: Vec<&str> = Span::ALL.iter().map(|s| s.name()).collect();
        names.extend(Counter::ALL.iter().map(|c| c.name()));
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n, "span/counter names must be distinct");
    }
}
