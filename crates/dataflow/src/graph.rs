//! The CSDF graph: actors, channels, initial tokens, and capacities.

use crate::error::DataflowError;
use crate::phase::PhaseVec;
use crate::rational::Ratio;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an actor inside a [`CsdfGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ActorId(pub(crate) usize);

impl ActorId {
    /// Index of this actor in the graph's actor list.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Identifier of a channel inside a [`CsdfGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChannelId(pub(crate) usize);

impl ChannelId {
    /// Index of this channel in the graph's channel list.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A CSDF actor: a name, per-phase worst-case execution times, and a clock
/// period translating cycles into time units.
///
/// Actors are sequential (no auto-concurrency): a firing must complete before
/// the next may start, matching a processing element executing one
/// implementation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActorSpec {
    /// Human-readable name (used in traces, DOT output and error messages).
    pub name: String,
    /// Worst-case execution time per phase, in clock cycles.
    pub wcet: PhaseVec,
    /// Duration of one clock cycle in abstract time units (e.g. picoseconds).
    pub cycle_time: u64,
}

impl ActorSpec {
    /// Number of phases in this actor's cyclo-static cycle.
    pub fn n_phases(&self) -> usize {
        self.wcet.len()
    }

    /// Execution time of phase `phase` in time units.
    pub fn phase_duration(&self, phase: usize) -> u64 {
        self.wcet.get(phase) * self.cycle_time
    }

    /// Total execution time of one full cyclo-static cycle in time units.
    pub fn cycle_duration(&self) -> u64 {
        self.wcet.total() * self.cycle_time
    }
}

/// A point-to-point FIFO channel between two actors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Channel {
    /// Producing actor.
    pub src: ActorId,
    /// Consuming actor.
    pub dst: ActorId,
    /// Tokens produced by `src` per phase (length = `src` phase count).
    pub prod: PhaseVec,
    /// Tokens consumed by `dst` per phase (length = `dst` phase count).
    pub cons: PhaseVec,
    /// Tokens present on the channel before execution starts.
    pub initial_tokens: u64,
    /// Buffer capacity in tokens; `None` means unbounded.
    ///
    /// A bounded channel behaves like the paper's Figure 3 back-edges: the
    /// producer blocks while the buffer lacks space for a phase's production.
    pub capacity: Option<u64>,
}

/// A cyclo-static dataflow graph.
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsdfGraph {
    actors: Vec<ActorSpec>,
    channels: Vec<Channel>,
}

impl CsdfGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        CsdfGraph::default()
    }

    /// Adds an actor with the given name, per-phase WCETs, and clock period
    /// (time units per cycle), returning its id.
    pub fn add_actor(
        &mut self,
        name: impl Into<String>,
        wcet: PhaseVec,
        cycle_time: u64,
    ) -> ActorId {
        self.actors.push(ActorSpec {
            name: name.into(),
            wcet,
            cycle_time,
        });
        ActorId(self.actors.len() - 1)
    }

    /// Adds an unbounded channel with no initial tokens.
    ///
    /// # Errors
    ///
    /// Returns [`DataflowError::PhaseMismatch`] if a rate vector's length does
    /// not match its actor's phase count, or [`DataflowError::UnknownActor`]
    /// for dangling endpoints.
    pub fn add_channel(
        &mut self,
        src: ActorId,
        dst: ActorId,
        prod: PhaseVec,
        cons: PhaseVec,
    ) -> Result<ChannelId, DataflowError> {
        self.add_channel_full(src, dst, prod, cons, 0, None)
    }

    /// Adds a channel with explicit initial tokens and capacity.
    ///
    /// # Errors
    ///
    /// Same as [`CsdfGraph::add_channel`].
    pub fn add_channel_full(
        &mut self,
        src: ActorId,
        dst: ActorId,
        prod: PhaseVec,
        cons: PhaseVec,
        initial_tokens: u64,
        capacity: Option<u64>,
    ) -> Result<ChannelId, DataflowError> {
        let src_spec = self
            .actors
            .get(src.0)
            .ok_or(DataflowError::UnknownActor(src.0))?;
        if prod.len() != src_spec.n_phases() {
            return Err(DataflowError::PhaseMismatch {
                actor: src_spec.name.clone(),
                actor_phases: src_spec.n_phases(),
                rate_phases: prod.len(),
            });
        }
        let dst_spec = self
            .actors
            .get(dst.0)
            .ok_or(DataflowError::UnknownActor(dst.0))?;
        if cons.len() != dst_spec.n_phases() {
            return Err(DataflowError::PhaseMismatch {
                actor: dst_spec.name.clone(),
                actor_phases: dst_spec.n_phases(),
                rate_phases: cons.len(),
            });
        }
        self.channels.push(Channel {
            src,
            dst,
            prod,
            cons,
            initial_tokens,
            capacity,
        });
        Ok(ChannelId(self.channels.len() - 1))
    }

    /// Number of actors.
    pub fn n_actors(&self) -> usize {
        self.actors.len()
    }

    /// Number of channels.
    pub fn n_channels(&self) -> usize {
        self.channels.len()
    }

    /// The actor with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an id of this graph.
    pub fn actor(&self, id: ActorId) -> &ActorSpec {
        &self.actors[id.0]
    }

    /// The channel with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an id of this graph.
    pub fn channel(&self, id: ChannelId) -> &Channel {
        &self.channels[id.0]
    }

    /// Mutable access to a channel (e.g. to set capacities during buffer
    /// sizing).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an id of this graph.
    pub fn channel_mut(&mut self, id: ChannelId) -> &mut Channel {
        &mut self.channels[id.0]
    }

    /// Iterates over `(id, actor)` pairs.
    pub fn actors(&self) -> impl Iterator<Item = (ActorId, &ActorSpec)> {
        self.actors.iter().enumerate().map(|(i, a)| (ActorId(i), a))
    }

    /// Iterates over `(id, channel)` pairs.
    pub fn channels(&self) -> impl Iterator<Item = (ChannelId, &Channel)> {
        self.channels
            .iter()
            .enumerate()
            .map(|(i, c)| (ChannelId(i), c))
    }

    /// Looks an actor up by name (first match).
    pub fn actor_by_name(&self, name: &str) -> Option<ActorId> {
        self.actors.iter().position(|a| a.name == name).map(ActorId)
    }

    /// Channels whose consumer is `actor`.
    pub fn inputs_of(&self, actor: ActorId) -> impl Iterator<Item = (ChannelId, &Channel)> {
        self.channels().filter(move |(_, c)| c.dst == actor)
    }

    /// Channels whose producer is `actor`.
    pub fn outputs_of(&self, actor: ActorId) -> impl Iterator<Item = (ChannelId, &Channel)> {
        self.channels().filter(move |(_, c)| c.src == actor)
    }

    /// Computes the cycle-repetition vector: for each actor, the number of
    /// full cyclo-static cycles it completes per graph iteration.
    ///
    /// The entries are the smallest positive integers solving the balance
    /// equations `r_src · total(prod) = r_dst · total(cons)` for every
    /// channel. Actors in different weakly-connected components are scaled
    /// independently (each component's smallest entry set is minimal).
    ///
    /// # Errors
    ///
    /// * [`DataflowError::Empty`] for a graph without actors.
    /// * [`DataflowError::Inconsistent`] if the balance equations only have
    ///   the trivial solution.
    pub fn repetition_vector(&self) -> Result<Vec<u64>, DataflowError> {
        if self.actors.is_empty() {
            return Err(DataflowError::Empty("graph"));
        }
        let n = self.actors.len();
        let mut rate: Vec<Option<Ratio>> = vec![None; n];
        // Adjacency over channels for BFS.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (ci, ch) in self.channels.iter().enumerate() {
            adj[ch.src.0].push(ci);
            adj[ch.dst.0].push(ci);
        }
        for start in 0..n {
            if rate[start].is_some() {
                continue;
            }
            rate[start] = Some(Ratio::ONE);
            let mut stack = vec![start];
            let mut component = vec![start];
            while let Some(a) = stack.pop() {
                let ra = rate[a].expect("visited actors have rates");
                for &ci in &adj[a] {
                    let ch = &self.channels[ci];
                    let prod = ch.prod.total() as i128;
                    let cons = ch.cons.total() as i128;
                    // Channels that move no tokens impose no constraint.
                    if prod == 0 && cons == 0 {
                        continue;
                    }
                    if prod == 0 || cons == 0 {
                        return Err(DataflowError::Inconsistent {
                            detail: format!(
                                "channel {} ↦ {} moves tokens in one direction only \
                                 (prod {prod}, cons {cons})",
                                self.actors[ch.src.0].name, self.actors[ch.dst.0].name
                            ),
                        });
                    }
                    let (other, expected) = if ch.src.0 == a {
                        // r_src * prod = r_dst * cons  =>  r_dst = r_src * prod / cons
                        (ch.dst.0, ra.mul(Ratio::new(prod, cons)))
                    } else {
                        (ch.src.0, ra.mul(Ratio::new(cons, prod)))
                    };
                    match rate[other] {
                        None => {
                            rate[other] = Some(expected);
                            stack.push(other);
                            component.push(other);
                        }
                        Some(existing) if existing != expected => {
                            return Err(DataflowError::Inconsistent {
                                detail: format!(
                                    "actor `{}` requires rate {existing} and {expected}",
                                    self.actors[other].name
                                ),
                            });
                        }
                        Some(_) => {}
                    }
                }
            }
            // Scale this component to smallest integers.
            let mut denom_lcm: i128 = 1;
            for &a in &component {
                let r = rate[a].expect("component actors have rates");
                denom_lcm = denom_lcm / gcd_i128(denom_lcm, r.denom()) * r.denom();
            }
            let mut numer_gcd: i128 = 0;
            for &a in &component {
                let r = rate[a].expect("component actors have rates");
                let scaled = r.numer() * (denom_lcm / r.denom());
                numer_gcd = gcd_i128(numer_gcd, scaled);
            }
            let numer_gcd = numer_gcd.max(1);
            for &a in &component {
                let r = rate[a].expect("component actors have rates");
                let scaled = r.numer() * (denom_lcm / r.denom()) / numer_gcd;
                rate[a] = Some(Ratio::integer(scaled));
            }
        }
        rate.into_iter()
            .map(|r| {
                let r = r.expect("all actors visited");
                u64::try_from(r.numer()).map_err(|_| DataflowError::Overflow("repetition vector"))
            })
            .collect()
    }

    /// Firing-repetition vector: cycle repetitions × phase counts.
    ///
    /// # Errors
    ///
    /// Same as [`CsdfGraph::repetition_vector`].
    pub fn firing_repetition_vector(&self) -> Result<Vec<u64>, DataflowError> {
        let cycles = self.repetition_vector()?;
        Ok(cycles
            .iter()
            .zip(&self.actors)
            .map(|(r, a)| r * a.n_phases() as u64)
            .collect())
    }

    /// Checks structural sanity: every rate vector matches its actor's phase
    /// count (guaranteed by construction) and the balance equations are
    /// solvable.
    ///
    /// # Errors
    ///
    /// Same as [`CsdfGraph::repetition_vector`].
    pub fn validate(&self) -> Result<(), DataflowError> {
        self.repetition_vector().map(|_| ())
    }

    /// Rewrites every bounded channel into an unbounded forward channel plus
    /// an explicit reverse *space* channel with `capacity − initial_tokens`
    /// initial tokens.
    ///
    /// The simulator's space-reservation semantics makes the rewritten graph
    /// behaviourally identical to the original (the paper's Figure 3 models
    /// buffers the same way); the rewrite is what HSDF/MCR analysis operates
    /// on.
    ///
    /// # Panics
    ///
    /// Panics if a channel's capacity is smaller than its initial tokens.
    #[must_use]
    pub fn expand_capacities(&self) -> CsdfGraph {
        let mut g = self.clone();
        for ch in &mut g.channels {
            ch.capacity = None;
        }
        for ch in &self.channels {
            if let Some(cap) = ch.capacity {
                assert!(
                    cap >= ch.initial_tokens,
                    "channel capacity {cap} below initial tokens {}",
                    ch.initial_tokens
                );
                g.channels.push(Channel {
                    src: ch.dst,
                    dst: ch.src,
                    prod: ch.cons.clone(),
                    cons: ch.prod.clone(),
                    initial_tokens: cap - ch.initial_tokens,
                    capacity: None,
                });
            }
        }
        g
    }
}

fn gcd_i128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_actor_graph(p: u64, c: u64) -> (CsdfGraph, ActorId, ActorId) {
        let mut g = CsdfGraph::new();
        let a = g.add_actor("p", PhaseVec::single(1), 1);
        let b = g.add_actor("c", PhaseVec::single(1), 1);
        g.add_channel(a, b, PhaseVec::single(p), PhaseVec::single(c))
            .unwrap();
        (g, a, b)
    }

    #[test]
    fn repetition_vector_sdf() {
        let (g, a, b) = two_actor_graph(2, 3);
        let r = g.repetition_vector().unwrap();
        assert_eq!(r[a.index()], 3);
        assert_eq!(r[b.index()], 2);
    }

    #[test]
    fn repetition_vector_csdf_uses_cycle_totals() {
        let mut g = CsdfGraph::new();
        // a has 2 phases producing ⟨1,2⟩ = 3/cycle; b 1 phase consuming 1.
        let a = g.add_actor("a", PhaseVec::from_slice(&[5, 5]), 1);
        let b = g.add_actor("b", PhaseVec::single(1), 1);
        g.add_channel(a, b, PhaseVec::from_slice(&[1, 2]), PhaseVec::single(1))
            .unwrap();
        let r = g.repetition_vector().unwrap();
        assert_eq!(r, vec![1, 3]);
        let f = g.firing_repetition_vector().unwrap();
        assert_eq!(f, vec![2, 3]);
    }

    #[test]
    fn inconsistent_graph_detected() {
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", PhaseVec::single(1), 1);
        let b = g.add_actor("b", PhaseVec::single(1), 1);
        g.add_channel(a, b, PhaseVec::single(2), PhaseVec::single(1))
            .unwrap();
        g.add_channel(a, b, PhaseVec::single(1), PhaseVec::single(1))
            .unwrap();
        assert!(matches!(
            g.repetition_vector(),
            Err(DataflowError::Inconsistent { .. })
        ));
    }

    #[test]
    fn phase_mismatch_rejected() {
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", PhaseVec::uniform(1, 2), 1);
        let b = g.add_actor("b", PhaseVec::single(1), 1);
        let err = g
            .add_channel(a, b, PhaseVec::single(1), PhaseVec::single(1))
            .unwrap_err();
        assert!(matches!(err, DataflowError::PhaseMismatch { .. }));
    }

    #[test]
    fn disconnected_components_scaled_independently() {
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", PhaseVec::single(1), 1);
        let b = g.add_actor("b", PhaseVec::single(1), 1);
        let c = g.add_actor("c", PhaseVec::single(1), 1);
        let d = g.add_actor("d", PhaseVec::single(1), 1);
        g.add_channel(a, b, PhaseVec::single(1), PhaseVec::single(1))
            .unwrap();
        g.add_channel(c, d, PhaseVec::single(4), PhaseVec::single(2))
            .unwrap();
        let r = g.repetition_vector().unwrap();
        assert_eq!(r, vec![1, 1, 1, 2]);
    }

    #[test]
    fn zero_rate_channel_rejected_when_one_sided() {
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", PhaseVec::single(1), 1);
        let b = g.add_actor("b", PhaseVec::single(1), 1);
        g.add_channel(a, b, PhaseVec::single(0), PhaseVec::single(1))
            .unwrap();
        assert!(g.repetition_vector().is_err());
    }

    #[test]
    fn lookup_helpers() {
        let (g, a, b) = two_actor_graph(1, 1);
        assert_eq!(g.actor_by_name("p"), Some(a));
        assert_eq!(g.actor_by_name("missing"), None);
        assert_eq!(g.inputs_of(b).count(), 1);
        assert_eq!(g.outputs_of(a).count(), 1);
        assert_eq!(g.inputs_of(a).count(), 0);
    }

    #[test]
    fn self_loop_supported() {
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", PhaseVec::single(1), 1);
        g.add_channel_full(a, a, PhaseVec::single(1), PhaseVec::single(1), 1, None)
            .unwrap();
        assert_eq!(g.repetition_vector().unwrap(), vec![1]);
    }
}
