//! CSDF → HSDF (homogeneous SDF) expansion.
//!
//! Every actor `a` with firing-repetition count `q_a` becomes `q_a` nodes,
//! one per firing within a graph iteration; inter-firing dependencies carry
//! initial-token counts equal to their iteration distance. The expansion is
//! used by [`crate::mcr`] to compute the maximum cycle ratio, which
//! cross-validates the self-timed simulator: for a live, consistent graph
//! the steady-state time per graph iteration equals the MCR.

use crate::error::DataflowError;
use crate::graph::{ActorId, CsdfGraph};

/// A node of the expanded HSDF graph: firing `firing` of actor `actor`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HsdfNode {
    /// Originating CSDF actor.
    pub actor: ActorId,
    /// Firing index within one graph iteration (`0..q_actor`).
    pub firing: u64,
    /// Execution time of this firing in time units.
    pub time: u64,
}

/// A dependency edge of the expanded HSDF graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HsdfEdge {
    /// Source node index into [`HsdfGraph::nodes`].
    pub from: usize,
    /// Destination node index into [`HsdfGraph::nodes`].
    pub to: usize,
    /// Iteration distance (initial tokens on the edge).
    pub tokens: u64,
}

/// The expanded homogeneous graph.
#[derive(Debug, Clone, Default)]
pub struct HsdfGraph {
    /// One node per actor firing per iteration.
    pub nodes: Vec<HsdfNode>,
    /// Dependency edges with iteration distances.
    pub edges: Vec<HsdfEdge>,
}

/// Smallest `p ≥ 0` such that `cum(p + 1) ≥ requirement`, where `cum` is the
/// cumulative production of `prod` over firings; `total` is one-iteration
/// production (`prod.total() × ?` — here per `q` firings).
fn min_enabling_firing(
    prod: &crate::phase::PhaseVec,
    q: u64,
    total_per_iteration: u64,
    requirement: u64,
) -> u64 {
    debug_assert!(requirement >= 1);
    debug_assert!(total_per_iteration >= 1);
    // Whole iterations we can safely skip.
    let skip_iters = (requirement - 1) / total_per_iteration;
    let rem = requirement - skip_iters * total_per_iteration;
    // rem in [1, total_per_iteration]: scan one iteration of firings.
    let mut acc = 0u64;
    for i in 0..q {
        acc += prod.get((i % prod.len() as u64) as usize);
        if acc >= rem {
            return skip_iters * q + i;
        }
    }
    unreachable!("one iteration moves total_per_iteration tokens");
}

/// Expands a CSDF graph into its HSDF equivalent.
///
/// Channel capacities must be expanded first
/// ([`CsdfGraph::expand_capacities`]); bounded channels are rejected.
///
/// # Errors
///
/// * [`DataflowError::Inconsistent`] if the graph has no repetition vector
///   or a consumer firing would depend on a *future* producer iteration
///   (the graph is not live at iteration level).
/// * [`DataflowError::Empty`] for an empty graph.
pub fn expand(graph: &CsdfGraph) -> Result<HsdfGraph, DataflowError> {
    for (_, ch) in graph.channels() {
        if ch.capacity.is_some() {
            return Err(DataflowError::Inconsistent {
                detail: "expand_capacities() must be applied before HSDF expansion".into(),
            });
        }
    }
    let q = graph.firing_repetition_vector()?;
    let mut nodes = Vec::new();
    let mut node_base = vec![0usize; graph.n_actors()];
    for (id, actor) in graph.actors() {
        node_base[id.index()] = nodes.len();
        let phases = actor.n_phases() as u64;
        for f in 0..q[id.index()] {
            nodes.push(HsdfNode {
                actor: id,
                firing: f,
                time: actor.phase_duration((f % phases) as usize),
            });
        }
    }

    let mut edges = Vec::new();
    // Sequential (no auto-concurrency) constraint per actor.
    for (id, _) in graph.actors() {
        let qa = q[id.index()];
        let base = node_base[id.index()];
        for f in 0..qa {
            let next = (f + 1) % qa;
            edges.push(HsdfEdge {
                from: base + f as usize,
                to: base + next as usize,
                tokens: u64::from(next == 0),
            });
        }
    }

    // Data dependencies per channel.
    for (_, ch) in graph.channels() {
        let qs = q[ch.src.index()];
        let qd = q[ch.dst.index()];
        let total: u64 = (0..qs)
            .map(|i| ch.prod.get((i % ch.prod.len() as u64) as usize))
            .sum();
        if total == 0 {
            // Channel never carries tokens (all-zero rates): no constraint.
            continue;
        }
        let delta = ch.initial_tokens;
        let mut cons_cum = 0u64;
        for j in 0..qd {
            cons_cum += ch.cons.get((j % ch.cons.len() as u64) as usize);
            // Requirement R may be covered by initial tokens for iteration 0,
            // but the periodic constraint needs the dependence for a generic
            // iteration m: shift by enough iterations to make it positive.
            let m_shift = if cons_cum > delta {
                0u64
            } else {
                (delta - cons_cum) / total + 1
            };
            let requirement = m_shift * total + cons_cum - delta;
            let p = min_enabling_firing(&ch.prod, qs, total, requirement);
            let firing = p % qs;
            let producer_iteration = p / qs;
            // Producer fires in iteration (m + m_shift - producer_iteration)
            // relative to the consumer's iteration m... as a distance:
            if producer_iteration > m_shift {
                return Err(DataflowError::Inconsistent {
                    detail: format!(
                        "consumer firing depends on a future producer iteration \
                         (channel {} → {})",
                        graph.actor(ch.src).name,
                        graph.actor(ch.dst).name
                    ),
                });
            }
            let tokens = m_shift - producer_iteration;
            edges.push(HsdfEdge {
                from: node_base[ch.src.index()] + firing as usize,
                to: node_base[ch.dst.index()] + j as usize,
                tokens,
            });
        }
    }

    Ok(HsdfGraph { nodes, edges })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::PhaseVec;

    #[test]
    fn sdf_expansion_counts() {
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", PhaseVec::single(2), 1);
        let b = g.add_actor("b", PhaseVec::single(3), 1);
        g.add_channel(a, b, PhaseVec::single(2), PhaseVec::single(3))
            .unwrap();
        let h = expand(&g).unwrap();
        // q = [3, 2]: 5 nodes; 5 sequential edges + 2 data edges.
        assert_eq!(h.nodes.len(), 5);
        assert_eq!(h.edges.len(), 7);
    }

    #[test]
    fn same_iteration_dependency_has_zero_tokens() {
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", PhaseVec::single(1), 1);
        let b = g.add_actor("b", PhaseVec::single(1), 1);
        g.add_channel(a, b, PhaseVec::single(1), PhaseVec::single(1))
            .unwrap();
        let h = expand(&g).unwrap();
        let data_edge = h
            .edges
            .iter()
            .find(|e| h.nodes[e.from].actor != h.nodes[e.to].actor)
            .unwrap();
        assert_eq!(data_edge.tokens, 0);
    }

    #[test]
    fn initial_tokens_become_iteration_distance() {
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", PhaseVec::single(1), 1);
        let b = g.add_actor("b", PhaseVec::single(1), 1);
        g.add_channel_full(a, b, PhaseVec::single(1), PhaseVec::single(1), 2, None)
            .unwrap();
        let h = expand(&g).unwrap();
        let data_edge = h
            .edges
            .iter()
            .find(|e| h.nodes[e.from].actor != h.nodes[e.to].actor)
            .unwrap();
        assert_eq!(data_edge.tokens, 2);
    }

    #[test]
    fn bounded_channel_rejected() {
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", PhaseVec::single(1), 1);
        let b = g.add_actor("b", PhaseVec::single(1), 1);
        g.add_channel_full(a, b, PhaseVec::single(1), PhaseVec::single(1), 0, Some(4))
            .unwrap();
        assert!(expand(&g).is_err());
        assert!(expand(&g.expand_capacities()).is_ok());
    }

    #[test]
    fn csdf_phases_expand_to_distinct_times() {
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", PhaseVec::from_slice(&[2, 7]), 1);
        let b = g.add_actor("b", PhaseVec::single(1), 1);
        g.add_channel(a, b, PhaseVec::from_slice(&[1, 1]), PhaseVec::single(2))
            .unwrap();
        let h = expand(&g).unwrap();
        // q = [2, 1] (a fires 2 per iteration producing 2; b consumes 2).
        let times: Vec<u64> = h
            .nodes
            .iter()
            .filter(|n| n.actor == a)
            .map(|n| n.time)
            .collect();
        assert_eq!(times, vec![2, 7]);
    }
}
