//! Run-length encoded phase vectors — the paper's `⟨x^n, y^m⟩` notation.
//!
//! CSDF actors cycle through a fixed sequence of *phases*; each phase carries
//! a worst-case execution time and, per channel, a token production or
//! consumption count. The DATE 2008 paper writes these as `⟨x^n, y^m⟩`,
//! meaning `n` phases with value `x` followed by `m` phases with value `y`
//! (Table 1). [`PhaseVec`] stores exactly that encoding.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single run of identical phase values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Run {
    /// The per-phase value (token count or WCET in cycles).
    pub value: u64,
    /// How many consecutive phases carry this value. Always ≥ 1.
    pub count: u32,
}

/// A cyclo-static phase vector: a non-empty sequence of `u64` values with
/// run-length compression, matching the paper's `⟨x^n, y^m⟩` notation.
///
/// # Example
///
/// ```
/// use rtsm_dataflow::PhaseVec;
///
/// // ⟨8^2, (8,0)^8⟩ — prefix-removal input rates on the ARM (Table 1).
/// let v = PhaseVec::uniform(8, 2).concat(&PhaseVec::repeat_pattern(&[8, 0], 8));
/// assert_eq!(v.len(), 18);
/// assert_eq!(v.total(), 80);
/// assert_eq!(v.get(0), 8);
/// assert_eq!(v.get(3), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PhaseVec {
    runs: Vec<Run>,
    /// Total number of phases (cached).
    len: u32,
}

impl PhaseVec {
    /// A vector of `count` phases, all with the same `value` — the paper's
    /// `⟨value^count⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`; phase vectors are never empty.
    pub fn uniform(value: u64, count: u32) -> Self {
        assert!(count > 0, "phase vectors must be non-empty");
        PhaseVec {
            runs: vec![Run { value, count }],
            len: count,
        }
    }

    /// A single-phase vector `⟨value⟩`.
    pub fn single(value: u64) -> Self {
        Self::uniform(value, 1)
    }

    /// Builds a vector from explicit per-phase values, compressing runs.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn from_slice(values: &[u64]) -> Self {
        assert!(!values.is_empty(), "phase vectors must be non-empty");
        let mut runs: Vec<Run> = Vec::new();
        for &v in values {
            match runs.last_mut() {
                Some(r) if r.value == v => r.count += 1,
                _ => runs.push(Run { value: v, count: 1 }),
            }
        }
        PhaseVec {
            len: values.len() as u32,
            runs,
        }
    }

    /// Repeats `pattern` `times` times — the paper's `⟨(a,b)^n⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is empty or `times == 0`.
    pub fn repeat_pattern(pattern: &[u64], times: u32) -> Self {
        assert!(!pattern.is_empty() && times > 0, "empty pattern repetition");
        let mut values = Vec::with_capacity(pattern.len() * times as usize);
        for _ in 0..times {
            values.extend_from_slice(pattern);
        }
        Self::from_slice(&values)
    }

    /// Concatenates two phase vectors: `⟨a…⟩ ⧺ ⟨b…⟩`.
    #[must_use]
    pub fn concat(&self, other: &PhaseVec) -> PhaseVec {
        let mut runs = self.runs.clone();
        for r in &other.runs {
            match runs.last_mut() {
                Some(last) if last.value == r.value => last.count += r.count,
                _ => runs.push(*r),
            }
        }
        PhaseVec {
            runs,
            len: self.len + other.len,
        }
    }

    /// Number of phases.
    #[allow(clippy::len_without_is_empty)] // never empty by construction
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Value at phase `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> u64 {
        let mut remaining = i;
        for r in &self.runs {
            if remaining < r.count as usize {
                return r.value;
            }
            remaining -= r.count as usize;
        }
        panic!("phase index {i} out of bounds (len {})", self.len);
    }

    /// Sum of all phase values — e.g. total tokens moved per actor iteration.
    pub fn total(&self) -> u64 {
        self.runs.iter().map(|r| r.value * u64::from(r.count)).sum()
    }

    /// The largest single-phase value.
    pub fn max(&self) -> u64 {
        self.runs.iter().map(|r| r.value).max().unwrap_or(0)
    }

    /// Cumulative sum of the first `n` phases (`n` may exceed one cycle, in
    /// which case whole-cycle totals are added).
    ///
    /// This is the `γ` function used in CSDF→HSDF expansion: tokens moved by
    /// the first `n` firings of an actor on a channel.
    pub fn cumulative(&self, n: u64) -> u64 {
        let cycle = self.len as u64;
        let full_cycles = n / cycle;
        let rem = (n % cycle) as usize;
        let mut acc = full_cycles * self.total();
        let mut taken = 0usize;
        for r in &self.runs {
            if taken >= rem {
                break;
            }
            let take = (r.count as usize).min(rem - taken);
            acc += r.value * take as u64;
            taken += take;
        }
        acc
    }

    /// Iterates over per-phase values (expanded).
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.runs
            .iter()
            .flat_map(|r| std::iter::repeat_n(r.value, r.count as usize))
    }

    /// The compressed runs.
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// Returns a copy with every value scaled by `factor`.
    #[must_use]
    pub fn scaled(&self, factor: u64) -> PhaseVec {
        PhaseVec {
            runs: self
                .runs
                .iter()
                .map(|r| Run {
                    value: r.value * factor,
                    count: r.count,
                })
                .collect(),
            len: self.len,
        }
    }

    /// True if every phase has the same value.
    pub fn is_uniform(&self) -> bool {
        self.runs.len() == 1
    }
}

impl fmt::Display for PhaseVec {
    /// Formats in the paper's notation, e.g. `⟨8^2, 0^8⟩` or `⟨18^18⟩`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, r) in self.runs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if r.count == 1 {
                write!(f, "{}", r.value)?;
            } else {
                write!(f, "{}^{}", r.value, r.count)?;
            }
        }
        write!(f, "⟩")
    }
}

impl From<u64> for PhaseVec {
    fn from(value: u64) -> Self {
        PhaseVec::single(value)
    }
}

impl<'a> FromIterator<&'a u64> for PhaseVec {
    fn from_iter<T: IntoIterator<Item = &'a u64>>(iter: T) -> Self {
        let values: Vec<u64> = iter.into_iter().copied().collect();
        PhaseVec::from_slice(&values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_basics() {
        let v = PhaseVec::uniform(18, 18);
        assert_eq!(v.len(), 18);
        assert_eq!(v.total(), 324);
        assert!(v.is_uniform());
        assert_eq!(v.to_string(), "⟨18^18⟩");
    }

    #[test]
    fn from_slice_compresses_runs() {
        let v = PhaseVec::from_slice(&[8, 8, 8, 0, 0, 8]);
        assert_eq!(v.runs().len(), 3);
        assert_eq!(v.len(), 6);
        assert_eq!(v.get(2), 8);
        assert_eq!(v.get(4), 0);
        assert_eq!(v.get(5), 8);
    }

    #[test]
    fn repeat_pattern_matches_paper_notation() {
        // ⟨(8,0)^8⟩
        let v = PhaseVec::repeat_pattern(&[8, 0], 8);
        assert_eq!(v.len(), 16);
        assert_eq!(v.total(), 64);
        assert_eq!(v.get(0), 8);
        assert_eq!(v.get(1), 0);
        assert_eq!(v.get(14), 8);
    }

    #[test]
    fn concat_merges_adjacent_runs() {
        let a = PhaseVec::uniform(1, 3);
        let b = PhaseVec::uniform(1, 2);
        let c = a.concat(&b);
        assert_eq!(c.runs().len(), 1);
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn cumulative_within_and_across_cycles() {
        let v = PhaseVec::from_slice(&[3, 0, 1]);
        assert_eq!(v.cumulative(0), 0);
        assert_eq!(v.cumulative(1), 3);
        assert_eq!(v.cumulative(2), 3);
        assert_eq!(v.cumulative(3), 4);
        assert_eq!(v.cumulative(4), 7); // one full cycle + first phase
        assert_eq!(v.cumulative(7), 11);
    }

    #[test]
    fn display_single_count_omits_exponent() {
        let v = PhaseVec::from_slice(&[66, 4250, 54]);
        assert_eq!(v.to_string(), "⟨66, 4250, 54⟩");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        PhaseVec::single(1).get(1);
    }

    #[test]
    fn iter_expands_runs() {
        let v = PhaseVec::from_slice(&[2, 2, 5]);
        let expanded: Vec<u64> = v.iter().collect();
        assert_eq!(expanded, vec![2, 2, 5]);
    }

    #[test]
    fn scaled_multiplies_values() {
        let v = PhaseVec::from_slice(&[1, 2, 3]).scaled(4);
        assert_eq!(v.total(), 24);
        assert_eq!(v.max(), 12);
    }
}
