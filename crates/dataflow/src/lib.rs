//! Cyclo-Static Data Flow (CSDF) modelling and analysis.
//!
//! This crate is the dataflow substrate of the `rtsm` workspace. It provides
//! the machinery the run-time spatial mapper needs for *step 4* of the DATE
//! 2008 algorithm — checking that a candidate mapping satisfies the
//! application's QoS constraints — as well as buffer-capacity computation in
//! the spirit of Wiggers et al. (DAC 2007), which the paper references for
//! its feasibility check.
//!
//! # Contents
//!
//! * [`PhaseVec`] — compact run-length encoded phase vectors implementing the
//!   paper's `⟨x^n, y^m⟩` notation for per-phase WCETs and token rates.
//! * [`CsdfGraph`] — actors, channels, initial tokens and capacities, with
//!   validation and repetition-vector computation ([`CsdfGraph::repetition_vector`]).
//! * [`simulate`] — a self-timed discrete-event execution engine with exact
//!   periodic-steady-state detection.
//! * [`throughput`] — throughput analysis and period feasibility checks.
//! * [`buffer`] — minimal buffer-capacity computation under a throughput
//!   constraint (binary search with back-pressure simulation).
//! * [`latency`] — end-to-end latency measurement in steady state.
//! * [`hsdf`] / [`mcr`] — CSDF→HSDF expansion and maximum-cycle-ratio
//!   analysis, used to cross-validate the simulator on small graphs.
//! * [`dot`] — Graphviz export.
//!
//! # Example
//!
//! ```
//! use rtsm_dataflow::{CsdfGraph, PhaseVec};
//!
//! // producer -> consumer, 2 tokens per firing each way.
//! let mut g = CsdfGraph::new();
//! let p = g.add_actor("prod", PhaseVec::uniform(10, 1), 1);
//! let c = g.add_actor("cons", PhaseVec::uniform(5, 1), 1);
//! g.add_channel(p, c, PhaseVec::uniform(2, 1), PhaseVec::uniform(2, 1))
//!     .unwrap();
//! let reps = g.repetition_vector().unwrap();
//! assert_eq!(reps[p.index()], reps[c.index()]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod buffer;
pub mod dot;
pub mod error;
pub mod graph;
pub mod hsdf;
pub mod latency;
pub mod mcr;
pub mod phase;
pub mod rational;
pub mod simulate;
pub mod throughput;

pub use buffer::{apply_sizing, size_buffers, BufferSizing, BufferSizingConfig};
pub use error::DataflowError;
pub use graph::{ActorId, ActorSpec, Channel, ChannelId, CsdfGraph};
pub use latency::iteration_latency;
pub use phase::PhaseVec;
pub use rational::Ratio;
pub use simulate::{FiringRecord, SimConfig, SimOutcome, Simulation, SteadyState};
pub use throughput::{check_source_period, steady_state_throughput, Throughput};
