//! Minimal buffer-capacity computation under a throughput constraint.
//!
//! This reproduces, conservatively, the analysis of Wiggers, Bekooij and
//! Smit, *"Efficient computation of buffer capacities for cyclo-static
//! dataflow graphs"* (DAC 2007), which the DATE 2008 paper uses for its
//! step-4 feasibility check and for the `B_i` capacities of Figure 3.
//!
//! The approach here trades the closed-form linear bounds of the original
//! paper for exact back-pressure simulation (our graphs are run-time-mapper
//! sized, tens of actors):
//!
//! 1. Run self-timed with unbounded buffers; the per-channel peak *pressure*
//!    (tokens + in-flight reservations) is a feasible upper bound.
//! 2. Per channel, binary-search the smallest capacity that still sustains
//!    the required source period with all other channels at their current
//!    capacities (throughput is monotone in buffer capacity).
//! 3. Sweep until a fixpoint (one extra validation pass in practice).
//!
//! The result is feasible by construction and minimal per-channel (it may be
//! off the Pareto frontier of *joint* minimality, as is Wiggers' — both are
//! conservative).

use crate::error::DataflowError;
use crate::graph::{ActorId, ChannelId, CsdfGraph};
use crate::simulate::{SimConfig, Simulation};
use crate::throughput::check_source_period;
use rtsm_obs as obs;
use std::cell::RefCell;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Configuration for [`size_buffers`].
#[derive(Debug, Clone)]
pub struct BufferSizingConfig {
    /// The strictly periodic source actor (fires one phase-cycle per
    /// `period`).
    pub source: ActorId,
    /// Required source period in time units.
    pub period: u64,
    /// Channels to size; channels not listed keep their existing capacity.
    /// When empty, every channel with `capacity: None` is sized.
    pub channels: Vec<ChannelId>,
    /// Maximum sweeps over the channel list before giving up.
    pub max_sweeps: usize,
}

/// Result of a buffer-sizing run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferSizing {
    /// Computed capacity per sized channel, in token units.
    pub capacities: Vec<(ChannelId, u64)>,
    /// Total of all computed capacities.
    pub total: u64,
}

impl BufferSizing {
    /// Capacity computed for `channel`, if it was part of the sizing set.
    pub fn capacity_of(&self, channel: ChannelId) -> Option<u64> {
        self.capacities
            .iter()
            .find(|(c, _)| *c == channel)
            .map(|(_, cap)| *cap)
    }
}

fn feasible(graph: &CsdfGraph, source: ActorId, period: u64) -> bool {
    matches!(check_source_period(graph, source, period), Ok((true, _)))
}

/// 64-bit FNV-1a — a fixed-key [`Hasher`] so the sizing-cache digest is
/// identical across runs and threads (unlike `DefaultHasher`'s per-process
/// keys in some configurations, this is specified byte-for-byte).
struct Fnv64(u64);

impl Fnv64 {
    fn new(basis: u64) -> Self {
        Fnv64(basis)
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// 128-bit structural digest of one sizing problem: the full graph (actor
/// timing, channel rates, initial tokens, existing capacities) plus the
/// [`BufferSizingConfig`]. Two calls with equal digests describe the same
/// pure computation, so their results are interchangeable.
fn sizing_digest(graph: &CsdfGraph, config: &BufferSizingConfig) -> u128 {
    let mut digest = 0u128;
    for basis in [0xcbf2_9ce4_8422_2325u64, 0x6c62_272e_07bb_0142u64] {
        let mut h = Fnv64::new(basis);
        for (_, actor) in graph.actors() {
            actor.name.hash(&mut h);
            actor.wcet.hash(&mut h);
            actor.cycle_time.hash(&mut h);
        }
        for (_, channel) in graph.channels() {
            channel.src.index().hash(&mut h);
            channel.dst.index().hash(&mut h);
            channel.prod.hash(&mut h);
            channel.cons.hash(&mut h);
            channel.initial_tokens.hash(&mut h);
            channel.capacity.hash(&mut h);
        }
        config.source.index().hash(&mut h);
        config.period.hash(&mut h);
        for ch in &config.channels {
            ch.index().hash(&mut h);
        }
        config.max_sweeps.hash(&mut h);
        digest = (digest << 64) | u128::from(h.finish());
    }
    digest
}

thread_local! {
    /// Cross-call result cache: repeated admissions of the same
    /// application compose byte-identical CSDF graphs, so the whole
    /// (pure) sizing result can be reused across `map()` calls instead of
    /// re-simulating identical capacity vectors. Thread-local so the
    /// experiment harness's workers never share state; bounded and
    /// flushed wholesale so memory stays fixed and behaviour stays
    /// deterministic.
    static SIZING_CACHE: RefCell<HashMap<u128, BufferSizing>> = RefCell::new(HashMap::new());
}

/// Entry bound of the cross-call sizing cache; on overflow the cache is
/// cleared (a deterministic flush, unlike LRU tie-breaking on hash order).
const SIZING_CACHE_CAP: usize = 512;

/// Computes minimal buffer capacities sustaining `config.period` at the
/// source.
///
/// The graph is taken by value, mutated internally, and the computed
/// capacities are returned; apply them with [`apply_sizing`] if you need the
/// capacitated graph itself.
///
/// Sizing is a pure function of `(graph, config)`, so results are memoised
/// across calls (per thread, keyed by a structural digest): repeated
/// admissions of the same application answer from the cache — counted as a
/// `buffer_memo_hit` — without re-running any feasibility simulation. The
/// returned capacities are identical with or without a cache hit.
///
/// # Errors
///
/// * [`DataflowError::GuardExhausted`] if the unbounded pilot run finds no
///   steady state (e.g. the graph is not consistent).
/// * [`DataflowError::Deadlock`] if the graph deadlocks even with unbounded
///   buffers.
/// * [`DataflowError::Inconsistent`] if the required period cannot be met at
///   any buffer size (the bottleneck is computation, not buffering).
pub fn size_buffers(
    graph: CsdfGraph,
    config: &BufferSizingConfig,
) -> Result<BufferSizing, DataflowError> {
    let _span = obs::span(obs::Span::BufferSizing);
    let digest = sizing_digest(&graph, config);
    if let Some(cached) = SIZING_CACHE.with(|c| c.borrow().get(&digest).cloned()) {
        obs::count(obs::Counter::BufferMemoHit, 1);
        return Ok(cached);
    }
    let sizing = size_buffers_uncached(graph, config)?;
    SIZING_CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        if cache.len() >= SIZING_CACHE_CAP {
            cache.clear();
        }
        cache.insert(digest, sizing.clone());
    });
    Ok(sizing)
}

fn size_buffers_uncached(
    mut graph: CsdfGraph,
    config: &BufferSizingConfig,
) -> Result<BufferSizing, DataflowError> {
    // Utilisation pre-check: actors are sequential, so per graph iteration
    // actor `a` is busy `r_a · cycle_duration(a)`; the iteration spans
    // `r_src · period`. A busier actor makes the requirement unattainable at
    // any buffer size — report it as compute-bound instead of searching.
    let reps = graph.repetition_vector()?;
    let r_src = reps[config.source.index()];
    for (id, actor) in graph.actors() {
        let busy = reps[id.index()] as u128 * actor.cycle_duration() as u128;
        let budget = r_src as u128 * config.period as u128;
        if busy > budget {
            return Err(DataflowError::Inconsistent {
                detail: format!(
                    "required period {} unattainable: actor `{}` needs {busy} time \
                     units per iteration but the iteration spans {budget}",
                    config.period, actor.name
                ),
            });
        }
    }

    let targets: Vec<ChannelId> = if config.channels.is_empty() {
        graph
            .channels()
            .filter(|(_, c)| c.capacity.is_none())
            .map(|(id, _)| id)
            .collect()
    } else {
        config.channels.clone()
    };

    // Feasibility is a pure function of the capacity assignment, and the
    // fixpoint sweep revisits assignments it has already probed (a clean
    // second sweep re-validates every first-sweep decision), so memoise the
    // simulations by target-capacity vector. This only skips duplicate
    // runs — the computed capacities are identical with or without it.
    let mut memo: HashMap<Vec<u64>, bool> = HashMap::new();
    let mut feasible_memo = |graph: &CsdfGraph, source: ActorId, period: u64| -> bool {
        let key: Vec<u64> = targets
            .iter()
            .map(|&ch| graph.channel(ch).capacity.unwrap_or(u64::MAX))
            .collect();
        match memo.entry(key) {
            Entry::Occupied(hit) => {
                obs::count(obs::Counter::BufferMemoHit, 1);
                *hit.get()
            }
            Entry::Vacant(slot) => {
                obs::count(obs::Counter::BufferProbe, 1);
                *slot.insert(feasible(graph, source, period))
            }
        }
    };

    // Pilot run with the target channels unbounded to obtain upper bounds.
    let mut unbounded = graph.clone();
    for &ch in &targets {
        unbounded.channel_mut(ch).capacity = None;
    }
    let sim = Simulation::new(
        &unbounded,
        SimConfig {
            reference: Some(config.source),
            ..SimConfig::default()
        },
    );
    let pilot = sim.run()?;
    if pilot.deadlocked {
        return Err(DataflowError::Deadlock {
            at_time: pilot.end_time,
            firings: pilot.total_firings,
        });
    }
    let steady = pilot.steady.ok_or_else(|| DataflowError::GuardExhausted {
        guard: "no steady state with unbounded buffers".into(),
    })?;
    // If even unbounded buffers cannot sustain the period, buffering cannot
    // help: the graph is compute-bound below the requirement.
    if (steady.iterations as u128) * (config.period as u128) < steady.period as u128 {
        return Err(DataflowError::Inconsistent {
            detail: format!(
                "required period {} unattainable: unbounded-buffer period is {}/{}",
                config.period, steady.period, steady.iterations
            ),
        });
    }

    // Initialise each target at its pilot-run peak pressure (feasible by
    // construction), floored at the largest single-phase transfer.
    let mut caps: Vec<u64> = Vec::with_capacity(targets.len());
    for &ch in &targets {
        let c = graph.channel(ch);
        let floor = c.prod.max().max(c.cons.max()).max(c.initial_tokens).max(1);
        let ub = pilot.max_pressure[ch.index()].max(floor);
        caps.push(ub);
        graph.channel_mut(ch).capacity = Some(ub);
    }

    // The pilot bound is feasible only if the *combination* still meets the
    // period; this holds because capacities at peak pressure never block the
    // pilot schedule. Validate anyway (defensive).
    if !feasible_memo(&graph, config.source, config.period) {
        // Extremely conservative fallback: double until feasible (bounded by
        // a few steps; pressure bounds are near-tight in practice).
        let mut factor = 2u64;
        loop {
            for (i, &ch) in targets.iter().enumerate() {
                graph.channel_mut(ch).capacity = Some(caps[i].saturating_mul(factor));
            }
            if feasible_memo(&graph, config.source, config.period) {
                for (i, &ch) in targets.iter().enumerate() {
                    caps[i] = graph.channel(ch).capacity.expect("capacity just set");
                    let _ = ch;
                }
                break;
            }
            factor = factor.saturating_mul(2);
            if factor > 1 << 20 {
                return Err(DataflowError::GuardExhausted {
                    guard: "buffer sizing failed to find a feasible upper bound".into(),
                });
            }
        }
    }

    // Per-channel binary-search descent, swept to a fixpoint.
    for _sweep in 0..config.max_sweeps {
        let mut changed = false;
        for (i, &ch) in targets.iter().enumerate() {
            let c = graph.channel(ch);
            let floor = c.prod.max().max(c.cons.max()).max(c.initial_tokens).max(1);
            let mut lo = floor;
            let mut hi = caps[i];
            if lo >= hi {
                continue;
            }
            // Invariant: hi feasible. Find the smallest feasible capacity.
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                graph.channel_mut(ch).capacity = Some(mid);
                if feasible_memo(&graph, config.source, config.period) {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            graph.channel_mut(ch).capacity = Some(hi);
            if hi != caps[i] {
                caps[i] = hi;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let capacities: Vec<(ChannelId, u64)> = targets.iter().copied().zip(caps).collect();
    let total = capacities.iter().map(|(_, c)| c).sum();
    Ok(BufferSizing { capacities, total })
}

/// Applies a computed sizing to a graph (sets channel capacities).
pub fn apply_sizing(graph: &mut CsdfGraph, sizing: &BufferSizing) {
    for &(ch, cap) in &sizing.capacities {
        graph.channel_mut(ch).capacity = Some(cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::PhaseVec;

    /// source(period P) -> worker(wcet w) -> sink(wcet s)
    fn pipeline(p: u64, w: u64, s: u64) -> (CsdfGraph, ActorId, Vec<ChannelId>) {
        let mut g = CsdfGraph::new();
        let src = g.add_actor("src", PhaseVec::single(p), 1);
        let work = g.add_actor("work", PhaseVec::single(w), 1);
        let snk = g.add_actor("snk", PhaseVec::single(s), 1);
        let c1 = g
            .add_channel(src, work, PhaseVec::single(1), PhaseVec::single(1))
            .unwrap();
        let c2 = g
            .add_channel(work, snk, PhaseVec::single(1), PhaseVec::single(1))
            .unwrap();
        (g, src, vec![c1, c2])
    }

    #[test]
    fn fast_pipeline_needs_small_buffers() {
        let (g, src, chans) = pipeline(10, 4, 4);
        let sizing = size_buffers(
            g,
            &BufferSizingConfig {
                source: src,
                period: 10,
                channels: chans,
                max_sweeps: 3,
            },
        )
        .unwrap();
        for (_, cap) in &sizing.capacities {
            assert!(*cap <= 2, "capacity {cap} unexpectedly large");
        }
    }

    #[test]
    fn sized_graph_meets_period() {
        let (g, src, chans) = pipeline(10, 9, 8);
        let cfg = BufferSizingConfig {
            source: src,
            period: 10,
            channels: chans,
            max_sweeps: 3,
        };
        let sizing = size_buffers(g.clone(), &cfg).unwrap();
        let mut sized = g;
        apply_sizing(&mut sized, &sizing);
        let (ok, _) = check_source_period(&sized, src, 10).unwrap();
        assert!(ok);
    }

    #[test]
    fn capacities_are_minimal() {
        let (g, src, chans) = pipeline(10, 9, 8);
        let cfg = BufferSizingConfig {
            source: src,
            period: 10,
            channels: chans.clone(),
            max_sweeps: 3,
        };
        let sizing = size_buffers(g.clone(), &cfg).unwrap();
        // Decreasing any computed capacity by one must break feasibility
        // (unless it is already at the structural floor of 1).
        for &(ch, cap) in &sizing.capacities {
            if cap <= 1 {
                continue;
            }
            let mut probe = g.clone();
            apply_sizing(&mut probe, &sizing);
            probe.channel_mut(ch).capacity = Some(cap - 1);
            let (ok, _) = check_source_period(&probe, src, 10).unwrap_or((false, unreachable_tp()));
            assert!(!ok, "channel {ch} capacity {cap} not minimal");
        }
    }

    fn unreachable_tp() -> crate::throughput::Throughput {
        crate::throughput::Throughput {
            iterations: 1,
            period: u64::MAX,
        }
    }

    #[test]
    fn compute_bound_requirement_reported() {
        // Worker slower than the required period: no buffer size helps.
        let (g, src, chans) = pipeline(10, 30, 4);
        let err = size_buffers(
            g,
            &BufferSizingConfig {
                source: src,
                period: 10,
                channels: chans,
                max_sweeps: 3,
            },
        )
        .unwrap_err();
        assert!(matches!(err, DataflowError::Inconsistent { .. }));
    }

    #[test]
    fn repeated_sizing_answers_from_the_cross_call_cache() {
        use rtsm_obs::SpanLatencyProbe;
        use std::rc::Rc;
        // Distinct worker timing so no other test shares this digest.
        let (g, src, chans) = pipeline(20, 17, 13);
        let cfg = BufferSizingConfig {
            source: src,
            period: 20,
            channels: chans,
            max_sweeps: 3,
        };
        let first = size_buffers(g.clone(), &cfg).unwrap();
        let probe = Rc::new(SpanLatencyProbe::new());
        let second = {
            let _guard = obs::install(probe.clone());
            size_buffers(g, &cfg).unwrap()
        };
        assert_eq!(first, second, "cache hit must return the identical sizing");
        assert_eq!(
            probe.counter_total(obs::Counter::BufferProbe),
            0,
            "a whole-result cache hit must not re-simulate any capacity vector"
        );
        assert_eq!(probe.counter_total(obs::Counter::BufferMemoHit), 1);
    }

    #[test]
    fn multi_rate_channel_floor_respected() {
        let mut g = CsdfGraph::new();
        let src = g.add_actor("src", PhaseVec::single(100), 1);
        let snk = g.add_actor("snk", PhaseVec::single(1), 1);
        // Source bursts 8 tokens per firing.
        let ch = g
            .add_channel(src, snk, PhaseVec::single(8), PhaseVec::single(1))
            .unwrap();
        let sizing = size_buffers(
            g,
            &BufferSizingConfig {
                source: src,
                period: 100,
                channels: vec![ch],
                max_sweeps: 3,
            },
        )
        .unwrap();
        assert!(sizing.capacity_of(ch).unwrap() >= 8);
    }
}
