//! Maximum cycle ratio (MCR) analysis of HSDF graphs.
//!
//! The MCR of a node-timed, token-annotated graph is
//! `max over cycles C of (Σ node time in C) / (Σ edge tokens in C)` — the
//! steady-state time per graph iteration of a self-timed execution. It is
//! computed exactly: binary search over dyadic rationals using an exact
//! positive-cycle test (Bellman–Ford on `b·w − a·t` weights), then snapped
//! to the unique candidate rational with bounded denominator via a
//! simplest-rational-in-interval search, and verified.

use crate::error::DataflowError;
use crate::hsdf::HsdfGraph;
use crate::rational::Ratio;

/// True if the graph contains a cycle with `Σ time − λ·Σ tokens > 0` for
/// `λ = num/den` (exact integer arithmetic).
fn has_positive_cycle(graph: &HsdfGraph, num: i128, den: i128) -> bool {
    let n = graph.nodes.len();
    if n == 0 {
        return false;
    }
    // Edge weight: den·time(from) − num·tokens(edge).
    let weights: Vec<i128> = graph
        .edges
        .iter()
        .map(|e| den * graph.nodes[e.from].time as i128 - num * e.tokens as i128)
        .collect();
    let mut dist = vec![0i128; n];
    for _ in 0..n {
        let mut relaxed = false;
        for (e, &w) in graph.edges.iter().zip(&weights) {
            let cand = dist[e.from] + w;
            if cand > dist[e.to] {
                dist[e.to] = cand;
                relaxed = true;
            }
        }
        if !relaxed {
            return false;
        }
    }
    // Still relaxing after n rounds ⇒ positive cycle.
    let mut relaxed = false;
    for (e, &w) in graph.edges.iter().zip(&weights) {
        if dist[e.from] + w > dist[e.to] {
            relaxed = true;
            break;
        }
    }
    relaxed
}

/// Simplest rational `p/q` with `lo ≤ p/q ≤ hi` (both bounds non-negative).
fn simplest_between(lo: Ratio, hi: Ratio) -> Ratio {
    debug_assert!(lo <= hi);
    let (ln, ld) = (lo.numer(), lo.denom());
    let (hn, hd) = (hi.numer(), hi.denom());
    // Integer in range?
    let ceil_lo = ln.div_euclid(ld) + i128::from(ln.rem_euclid(ld) != 0);
    if Ratio::integer(ceil_lo) <= hi {
        return Ratio::integer(ceil_lo);
    }
    let floor_lo = ln.div_euclid(ld);
    // Both strictly inside (floor_lo, floor_lo+1): recurse on reciprocals of
    // the fractional parts, swapped.
    let lo_frac = Ratio::new(ln - floor_lo * ld, ld);
    let hi_frac = Ratio::new(hn - floor_lo * hd, hd);
    let inner = simplest_between(
        Ratio::new(hi_frac.denom(), hi_frac.numer()),
        Ratio::new(lo_frac.denom(), lo_frac.numer()),
    );
    Ratio::integer(floor_lo).add(Ratio::new(inner.denom(), inner.numer()))
}

/// Computes the maximum cycle ratio of `graph` as an exact [`Ratio`]
/// (time units per graph iteration).
///
/// # Errors
///
/// * [`DataflowError::Inconsistent`] if the graph has a positive-time cycle
///   with zero tokens (deadlocked / non-causal: infinite ratio).
/// * [`DataflowError::Empty`] for a graph with no nodes or no cycles.
pub fn maximum_cycle_ratio(graph: &HsdfGraph) -> Result<Ratio, DataflowError> {
    if graph.nodes.is_empty() {
        return Err(DataflowError::Empty("HSDF graph"));
    }
    let total_time: i128 = graph.nodes.iter().map(|n| n.time as i128).sum();
    let total_tokens: i128 = graph.edges.iter().map(|e| e.tokens as i128).sum();
    if total_tokens == 0 {
        return Err(DataflowError::Empty("HSDF token set (no cycles possible)"));
    }
    // λ* ≤ total_time; a positive cycle at λ = total_time + 1 implies a
    // zero-token cycle.
    if has_positive_cycle(graph, total_time + 1, 1) {
        return Err(DataflowError::Inconsistent {
            detail: "zero-token positive-time cycle (infinite cycle ratio)".into(),
        });
    }
    if !has_positive_cycle(graph, 0, 1) {
        // No cycle has positive total time: the MCR is zero.
        return Ok(Ratio::ZERO);
    }

    // Exact dyadic binary search: invariant test(hi) = false, test(lo) = true
    // (a cycle exceeds lo). Width shrinks below 1/(2·D²) so exactly one
    // candidate n/d with d ≤ D remains in (lo, hi].
    let d_bound = total_tokens.max(1);
    let mut lo = Ratio::ZERO; // test(0) true (some cycle has positive time)
    let mut hi = Ratio::integer(total_time.max(1)); // test false
    let gap = Ratio::new(1, 2 * d_bound * d_bound);
    while hi.add(lo.mul(Ratio::integer(-1))) > gap {
        // mid = (lo + hi)/2 as exact rational.
        let mid = lo.add(hi).mul(Ratio::new(1, 2));
        if has_positive_cycle(graph, mid.numer(), mid.denom()) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // The answer is the unique rational with denominator ≤ D in (lo, hi].
    let candidate = simplest_between(lo, hi);
    // Verify: no positive cycle at candidate, but positive cycle just below.
    debug_assert!(!has_positive_cycle(
        graph,
        candidate.numer(),
        candidate.denom()
    ));
    Ok(candidate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CsdfGraph;
    use crate::hsdf::expand;
    use crate::phase::PhaseVec;
    use crate::simulate::{SimConfig, Simulation};

    fn mcr_of(g: &CsdfGraph) -> Ratio {
        maximum_cycle_ratio(&expand(&g.expand_capacities()).unwrap()).unwrap()
    }

    /// Steady-state time per *graph iteration* measured by simulation.
    fn simulated_iteration_period(g: &CsdfGraph) -> Ratio {
        let reps = g.repetition_vector().unwrap();
        let out = Simulation::new(g, SimConfig::default()).run().unwrap();
        let s = out.steady.expect("steady state");
        // reference actor = 0; r_ref cycles per iteration.
        Ratio::new(s.period as i128 * reps[0] as i128, s.iterations as i128)
    }

    #[test]
    fn single_actor_self_loop() {
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", PhaseVec::single(7), 1);
        g.add_channel_full(a, a, PhaseVec::single(1), PhaseVec::single(1), 1, None)
            .unwrap();
        assert_eq!(mcr_of(&g), Ratio::integer(7));
    }

    #[test]
    fn two_actor_cycle_matches_simulation() {
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", PhaseVec::single(3), 1);
        let b = g.add_actor("b", PhaseVec::single(5), 1);
        g.add_channel(a, b, PhaseVec::single(1), PhaseVec::single(1))
            .unwrap();
        g.add_channel_full(b, a, PhaseVec::single(1), PhaseVec::single(1), 1, None)
            .unwrap();
        assert_eq!(mcr_of(&g), Ratio::integer(8));
        assert_eq!(simulated_iteration_period(&g), Ratio::integer(8));
    }

    #[test]
    fn pipelined_cycle_ratio_is_fractional_or_bottleneck() {
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", PhaseVec::single(3), 1);
        let b = g.add_actor("b", PhaseVec::single(5), 1);
        g.add_channel(a, b, PhaseVec::single(1), PhaseVec::single(1))
            .unwrap();
        g.add_channel_full(b, a, PhaseVec::single(1), PhaseVec::single(1), 2, None)
            .unwrap();
        // Two tokens: cycle ratio (3+5)/2 = 4 vs self-loop 5 → MCR 5.
        assert_eq!(mcr_of(&g), Ratio::integer(5));
        assert_eq!(simulated_iteration_period(&g), Ratio::integer(5));
    }

    #[test]
    fn bounded_buffer_chain_matches_simulation() {
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", PhaseVec::single(4), 1);
        let b = g.add_actor("b", PhaseVec::single(4), 1);
        g.add_channel_full(a, b, PhaseVec::single(1), PhaseVec::single(1), 0, Some(1))
            .unwrap();
        // Capacity 1 serialises: period 8.
        assert_eq!(mcr_of(&g), Ratio::integer(8));
        assert_eq!(simulated_iteration_period(&g), Ratio::integer(8));
    }

    #[test]
    fn multirate_graph_matches_simulation() {
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", PhaseVec::single(2), 1);
        let b = g.add_actor("b", PhaseVec::single(3), 1);
        g.add_channel_full(a, b, PhaseVec::single(2), PhaseVec::single(3), 0, Some(6))
            .unwrap();
        // q = [3, 2]; per iteration a works 6, b works 6; with cap 6 the
        // pipeline is loose enough that the bottleneck actor dominates.
        let mcr = mcr_of(&g);
        assert_eq!(simulated_iteration_period(&g), mcr);
    }

    #[test]
    fn csdf_phase_graph_matches_simulation() {
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", PhaseVec::from_slice(&[1, 4]), 1);
        let b = g.add_actor("b", PhaseVec::from_slice(&[2, 2, 2]), 1);
        g.add_channel_full(
            a,
            b,
            PhaseVec::from_slice(&[1, 2]),
            PhaseVec::from_slice(&[1, 1, 0]),
            0,
            Some(4),
        )
        .unwrap();
        // Consistency: a produces 3/cycle, b consumes 2/cycle → q = [2,3].
        let mcr = mcr_of(&g);
        assert_eq!(simulated_iteration_period(&g), mcr);
    }

    #[test]
    fn deadlock_reported_as_infinite_ratio() {
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", PhaseVec::single(1), 1);
        let b = g.add_actor("b", PhaseVec::single(1), 1);
        g.add_channel(a, b, PhaseVec::single(1), PhaseVec::single(1))
            .unwrap();
        g.add_channel(b, a, PhaseVec::single(1), PhaseVec::single(1))
            .unwrap();
        let h = expand(&g);
        // Either expansion already detects non-liveness, or MCR reports the
        // zero-token cycle.
        if let Ok(h) = h {
            assert!(maximum_cycle_ratio(&h).is_err())
        }
    }

    #[test]
    fn simplest_between_finds_low_denominator() {
        let r = simplest_between(Ratio::new(13, 40), Ratio::new(14, 40));
        assert_eq!(r, Ratio::new(1, 3));
        let r2 = simplest_between(Ratio::new(5, 2), Ratio::new(7, 2));
        assert_eq!(r2, Ratio::integer(3));
    }
}
