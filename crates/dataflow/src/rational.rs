//! Minimal exact rational arithmetic for repetition-vector computation.
//!
//! Balance equations over CSDF graphs are solved exactly with rationals;
//! `i128` intermediates keep realistic graphs far from overflow.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// An exact rational number `num/den` in lowest terms with `den > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ratio {
    num: i128,
    den: i128,
}

/// Greatest common divisor (non-negative).
pub fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple.
///
/// # Panics
///
/// Panics on overflow.
pub fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        return 0;
    }
    a / gcd(a, b) * b
}

fn gcd_i128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Ratio {
    /// The rational zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Creates `num/den` reduced to lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd_i128(num, den).max(1);
        Ratio {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// Creates the integer ratio `n/1`.
    pub fn integer(n: i128) -> Self {
        Ratio { num: n, den: 1 }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// `self * other`.
    #[must_use]
    pub fn mul(&self, other: Ratio) -> Ratio {
        Ratio::new(self.num * other.num, self.den * other.den)
    }

    /// `self / other`.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    #[must_use]
    pub fn div(&self, other: Ratio) -> Ratio {
        assert!(other.num != 0, "division by rational zero");
        Ratio::new(self.num * other.den, self.den * other.num)
    }

    /// `self + other`.
    #[must_use]
    pub fn add(&self, other: Ratio) -> Ratio {
        Ratio::new(
            self.num * other.den + other.num * self.den,
            self.den * other.den,
        )
    }

    /// True if this ratio is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// True if this ratio is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_to_lowest_terms() {
        let r = Ratio::new(4, 8);
        assert_eq!(r.numer(), 1);
        assert_eq!(r.denom(), 2);
    }

    #[test]
    fn sign_normalisation() {
        let r = Ratio::new(3, -6);
        assert_eq!(r.numer(), -1);
        assert_eq!(r.denom(), 2);
    }

    #[test]
    fn arithmetic() {
        let a = Ratio::new(1, 3);
        let b = Ratio::new(1, 6);
        assert_eq!(a.add(b), Ratio::new(1, 2));
        assert_eq!(a.mul(b), Ratio::new(1, 18));
        assert_eq!(a.div(b), Ratio::integer(2));
    }

    #[test]
    fn ordering() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert!(Ratio::new(-1, 2) < Ratio::ZERO);
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 5), 0);
    }

    #[test]
    fn display() {
        assert_eq!(Ratio::new(3, 2).to_string(), "3/2");
        assert_eq!(Ratio::integer(5).to_string(), "5");
    }
}
