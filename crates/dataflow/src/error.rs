//! Error type shared by all dataflow analyses.

use std::fmt;

/// Errors produced while building or analysing CSDF graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataflowError {
    /// A channel endpoint refers to an actor that does not exist.
    UnknownActor(usize),
    /// A rate vector's phase count does not match its actor's phase count.
    PhaseMismatch {
        /// Actor whose phase count was violated.
        actor: String,
        /// Phase count of the actor.
        actor_phases: usize,
        /// Phase count of the offending rate vector.
        rate_phases: usize,
    },
    /// The graph is not sample-rate consistent (balance equations have no
    /// non-trivial solution).
    Inconsistent {
        /// Human-readable description of the first violated balance equation.
        detail: String,
    },
    /// The graph deadlocks before reaching a periodic steady state.
    Deadlock {
        /// Simulation time at which no actor could make progress.
        at_time: u64,
        /// Total firings completed before the deadlock.
        firings: u64,
    },
    /// A simulation guard (maximum firings or maximum time) was exhausted
    /// before the analysis could conclude.
    GuardExhausted {
        /// Description of the exhausted guard.
        guard: String,
    },
    /// An empty graph (or empty phase vector) was given where a non-empty one
    /// is required.
    Empty(&'static str),
    /// A numeric overflow occurred during analysis.
    Overflow(&'static str),
}

impl fmt::Display for DataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataflowError::UnknownActor(ix) => write!(f, "unknown actor index {ix}"),
            DataflowError::PhaseMismatch {
                actor,
                actor_phases,
                rate_phases,
            } => write!(
                f,
                "rate vector has {rate_phases} phases but actor `{actor}` has {actor_phases}"
            ),
            DataflowError::Inconsistent { detail } => {
                write!(f, "graph is not sample-rate consistent: {detail}")
            }
            DataflowError::Deadlock { at_time, firings } => write!(
                f,
                "graph deadlocked at time {at_time} after {firings} firings"
            ),
            DataflowError::GuardExhausted { guard } => {
                write!(f, "simulation guard exhausted: {guard}")
            }
            DataflowError::Empty(what) => write!(f, "empty {what}"),
            DataflowError::Overflow(what) => write!(f, "numeric overflow in {what}"),
        }
    }
}

impl std::error::Error for DataflowError {}
