//! End-to-end latency measurement in steady state.
//!
//! Latency is measured operationally: the time between the start of the
//! source's *i*-th phase-cycle and the completion of the sink's
//! corresponding phase-cycle, maximised over a steady-state window. The
//! correspondence uses the cycle-repetition vector: per graph iteration the
//! source completes `r_src` cycles and the sink `r_snk` cycles, so source
//! cycle `i` maps to sink cycle `⌈(i+1)·r_snk/r_src⌉`.

use crate::error::DataflowError;
use crate::graph::{ActorId, CsdfGraph};
use crate::simulate::{SimConfig, Simulation};

/// Measures the maximum steady-state latency from `source` phase-cycle start
/// to the corresponding `sink` phase-cycle completion.
///
/// `warmup_cycles` source cycles are discarded (transient); the maximum over
/// the following `window_cycles` cycles is returned, in time units.
///
/// # Errors
///
/// * [`DataflowError::Deadlock`] if the graph deadlocks.
/// * [`DataflowError::GuardExhausted`] if the simulation guards expire
///   before enough cycles complete.
/// * [`DataflowError::Inconsistent`] if the graph has no repetition vector.
pub fn iteration_latency(
    graph: &CsdfGraph,
    source: ActorId,
    sink: ActorId,
    warmup_cycles: u64,
    window_cycles: u64,
) -> Result<u64, DataflowError> {
    let reps = graph.repetition_vector()?;
    let r_src = reps[source.index()];
    let r_snk = reps[sink.index()];
    let src_phases = graph.actor(source).n_phases() as u64;
    let snk_phases = graph.actor(sink).n_phases() as u64;

    let needed_src_cycles = warmup_cycles + window_cycles;
    // Enough whole-graph iterations to cover the measurement window, with
    // headroom for the transient.
    let freps = graph.firing_repetition_vector()?;
    let firings_per_iteration: u64 = freps.iter().sum();
    let graph_iterations = needed_src_cycles.div_ceil(r_src) + 4;
    let config = SimConfig {
        reference: Some(source),
        stop_at_steady_state: false,
        max_firings: firings_per_iteration
            .saturating_mul(graph_iterations)
            .saturating_mul(2),
        record: vec![source, sink],
        ..SimConfig::default()
    };
    let out = Simulation::new(graph, config).run()?;
    if out.deadlocked {
        return Err(DataflowError::Deadlock {
            at_time: out.end_time,
            firings: out.total_firings,
        });
    }

    // Collect cycle boundaries: start of each source cycle, end of each sink
    // cycle.
    let mut src_cycle_starts = Vec::new();
    let mut snk_cycle_ends = Vec::new();
    let mut src_seen = 0u64;
    let mut snk_seen = 0u64;
    for rec in &out.records {
        if rec.actor == source {
            if src_seen.is_multiple_of(src_phases) {
                src_cycle_starts.push(rec.start);
            }
            src_seen += 1;
        } else if rec.actor == sink {
            snk_seen += 1;
            if snk_seen.is_multiple_of(snk_phases) {
                snk_cycle_ends.push(rec.end);
            }
        }
    }

    let mut max_latency = 0u64;
    let mut measured = 0u64;
    for i in warmup_cycles..(warmup_cycles + window_cycles) {
        let Some(&start) = src_cycle_starts.get(i as usize) else {
            break;
        };
        // Source cycles [0..=i] feed ⌈(i+1)·r_snk/r_src⌉ sink cycles.
        let snk_cycle = ((i + 1) * r_snk).div_ceil(r_src);
        let Some(&end) = snk_cycle_ends.get(snk_cycle as usize - 1) else {
            break;
        };
        max_latency = max_latency.max(end.saturating_sub(start));
        measured += 1;
    }
    if measured == 0 {
        return Err(DataflowError::GuardExhausted {
            guard: "not enough completed cycles for latency window".into(),
        });
    }
    Ok(max_latency)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::PhaseVec;

    #[test]
    fn chain_latency_is_sum_of_stage_times() {
        let mut g = CsdfGraph::new();
        let src = g.add_actor("src", PhaseVec::single(10), 1);
        let mid = g.add_actor("mid", PhaseVec::single(3), 1);
        let snk = g.add_actor("snk", PhaseVec::single(2), 1);
        g.add_channel(src, mid, PhaseVec::single(1), PhaseVec::single(1))
            .unwrap();
        g.add_channel(mid, snk, PhaseVec::single(1), PhaseVec::single(1))
            .unwrap();
        let lat = iteration_latency(&g, src, snk, 2, 4).unwrap();
        // Slow source: each token flows straight through: 10 + 3 + 2.
        assert_eq!(lat, 15);
    }

    #[test]
    fn multirate_latency_accounts_for_accumulation() {
        let mut g = CsdfGraph::new();
        // Source emits 1 token per 10; sink consumes 2 per firing.
        let src = g.add_actor("src", PhaseVec::single(10), 1);
        let snk = g.add_actor("snk", PhaseVec::single(4), 1);
        g.add_channel(src, snk, PhaseVec::single(1), PhaseVec::single(2))
            .unwrap();
        let lat = iteration_latency(&g, src, snk, 2, 4).unwrap();
        // A token produced by an odd source firing waits ~10 for its pair,
        // then 4 for the sink: latency spans two source cycles + sink time.
        assert!(lat >= 14, "latency {lat}");
        assert!(lat <= 24, "latency {lat}");
    }

    #[test]
    fn deadlocked_graph_is_an_error() {
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", PhaseVec::single(1), 1);
        let b = g.add_actor("b", PhaseVec::single(1), 1);
        g.add_channel(a, b, PhaseVec::single(1), PhaseVec::single(1))
            .unwrap();
        g.add_channel(b, a, PhaseVec::single(1), PhaseVec::single(1))
            .unwrap();
        assert!(iteration_latency(&g, a, b, 1, 1).is_err());
    }
}
