//! Graphviz (DOT) export of CSDF graphs — used by the `repro` binary to
//! render Figure 3.

use crate::graph::CsdfGraph;
use std::fmt::Write as _;

/// Renders `graph` in Graphviz DOT syntax.
///
/// Actors are labelled `name ⟨wcet⟩`; channels show `prod/cons` rates,
/// initial tokens (`•n`), and capacities (`cap n`).
pub fn to_dot(graph: &CsdfGraph) -> String {
    let mut out = String::from("digraph csdf {\n  rankdir=LR;\n  node [shape=box];\n");
    for (id, actor) in graph.actors() {
        let _ = writeln!(
            out,
            "  {} [label=\"{} {}\"];",
            id.index(),
            escape(&actor.name),
            actor.wcet
        );
    }
    for (_, ch) in graph.channels() {
        let mut label = format!("{}/{}", ch.prod, ch.cons);
        if ch.initial_tokens > 0 {
            let _ = write!(label, " •{}", ch.initial_tokens);
        }
        if let Some(cap) = ch.capacity {
            let _ = write!(label, " cap {cap}");
        }
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{}\"];",
            ch.src.index(),
            ch.dst.index(),
            escape(&label)
        );
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::PhaseVec;

    #[test]
    fn dot_contains_actors_and_edges() {
        let mut g = CsdfGraph::new();
        let a = g.add_actor("src", PhaseVec::single(1), 1);
        let b = g.add_actor("dst \"x\"", PhaseVec::single(2), 1);
        g.add_channel_full(a, b, PhaseVec::single(3), PhaseVec::single(3), 2, Some(8))
            .unwrap();
        let dot = to_dot(&g);
        assert!(dot.contains("digraph csdf"));
        assert!(dot.contains("src"));
        assert!(dot.contains("\\\"x\\\""));
        assert!(dot.contains("•2"));
        assert!(dot.contains("cap 8"));
        assert!(dot.contains("0 -> 1"));
    }
}
