//! Throughput analysis and source-period feasibility checks.

use crate::error::DataflowError;
use crate::graph::{ActorId, CsdfGraph};
use crate::simulate::{SimConfig, Simulation};

/// Self-timed steady-state throughput of an actor, as an exact ratio of
/// phase-cycles per time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Throughput {
    /// Phase-cycles completed per steady-state period.
    pub iterations: u64,
    /// Length of the steady-state period in time units.
    pub period: u64,
}

impl Throughput {
    /// Average time for one phase-cycle, rounded up.
    pub fn time_per_iteration_ceil(&self) -> u64 {
        self.period.div_ceil(self.iterations)
    }

    /// True if this throughput sustains one phase-cycle per `period` time
    /// units (exact rational comparison: `iterations/period ≥ 1/required`).
    pub fn sustains_period(&self, required: u64) -> bool {
        // iterations / period >= 1 / required  <=>  iterations*required >= period
        (self.iterations as u128) * (required as u128) >= self.period as u128
    }
}

/// Computes the self-timed steady-state throughput of `reference`.
///
/// # Errors
///
/// * [`DataflowError::Deadlock`] when the graph deadlocks.
/// * [`DataflowError::GuardExhausted`] when no periodic steady state was
///   found within the simulation guards (e.g. unbounded token accumulation
///   on channels without capacities).
pub fn steady_state_throughput(
    graph: &CsdfGraph,
    reference: ActorId,
) -> Result<Throughput, DataflowError> {
    let config = SimConfig {
        reference: Some(reference),
        ..SimConfig::default()
    };
    let outcome = Simulation::new(graph, config).run()?;
    if outcome.deadlocked {
        return Err(DataflowError::Deadlock {
            at_time: outcome.end_time,
            firings: outcome.total_firings,
        });
    }
    match outcome.steady {
        Some(s) => Ok(Throughput {
            iterations: s.iterations,
            period: s.period,
        }),
        None => Err(DataflowError::GuardExhausted {
            guard: format!(
                "no periodic steady state within {} firings",
                outcome.total_firings
            ),
        }),
    }
}

/// Checks whether `source` sustains one phase-cycle every `period` time
/// units in self-timed execution — the paper's step-4 QoS check for a
/// strictly periodic input stream (one OFDM symbol every 4 µs).
///
/// Returns the measured throughput so callers can report the achieved
/// period alongside the verdict.
///
/// # Errors
///
/// Same as [`steady_state_throughput`].
pub fn check_source_period(
    graph: &CsdfGraph,
    source: ActorId,
    period: u64,
) -> Result<(bool, Throughput), DataflowError> {
    let tp = steady_state_throughput(graph, source)?;
    Ok((tp.sustains_period(period), tp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::PhaseVec;

    fn chain(src_wcet: u64, dst_wcet: u64, cap: Option<u64>) -> (CsdfGraph, ActorId) {
        let mut g = CsdfGraph::new();
        let p = g.add_actor("p", PhaseVec::single(src_wcet), 1);
        let c = g.add_actor("c", PhaseVec::single(dst_wcet), 1);
        g.add_channel_full(p, c, PhaseVec::single(1), PhaseVec::single(1), 0, cap)
            .unwrap();
        (g, p)
    }

    #[test]
    fn throughput_of_producer_limited_chain() {
        let (g, p) = chain(10, 3, None);
        let tp = steady_state_throughput(&g, p).unwrap();
        assert_eq!(tp.time_per_iteration_ceil(), 10);
        assert!(tp.sustains_period(10));
        assert!(tp.sustains_period(11));
        assert!(!tp.sustains_period(9));
    }

    #[test]
    fn source_period_check_fails_when_downstream_too_slow() {
        let (g, p) = chain(10, 25, Some(2));
        let (ok, tp) = check_source_period(&g, p, 10).unwrap();
        assert!(!ok);
        assert!(tp.time_per_iteration_ceil() >= 25);
    }

    #[test]
    fn source_period_check_passes_when_downstream_keeps_up() {
        let (g, p) = chain(10, 9, Some(2));
        let (ok, _) = check_source_period(&g, p, 10).unwrap();
        assert!(ok);
    }

    #[test]
    fn deadlock_surfaces_as_error() {
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", PhaseVec::single(1), 1);
        let b = g.add_actor("b", PhaseVec::single(1), 1);
        g.add_channel(a, b, PhaseVec::single(1), PhaseVec::single(1))
            .unwrap();
        g.add_channel(b, a, PhaseVec::single(1), PhaseVec::single(1))
            .unwrap();
        assert!(matches!(
            steady_state_throughput(&g, a),
            Err(DataflowError::Deadlock { .. })
        ));
    }
}
