//! Self-timed discrete-event execution of CSDF graphs.
//!
//! The simulator implements the standard self-timed operational semantics
//! with *space reservation*: a firing starts as soon as
//!
//! 1. the actor is idle (actors are sequential — no auto-concurrency),
//! 2. every input channel holds at least the tokens the current phase
//!    consumes, and
//! 3. every bounded output channel has room for the tokens the phase will
//!    produce (the room is reserved at start and filled at completion).
//!
//! Tokens are consumed at firing start and produced at firing completion;
//! buffer space is reserved at producer start and released at consumer
//! completion. This is exactly the semantics obtained by modelling a
//! `capacity`-bounded channel as a pair of forward/backward edges (the
//! paper's Figure 3 back-edges with `B_i` initial tokens).
//!
//! Periodic steady state is detected *exactly* by hashing normalised
//! simulator states at reference-actor iteration boundaries; the detected
//! `(iterations, period)` pair gives the graph's self-timed throughput.

use crate::error::DataflowError;
use crate::graph::{ActorId, CsdfGraph};
use std::cmp::Reverse;
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap};

/// Configuration knobs for a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Stop after this many completed firings (guards against divergence).
    pub max_firings: u64,
    /// Stop when simulated time exceeds this bound.
    pub max_time: u64,
    /// Actor whose full phase-cycle completions delimit steady-state
    /// snapshots. Defaults to actor 0 when `None`.
    pub reference: Option<ActorId>,
    /// When true, stop as soon as a periodic steady state is detected.
    pub stop_at_steady_state: bool,
    /// Actors whose individual firings are recorded in
    /// [`SimOutcome::records`] (for latency measurement).
    pub record: Vec<ActorId>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_firings: 2_000_000,
            max_time: u64::MAX / 4,
            reference: None,
            stop_at_steady_state: true,
            record: Vec::new(),
        }
    }
}

/// A recorded firing of an actor listed in [`SimConfig::record`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FiringRecord {
    /// The recorded actor.
    pub actor: ActorId,
    /// Phase index fired.
    pub phase: u32,
    /// Firing start time.
    pub start: u64,
    /// Firing completion time.
    pub end: u64,
}

/// Exact periodic steady state of a self-timed execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SteadyState {
    /// The reference actor used for detection.
    pub reference: ActorId,
    /// Reference-actor phase-cycles per steady-state period.
    pub iterations: u64,
    /// Steady-state period in time units.
    pub period: u64,
}

impl SteadyState {
    /// Average time per reference-actor cycle, as `(time, cycles)`.
    pub fn cycle_time_ratio(&self) -> (u64, u64) {
        (self.period, self.iterations)
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Simulated time at which the run stopped.
    pub end_time: u64,
    /// Total completed firings.
    pub total_firings: u64,
    /// Completed firings per actor.
    pub completions: Vec<u64>,
    /// Per channel: the maximum of `tokens + reserved + held` over the run —
    /// the smallest capacity that would never have blocked this schedule.
    pub max_pressure: Vec<u64>,
    /// Detected periodic steady state, if any.
    pub steady: Option<SteadyState>,
    /// True if the run ended because no actor could make progress.
    pub deadlocked: bool,
    /// Firings of the actors listed in [`SimConfig::record`], in completion
    /// order.
    pub records: Vec<FiringRecord>,
}

#[derive(Hash, PartialEq, Eq)]
struct StateKey {
    phases: Vec<u32>,
    data: Vec<u64>,
    // Remaining busy time per actor (u64::MAX when idle) plus in-flight phase.
    busy: Vec<(u64, u32)>,
}

/// A discrete-event, self-timed CSDF simulator.
///
/// Use [`Simulation::run`] for a complete run; the intermediate state is
/// intentionally private (the outcome carries everything analyses need).
#[derive(Debug)]
pub struct Simulation<'g> {
    graph: &'g CsdfGraph,
    config: SimConfig,
    now: u64,
    data: Vec<u64>,
    reserved: Vec<u64>,
    held: Vec<u64>,
    phase: Vec<u32>,
    in_flight: Vec<Option<u32>>,
    busy_until: Vec<u64>,
    completions: Vec<u64>,
    total_firings: u64,
    max_pressure: Vec<u64>,
    events: BinaryHeap<Reverse<(u64, usize)>>,
    recorded: Vec<bool>,
    fire_start: Vec<u64>,
    records: Vec<FiringRecord>,
    // Flat CSR tables, precomputed once so the event loop indexes
    // contiguous arrays instead of chasing `PhaseVec` runs and per-actor
    // heap-allocated adjacency lists. Actor `a`'s input channels are
    // `in_ch[in_off[a]..in_off[a+1]]` (likewise `out_*`); channel `c`
    // consumes `cons_val[cons_off[c] + consumer_phase]` tokens and produces
    // `prod_val[prod_off[c] + producer_phase]`; actor `a`'s phase `p` runs
    // for `dur_val[dur_off[a] + p]` time units.
    in_off: Vec<u32>,
    in_ch: Vec<u32>,
    out_off: Vec<u32>,
    out_ch: Vec<u32>,
    cons_off: Vec<u32>,
    cons_val: Vec<u64>,
    prod_off: Vec<u32>,
    prod_val: Vec<u64>,
    /// Channel capacity, `u64::MAX` when unbounded.
    cap_tab: Vec<u64>,
    src_tab: Vec<u32>,
    dst_tab: Vec<u32>,
    dur_off: Vec<u32>,
    dur_val: Vec<u64>,
}

impl<'g> Simulation<'g> {
    /// Creates a simulator over `graph` with the given configuration.
    pub fn new(graph: &'g CsdfGraph, config: SimConfig) -> Self {
        let n = graph.n_actors();
        let m = graph.n_channels();
        let data = graph.channels().map(|(_, c)| c.initial_tokens).collect();
        let mut recorded = vec![false; n];
        for a in &config.record {
            recorded[a.index()] = true;
        }
        // Degree counts, then prefix sums, then a fill pass — the standard
        // CSR construction.
        let mut in_deg = vec![0u32; n];
        let mut out_deg = vec![0u32; n];
        for (_, ch) in graph.channels() {
            out_deg[ch.src.index()] += 1;
            in_deg[ch.dst.index()] += 1;
        }
        let prefix = |deg: &[u32]| {
            let mut off = Vec::with_capacity(deg.len() + 1);
            off.push(0u32);
            for &d in deg {
                off.push(off.last().unwrap() + d);
            }
            off
        };
        let in_off = prefix(&in_deg);
        let out_off = prefix(&out_deg);
        let mut in_ch = vec![0u32; m];
        let mut out_ch = vec![0u32; m];
        let mut in_cursor: Vec<u32> = in_off[..n].to_vec();
        let mut out_cursor: Vec<u32> = out_off[..n].to_vec();
        let mut cons_off = Vec::with_capacity(m + 1);
        let mut prod_off = Vec::with_capacity(m + 1);
        let mut cons_val = Vec::new();
        let mut prod_val = Vec::new();
        let mut cap_tab = Vec::with_capacity(m);
        let mut src_tab = Vec::with_capacity(m);
        let mut dst_tab = Vec::with_capacity(m);
        cons_off.push(0u32);
        prod_off.push(0u32);
        for (ci, ch) in graph.channels() {
            let s = ch.src.index();
            let d = ch.dst.index();
            out_ch[out_cursor[s] as usize] = ci.index() as u32;
            out_cursor[s] += 1;
            in_ch[in_cursor[d] as usize] = ci.index() as u32;
            in_cursor[d] += 1;
            cons_val.extend(ch.cons.iter());
            prod_val.extend(ch.prod.iter());
            cons_off.push(cons_val.len() as u32);
            prod_off.push(prod_val.len() as u32);
            cap_tab.push(ch.capacity.unwrap_or(u64::MAX));
            src_tab.push(s as u32);
            dst_tab.push(d as u32);
        }
        let mut dur_off = Vec::with_capacity(n + 1);
        let mut dur_val = Vec::new();
        dur_off.push(0u32);
        for (_, a) in graph.actors() {
            for p in 0..a.n_phases() {
                dur_val.push(a.phase_duration(p));
            }
            dur_off.push(dur_val.len() as u32);
        }
        Simulation {
            graph,
            config,
            now: 0,
            data,
            reserved: vec![0; m],
            held: vec![0; m],
            phase: vec![0; n],
            in_flight: vec![None; n],
            busy_until: vec![0; n],
            completions: vec![0; n],
            total_firings: 0,
            max_pressure: vec![0; m],
            events: BinaryHeap::new(),
            recorded,
            fire_start: vec![0; n],
            records: Vec::new(),
            in_off,
            in_ch,
            out_off,
            out_ch,
            cons_off,
            cons_val,
            prod_off,
            prod_val,
            cap_tab,
            src_tab,
            dst_tab,
            dur_off,
            dur_val,
        }
    }

    #[inline]
    fn inputs(&self, actor: usize) -> &[u32] {
        &self.in_ch[self.in_off[actor] as usize..self.in_off[actor + 1] as usize]
    }

    #[inline]
    fn outputs(&self, actor: usize) -> &[u32] {
        &self.out_ch[self.out_off[actor] as usize..self.out_off[actor + 1] as usize]
    }

    #[inline]
    fn cons(&self, ci: usize, phase: usize) -> u64 {
        self.cons_val[self.cons_off[ci] as usize + phase]
    }

    #[inline]
    fn prod(&self, ci: usize, phase: usize) -> u64 {
        self.prod_val[self.prod_off[ci] as usize + phase]
    }

    fn can_start(&self, actor: usize) -> bool {
        if self.in_flight[actor].is_some() {
            return false;
        }
        let phase = self.phase[actor] as usize;
        for &ci in self.inputs(actor) {
            let ci = ci as usize;
            if self.data[ci] < self.cons(ci, phase) {
                return false;
            }
        }
        for &ci in self.outputs(actor) {
            let ci = ci as usize;
            let pressure = self.data[ci] + self.reserved[ci] + self.held[ci];
            if pressure + self.prod(ci, phase) > self.cap_tab[ci] {
                return false;
            }
        }
        true
    }

    fn start(&mut self, actor: usize) {
        let phase = self.phase[actor] as usize;
        for k in self.in_off[actor]..self.in_off[actor + 1] {
            let ci = self.in_ch[k as usize] as usize;
            let cons = self.cons(ci, phase);
            debug_assert!(self.data[ci] >= cons);
            self.data[ci] -= cons;
            self.held[ci] += cons;
        }
        for k in self.out_off[actor]..self.out_off[actor + 1] {
            let ci = self.out_ch[k as usize] as usize;
            self.reserved[ci] += self.prod(ci, phase);
            let pressure = self.data[ci] + self.reserved[ci] + self.held[ci];
            if pressure > self.max_pressure[ci] {
                self.max_pressure[ci] = pressure;
            }
        }
        let duration = self.dur_val[self.dur_off[actor] as usize + phase];
        self.in_flight[actor] = Some(phase as u32);
        self.busy_until[actor] = self.now + duration;
        if self.recorded[actor] {
            self.fire_start[actor] = self.now;
        }
        self.events.push(Reverse((self.busy_until[actor], actor)));
    }

    fn complete(&mut self, actor: usize) {
        let id = ActorId(actor);
        let phase = self.in_flight[actor]
            .take()
            .expect("completion event for idle actor") as usize;
        for k in self.in_off[actor]..self.in_off[actor + 1] {
            let ci = self.in_ch[k as usize] as usize;
            let cons = self.cons(ci, phase);
            debug_assert!(self.held[ci] >= cons);
            self.held[ci] -= cons;
        }
        for k in self.out_off[actor]..self.out_off[actor + 1] {
            let ci = self.out_ch[k as usize] as usize;
            let prod = self.prod(ci, phase);
            debug_assert!(self.reserved[ci] >= prod);
            self.reserved[ci] -= prod;
            self.data[ci] += prod;
        }
        let n_phases = self.graph.actor(id).n_phases() as u32;
        self.phase[actor] = (self.phase[actor] + 1) % n_phases;
        self.completions[actor] += 1;
        self.total_firings += 1;
        if self.recorded[actor] {
            self.records.push(FiringRecord {
                actor: id,
                phase: phase as u32,
                start: self.fire_start[actor],
                end: self.now,
            });
        }
    }

    fn snapshot(&self) -> StateKey {
        StateKey {
            phases: self.phase.clone(),
            data: self.data.clone(),
            busy: (0..self.graph.n_actors())
                .map(|a| match self.in_flight[a] {
                    Some(ph) => (self.busy_until[a] - self.now, ph),
                    None => (u64::MAX, u32::MAX),
                })
                .collect(),
        }
    }

    /// Runs the simulation to a guard, deadlock, or (if enabled) steady
    /// state.
    ///
    /// # Errors
    ///
    /// Currently infallible in the error-return sense — deadlock and guard
    /// exhaustion are reported in the [`SimOutcome`] rather than as errors so
    /// that callers can still inspect partial results. The `Result` is kept
    /// for forward compatibility.
    pub fn run(mut self) -> Result<SimOutcome, DataflowError> {
        let reference = self.config.reference.unwrap_or(ActorId(0)).index();
        let ref_phases = self.graph.actor(ActorId(reference)).n_phases() as u64;
        let mut seen: HashMap<StateKey, (u64, u64)> = HashMap::new();
        let mut steady: Option<SteadyState> = None;
        let mut deadlocked = false;
        let mut last_snapshot_iter = u64::MAX;

        // Candidate-driven start scheduling: starting a firing only consumes
        // resources, so only completions can enable new firings. The dirty
        // set holds exactly the actors whose enablement may have changed.
        let n_actors = self.graph.n_actors();
        let mut dirty = vec![true; n_actors];
        let mut candidates: Vec<usize> = (0..n_actors).collect();

        'outer: loop {
            // Start every enabled candidate at the current time.
            while let Some(a) = candidates.pop() {
                dirty[a] = false;
                if self.can_start(a) {
                    self.start(a);
                }
            }

            // Steady-state snapshot at reference-iteration boundaries: only
            // when the reference actor has just wrapped its phase cycle and
            // the state at `now` is saturated (nothing more can start).
            if self.config.stop_at_steady_state
                && steady.is_none()
                && self.completions[reference] > 0
                && self.completions[reference].is_multiple_of(ref_phases)
                && self.phase[reference] == 0
                && self.completions[reference] / ref_phases != last_snapshot_iter
            {
                let iterations = self.completions[reference] / ref_phases;
                last_snapshot_iter = iterations;
                match seen.entry(self.snapshot()) {
                    Entry::Occupied(prev) => {
                        let (it0, t0) = *prev.get();
                        steady = Some(SteadyState {
                            reference: ActorId(reference),
                            iterations: iterations - it0,
                            period: self.now - t0,
                        });
                        break 'outer;
                    }
                    Entry::Vacant(slot) => {
                        slot.insert((iterations, self.now));
                    }
                }
            }

            if self.total_firings >= self.config.max_firings {
                break;
            }

            // Advance to the next completion.
            let Some(Reverse((t, _))) = self.events.peek().copied() else {
                // No in-flight firings and nothing startable: deadlock (or a
                // graph with no fireable actor at all).
                deadlocked = true;
                break;
            };
            if t > self.config.max_time {
                break;
            }
            self.now = t;
            while let Some(Reverse((t2, actor))) = self.events.peek().copied() {
                if t2 != t {
                    break;
                }
                self.events.pop();
                self.complete(actor);
                // Wake the actors this completion may have enabled: the
                // completer itself, consumers of its outputs (new data),
                // and producers into its inputs (freed space).
                let wake = |a: usize, dirty: &mut Vec<bool>, candidates: &mut Vec<usize>| {
                    if !dirty[a] {
                        dirty[a] = true;
                        candidates.push(a);
                    }
                };
                wake(actor, &mut dirty, &mut candidates);
                for k in self.out_off[actor]..self.out_off[actor + 1] {
                    let ci = self.out_ch[k as usize] as usize;
                    wake(self.dst_tab[ci] as usize, &mut dirty, &mut candidates);
                }
                for k in self.in_off[actor]..self.in_off[actor + 1] {
                    let ci = self.in_ch[k as usize] as usize;
                    wake(self.src_tab[ci] as usize, &mut dirty, &mut candidates);
                }
            }
        }

        Ok(SimOutcome {
            end_time: self.now,
            total_firings: self.total_firings,
            completions: self.completions,
            max_pressure: self.max_pressure,
            steady,
            deadlocked,
            records: self.records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::PhaseVec;

    /// producer (wcet 10) -> consumer (wcet 4), 1 token per firing.
    fn chain() -> CsdfGraph {
        let mut g = CsdfGraph::new();
        let p = g.add_actor("p", PhaseVec::single(10), 1);
        let c = g.add_actor("c", PhaseVec::single(4), 1);
        g.add_channel(p, c, PhaseVec::single(1), PhaseVec::single(1))
            .unwrap();
        g
    }

    #[test]
    fn steady_state_of_simple_chain_is_producer_limited() {
        let g = chain();
        let out = Simulation::new(&g, SimConfig::default()).run().unwrap();
        let steady = out.steady.expect("steady state");
        assert_eq!(steady.period / steady.iterations, 10);
        assert!(!out.deadlocked);
    }

    #[test]
    fn consumer_limited_when_consumer_slower_and_buffer_bounded() {
        let mut g = CsdfGraph::new();
        let p = g.add_actor("p", PhaseVec::single(2), 1);
        let c = g.add_actor("c", PhaseVec::single(9), 1);
        g.add_channel_full(p, c, PhaseVec::single(1), PhaseVec::single(1), 0, Some(2))
            .unwrap();
        let out = Simulation::new(&g, SimConfig::default()).run().unwrap();
        let steady = out.steady.expect("steady state");
        assert_eq!(steady.period / steady.iterations, 9);
    }

    #[test]
    fn deadlock_detected_on_token_starved_cycle() {
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", PhaseVec::single(1), 1);
        let b = g.add_actor("b", PhaseVec::single(1), 1);
        g.add_channel(a, b, PhaseVec::single(1), PhaseVec::single(1))
            .unwrap();
        // Back edge with no initial tokens: nobody can ever fire.
        g.add_channel(b, a, PhaseVec::single(1), PhaseVec::single(1))
            .unwrap();
        let out = Simulation::new(&g, SimConfig::default()).run().unwrap();
        assert!(out.deadlocked);
        assert_eq!(out.total_firings, 0);
    }

    #[test]
    fn cycle_with_initial_token_pipelines() {
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", PhaseVec::single(3), 1);
        let b = g.add_actor("b", PhaseVec::single(5), 1);
        g.add_channel(a, b, PhaseVec::single(1), PhaseVec::single(1))
            .unwrap();
        g.add_channel_full(b, a, PhaseVec::single(1), PhaseVec::single(1), 1, None)
            .unwrap();
        let out = Simulation::new(&g, SimConfig::default()).run().unwrap();
        let steady = out.steady.expect("steady state");
        // One token in the cycle: period = 3 + 5.
        assert_eq!(steady.period / steady.iterations, 8);
    }

    #[test]
    fn two_tokens_in_cycle_hide_latency() {
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", PhaseVec::single(3), 1);
        let b = g.add_actor("b", PhaseVec::single(5), 1);
        g.add_channel(a, b, PhaseVec::single(1), PhaseVec::single(1))
            .unwrap();
        g.add_channel_full(b, a, PhaseVec::single(1), PhaseVec::single(1), 2, None)
            .unwrap();
        let out = Simulation::new(&g, SimConfig::default()).run().unwrap();
        let steady = out.steady.expect("steady state");
        // Bottleneck actor dominates: period 5.
        assert_eq!(steady.period / steady.iterations, 5);
    }

    #[test]
    fn max_pressure_reflects_needed_capacity() {
        // Fast producer, slow consumer, unbounded channel, short run.
        let mut g = CsdfGraph::new();
        let p = g.add_actor("p", PhaseVec::single(1), 1);
        let c = g.add_actor("c", PhaseVec::single(10), 1);
        g.add_channel(p, c, PhaseVec::single(1), PhaseVec::single(1))
            .unwrap();
        let cfg = SimConfig {
            max_firings: 100,
            stop_at_steady_state: false,
            ..SimConfig::default()
        };
        let out = Simulation::new(&g, cfg).run().unwrap();
        // Producer runs ~10x faster: pressure builds up well beyond 2.
        assert!(out.max_pressure[0] > 5, "pressure {}", out.max_pressure[0]);
    }

    #[test]
    fn csdf_phases_respected() {
        // Actor with phases ⟨2,0⟩ production; consumer consumes ⟨1⟩.
        let mut g = CsdfGraph::new();
        let p = g.add_actor("p", PhaseVec::from_slice(&[4, 6]), 1);
        let c = g.add_actor("c", PhaseVec::single(3), 1);
        g.add_channel(p, c, PhaseVec::from_slice(&[2, 0]), PhaseVec::single(1))
            .unwrap();
        let out = Simulation::new(&g, SimConfig::default()).run().unwrap();
        let steady = out.steady.expect("steady state");
        // Producer cycle = 10 time units producing 2 tokens; consumer needs
        // 2 firings (6 time units) per producer cycle: producer-limited.
        assert_eq!(steady.period / steady.iterations, 10);
    }

    #[test]
    fn bounded_capacity_one_serialises_chain() {
        let mut g = CsdfGraph::new();
        let p = g.add_actor("p", PhaseVec::single(4), 1);
        let c = g.add_actor("c", PhaseVec::single(4), 1);
        g.add_channel_full(p, c, PhaseVec::single(1), PhaseVec::single(1), 0, Some(1))
            .unwrap();
        let out = Simulation::new(&g, SimConfig::default()).run().unwrap();
        let steady = out.steady.expect("steady state");
        // Capacity 1 with space released only at consumer completion fully
        // serialises the two actors: period = 4 + 4.
        assert_eq!(steady.period / steady.iterations, 8);
    }

    #[test]
    fn guard_exhaustion_reports_partial_result() {
        let g = chain();
        let cfg = SimConfig {
            max_firings: 5,
            stop_at_steady_state: false,
            ..SimConfig::default()
        };
        let out = Simulation::new(&g, cfg).run().unwrap();
        assert!(out.total_firings >= 5);
        assert!(out.steady.is_none());
    }
}
