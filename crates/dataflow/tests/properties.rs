//! Property-based tests for the CSDF engine.

use proptest::prelude::*;
use rtsm_dataflow::graph::CsdfGraph;
use rtsm_dataflow::mcr::maximum_cycle_ratio;
use rtsm_dataflow::simulate::{SimConfig, Simulation};
use rtsm_dataflow::{hsdf, PhaseVec, Ratio};

/// Strategy: a phase vector with the given total, split over 1..=4 phases.
fn phase_vec_with_total(total: u64) -> impl Strategy<Value = PhaseVec> {
    (1usize..=4).prop_flat_map(move |n| {
        proptest::collection::vec(0u64..=total, n - 1).prop_map(move |cuts| {
            // Split [0, total] at sorted cut points into n parts.
            let mut cuts = cuts;
            cuts.sort_unstable();
            let mut values = Vec::with_capacity(cuts.len() + 1);
            let mut prev = 0;
            for c in cuts {
                values.push(c - prev);
                prev = c;
            }
            values.push(total - prev);
            PhaseVec::from_slice(&values)
        })
    })
}

fn arbitrary_wcet(phases: usize) -> impl Strategy<Value = PhaseVec> {
    proptest::collection::vec(1u64..=10, phases).prop_map(|v| PhaseVec::from_slice(&v))
}

proptest! {
    #[test]
    fn phase_roundtrip(values in proptest::collection::vec(0u64..100, 1..20)) {
        let v = PhaseVec::from_slice(&values);
        let expanded: Vec<u64> = v.iter().collect();
        prop_assert_eq!(&expanded, &values);
        prop_assert_eq!(v.total(), values.iter().sum::<u64>());
        prop_assert_eq!(v.len(), values.len());
    }

    #[test]
    fn phase_cumulative_monotone_and_periodic(
        values in proptest::collection::vec(0u64..50, 1..10),
        n in 0u64..40,
    ) {
        let v = PhaseVec::from_slice(&values);
        prop_assert!(v.cumulative(n) <= v.cumulative(n + 1));
        prop_assert_eq!(v.cumulative(v.len() as u64), v.total());
        let cycle = v.len() as u64;
        prop_assert_eq!(v.cumulative(n + cycle), v.cumulative(n) + v.total());
    }

    #[test]
    fn phase_concat_totals(
        a in proptest::collection::vec(0u64..50, 1..8),
        b in proptest::collection::vec(0u64..50, 1..8),
    ) {
        let va = PhaseVec::from_slice(&a);
        let vb = PhaseVec::from_slice(&b);
        let cat = va.concat(&vb);
        prop_assert_eq!(cat.total(), va.total() + vb.total());
        prop_assert_eq!(cat.len(), va.len() + vb.len());
        prop_assert_eq!(cat.get(a.len()), b[0]);
    }

    /// Balance equations hold for the computed repetition vector on random
    /// consistent chains.
    #[test]
    fn repetition_vector_balances(
        rs in proptest::collection::vec(1u64..=4, 2..=5),
        ms in proptest::collection::vec(1u64..=3, 1..=4),
    ) {
        prop_assume!(ms.len() == rs.len() - 1);
        let mut g = CsdfGraph::new();
        let ids: Vec<_> = rs
            .iter()
            .enumerate()
            .map(|(i, _)| g.add_actor(format!("a{i}"), PhaseVec::single(1), 1))
            .collect();
        for i in 0..ms.len() {
            // prod_total = r_{i+1}·m, cons_total = r_i·m keeps consistency.
            let prod = rs[i + 1] * ms[i];
            let cons = rs[i] * ms[i];
            g.add_channel(ids[i], ids[i + 1], PhaseVec::single(prod), PhaseVec::single(cons))
                .unwrap();
        }
        let reps = g.repetition_vector().unwrap();
        for (_, ch) in g.channels() {
            prop_assert_eq!(
                reps[ch.src.index()] * ch.prod.total(),
                reps[ch.dst.index()] * ch.cons.total()
            );
        }
        // Minimality: connected graph => gcd of entries is 1.
        let gcd = reps.iter().fold(0u64, |acc, &r| {
            let (mut a, mut b) = (acc, r);
            while b != 0 { let t = a % b; a = b; b = t; }
            a
        });
        prop_assert_eq!(gcd, 1);
    }

    /// A bounded channel behaves exactly like an explicit reverse channel.
    #[test]
    fn capacity_expansion_is_behaviour_preserving(
        wcet_a in 1u64..=8,
        wcet_b in 1u64..=8,
        cap in 1u64..=5,
    ) {
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", PhaseVec::single(wcet_a), 1);
        let b = g.add_actor("b", PhaseVec::single(wcet_b), 1);
        g.add_channel_full(a, b, PhaseVec::single(1), PhaseVec::single(1), 0, Some(cap))
            .unwrap();
        let bounded = Simulation::new(&g, SimConfig::default()).run().unwrap();
        let expanded_graph = g.expand_capacities();
        let expanded = Simulation::new(&expanded_graph, SimConfig::default()).run().unwrap();
        let sb = bounded.steady.expect("bounded steady");
        let se = expanded.steady.expect("expanded steady");
        prop_assert_eq!(
            sb.period as u128 * se.iterations as u128,
            se.period as u128 * sb.iterations as u128
        );
    }

    /// Throughput is monotone non-decreasing in buffer capacity.
    #[test]
    fn throughput_monotone_in_capacity(
        wcet_a in 1u64..=8,
        wcet_b in 1u64..=8,
        cap in 1u64..=4,
    ) {
        let build = |c: u64| {
            let mut g = CsdfGraph::new();
            let a = g.add_actor("a", PhaseVec::single(wcet_a), 1);
            let b = g.add_actor("b", PhaseVec::single(wcet_b), 1);
            g.add_channel_full(a, b, PhaseVec::single(1), PhaseVec::single(1), 0, Some(c))
                .unwrap();
            g
        };
        let small = Simulation::new(&build(cap), SimConfig::default()).run().unwrap();
        let large = Simulation::new(&build(cap + 1), SimConfig::default()).run().unwrap();
        let ss = small.steady.expect("steady");
        let sl = large.steady.expect("steady");
        // period-per-iteration of larger capacity <= smaller capacity.
        prop_assert!(
            sl.period as u128 * ss.iterations as u128
                <= ss.period as u128 * sl.iterations as u128
        );
    }

    /// The MCR of the HSDF expansion matches the simulated steady state on
    /// random two-actor cycles.
    #[test]
    fn mcr_matches_simulation_on_cycles(
        phases_a in 1usize..=3,
        phases_b in 1usize..=3,
        tokens in 1u64..=3,
        seed_a in 0u64..1000,
        seed_b in 0u64..1000,
    ) {
        // Deterministic wcets from seeds to keep the strategy simple.
        let wa: Vec<u64> = (0..phases_a).map(|i| 1 + (seed_a + i as u64) % 7).collect();
        let wb: Vec<u64> = (0..phases_b).map(|i| 1 + (seed_b + i as u64) % 7).collect();
        let mut g = CsdfGraph::new();
        let a = g.add_actor("a", PhaseVec::from_slice(&wa), 1);
        let b = g.add_actor("b", PhaseVec::from_slice(&wb), 1);
        // 1 token per phase both ways: consistent with q = [pa, pb]·k.
        g.add_channel(a, b, PhaseVec::uniform(1, phases_a as u32), PhaseVec::uniform(1, phases_b as u32)).unwrap();
        g.add_channel_full(b, a, PhaseVec::uniform(1, phases_b as u32), PhaseVec::uniform(1, phases_a as u32), tokens, None).unwrap();

        let reps = g.repetition_vector().unwrap();
        let sim = Simulation::new(&g, SimConfig::default()).run().unwrap();
        let steady = sim.steady.expect("steady");
        let sim_period = Ratio::new(
            steady.period as i128 * reps[0] as i128,
            steady.iterations as i128,
        );
        let h = hsdf::expand(&g).unwrap();
        let mcr = maximum_cycle_ratio(&h).unwrap();
        prop_assert_eq!(sim_period, mcr);
    }

    /// Simulation is deterministic: two runs agree exactly.
    #[test]
    fn simulation_deterministic(
        wcets in proptest::collection::vec(1u64..=9, 2..=4),
    ) {
        let mut g = CsdfGraph::new();
        let ids: Vec<_> = wcets
            .iter()
            .enumerate()
            .map(|(i, &w)| g.add_actor(format!("a{i}"), PhaseVec::single(w), 1))
            .collect();
        for w in ids.windows(2) {
            g.add_channel_full(w[0], w[1], PhaseVec::single(1), PhaseVec::single(1), 0, Some(3))
                .unwrap();
        }
        let r1 = Simulation::new(&g, SimConfig::default()).run().unwrap();
        let r2 = Simulation::new(&g, SimConfig::default()).run().unwrap();
        prop_assert_eq!(r1.end_time, r2.end_time);
        prop_assert_eq!(r1.total_firings, r2.total_firings);
        prop_assert_eq!(r1.max_pressure, r2.max_pressure);
    }

    /// Random totals: a consistent multirate chain always yields a steady
    /// state under generous capacities, and buffer sizing finds capacities
    /// that meet the unbounded-rate period.
    #[test]
    fn sizing_meets_natural_period(
        r1 in 1u64..=3,
        r2 in 1u64..=3,
        m in 1u64..=2,
        total in 2u64..=6,
    ) {
        let _ = total; // totals are derived from rates below
        let mut g = CsdfGraph::new();
        // Source paced at its wcet; worker r2 cycles per r1 source cycles.
        let src = g.add_actor("src", PhaseVec::single(20), 1);
        let dst = g.add_actor("dst", PhaseVec::single(1), 1);
        let prod = r2 * m;
        let cons = r1 * m;
        let ch = g.add_channel(src, dst, PhaseVec::single(prod), PhaseVec::single(cons)).unwrap();
        let sizing = rtsm_dataflow::size_buffers(
            g.clone(),
            &rtsm_dataflow::BufferSizingConfig {
                source: src,
                period: 20,
                channels: vec![ch],
                max_sweeps: 2,
            },
        ).unwrap();
        let cap = sizing.capacity_of(ch).unwrap();
        prop_assert!(cap >= prod.max(cons));
        let mut sized = g;
        rtsm_dataflow::apply_sizing(&mut sized, &sizing);
        let (ok, _) = rtsm_dataflow::check_source_period(&sized, src, 20).unwrap();
        prop_assert!(ok);
    }
}

#[test]
fn phase_vec_with_total_strategy_is_sound() {
    // Sanity-check the helper strategy itself once.
    use proptest::strategy::{Strategy as _, ValueTree};
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::default();
    for _ in 0..32 {
        let v = phase_vec_with_total(12)
            .new_tree(&mut runner)
            .unwrap()
            .current();
        assert_eq!(v.total(), 12);
    }
}

#[test]
fn wcet_strategy_is_sound() {
    use proptest::strategy::{Strategy as _, ValueTree};
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::default();
    for _ in 0..8 {
        let v = arbitrary_wcet(3).new_tree(&mut runner).unwrap().current();
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|x| x >= 1));
    }
}
