//! The paper's hypothetical MPSoC (Figure 2), reconstructed.
//!
//! A 3×3 router mesh with two ARMs, two MONTIUMs, the A/D stream source and
//! the Sink, plus three tiles "of types not relevant to this example".
//!
//! The exact label-to-router association of Figure 2 is not recoverable from
//! the paper text, so the placement below was *solved for*: it is the unique
//! (up to symmetry) placement that reproduces Table 2's cost sequence —
//! greedy initial cost 11, ARM-swap evaluated at 11 and reverted,
//! MONTIUM-swap at 9 kept, ARM-swap at 7 kept, no further choices — while
//! preserving the figure's row pairing (ARM1/MONTIUM2, Sink/MONTIUM1,
//! A/D/ARM2 share mesh rows). See `DESIGN.md` for the derivation.
//!
//! Tile insertion order is `ARM1, ARM2, MONTIUM1, MONTIUM2, A/D, Sink,
//! other…` so that step 1's first-fit packing visits ARM1 before ARM2 and
//! MONTIUM1 before MONTIUM2, as the paper's walk-through requires.

use crate::tile::{Tile, TileKind};
use crate::topology::{Coord, NocParams, Platform, PlatformBuilder};

/// Clock of every tile and router in the paper instance, in MHz.
///
/// The paper gives WCETs in cycles but no tile clock; 200 MHz (800 cycles
/// per 4 µs OFDM symbol) makes the paper's final mapping feasible while the
/// ARM implementations of Inverse OFDM (4370 cycles) and Remainder (≥ 2306
/// cycles) are throughput-infeasible — exactly the structure the paper's
/// narrative requires.
pub const PAPER_CLOCK_MHZ: u32 = 200;

/// Data memory per processing tile, in bytes (model parameter).
pub const PAPER_TILE_MEMORY: u64 = 64 * 1024;

/// NI bandwidth per tile, in words/second (1 word/cycle at 200 MHz).
pub const PAPER_NI_BANDWIDTH: u64 = 200_000_000;

fn tile(name: &str, kind: TileKind, x: u16, y: u16, slots: u32) -> Tile {
    Tile {
        name: name.into(),
        kind,
        position: Coord { x, y },
        clock_mhz: PAPER_CLOCK_MHZ,
        compute_slots: slots,
        memory_bytes: PAPER_TILE_MEMORY,
        ni_injection: PAPER_NI_BANDWIDTH,
        ni_ejection: PAPER_NI_BANDWIDTH,
    }
}

/// Builds the paper's 3×3 MPSoC (Figure 2).
///
/// # Panics
///
/// Never — the layout is statically valid (covered by tests).
pub fn paper_platform() -> Platform {
    PlatformBuilder::mesh(3, 3)
        .noc(NocParams {
            hop_latency_cycles: 4,
            clock_mhz: PAPER_CLOCK_MHZ,
            link_capacity: PAPER_NI_BANDWIDTH,
        })
        .tile_custom(tile("ARM1", TileKind::Arm, 1, 0, 1))
        .tile_custom(tile("ARM2", TileKind::Arm, 0, 1, 1))
        .tile_custom(tile("MONTIUM1", TileKind::Montium, 2, 2, 1))
        .tile_custom(tile("MONTIUM2", TileKind::Montium, 2, 0, 1))
        .tile_custom(tile("A/D", TileKind::AdcSource, 1, 1, 1))
        .tile_custom(tile("Sink", TileKind::Sink, 1, 2, 1))
        .tile_custom(tile("OTHER1", TileKind::Other(1), 0, 0, 1))
        .tile_custom(tile("OTHER2", TileKind::Other(2), 2, 1, 1))
        .tile_custom(tile("OTHER3", TileKind::Other(3), 0, 2, 1))
        .build()
        .expect("paper platform layout is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_tiles_on_nine_routers() {
        let p = paper_platform();
        assert_eq!(p.n_tiles(), 9);
        for y in 0..3 {
            for x in 0..3 {
                assert!(p.tile_at(Coord { x, y }).is_some());
            }
        }
    }

    #[test]
    fn first_fit_order_is_arm1_arm2_m1_m2() {
        let p = paper_platform();
        let names: Vec<&str> = p.tiles().map(|(_, t)| t.name.as_str()).collect();
        assert_eq!(
            &names[..6],
            &["ARM1", "ARM2", "MONTIUM1", "MONTIUM2", "A/D", "Sink"]
        );
    }

    /// The distances that make Table 2's cost sequence work out.
    #[test]
    fn reconstructed_distances_reproduce_table2_costs() {
        let p = paper_platform();
        let t = |n: &str| p.tile_by_name(n).unwrap();
        let d = |a: &str, b: &str| p.manhattan(t(a), t(b));

        // Initial greedy: Pfx@ARM1, Frq@ARM2, iOFDM@M1, Rem@M2 → cost 11.
        let initial = d("A/D", "ARM1")
            + d("ARM1", "ARM2")
            + d("ARM2", "MONTIUM1")
            + d("MONTIUM1", "MONTIUM2")
            + d("MONTIUM2", "Sink");
        assert_eq!(initial, 11);

        // Iteration 1 (swap ARMs): cost 11 — no improvement.
        let iter1 = d("A/D", "ARM2")
            + d("ARM2", "ARM1")
            + d("ARM1", "MONTIUM1")
            + d("MONTIUM1", "MONTIUM2")
            + d("MONTIUM2", "Sink");
        assert_eq!(iter1, 11);

        // Iteration 2 (swap MONTIUMs): cost 9 — improvement.
        let iter2 = d("A/D", "ARM1")
            + d("ARM1", "ARM2")
            + d("ARM2", "MONTIUM2")
            + d("MONTIUM2", "MONTIUM1")
            + d("MONTIUM1", "Sink");
        assert_eq!(iter2, 9);

        // Iteration 3 (swap ARMs too): cost 7 — the paper's final mapping.
        let iter3 = d("A/D", "ARM2")
            + d("ARM2", "ARM1")
            + d("ARM1", "MONTIUM2")
            + d("MONTIUM2", "MONTIUM1")
            + d("MONTIUM1", "Sink");
        assert_eq!(iter3, 7);
    }

    #[test]
    fn figure_row_pairs_preserved() {
        let p = paper_platform();
        let pos = |n: &str| p.tile(p.tile_by_name(n).unwrap()).position;
        assert_eq!(pos("ARM1").y, pos("MONTIUM2").y);
        assert_eq!(pos("Sink").y, pos("MONTIUM1").y);
        assert_eq!(pos("A/D").y, pos("ARM2").y);
    }

    #[test]
    fn paper_clock_budget_is_800_cycles_per_symbol() {
        let p = paper_platform();
        let arm = p.tile(p.tile_by_name("ARM1").unwrap());
        assert_eq!(arm.cycles_per_period(4_000_000), 800);
    }
}
