//! ASCII rendering of the platform layout (Figure 2) and link loads.

use crate::state::PlatformState;
use crate::topology::{Coord, Platform};
use std::fmt::Write as _;

/// Renders the mesh as ASCII art: one cell per router, labelled with the
/// attached tile's name (or `·` for bare routers).
///
/// ```text
/// +----------+----------+----------+
/// | OTHER1   | ARM1     | MONTIUM2 |
/// +----------+----------+----------+
/// | ARM2     | A/D      | OTHER2   |
/// +----------+----------+----------+
/// | OTHER3   | Sink     | MONTIUM1 |
/// +----------+----------+----------+
/// ```
pub fn render_layout(platform: &Platform) -> String {
    let cell_width = platform
        .tiles()
        .map(|(_, t)| t.name.len())
        .max()
        .unwrap_or(1)
        .max(1)
        + 2;
    let mut out = String::new();
    let horizontal = |out: &mut String| {
        for _ in 0..platform.width() {
            out.push('+');
            out.push_str(&"-".repeat(cell_width));
        }
        out.push_str("+\n");
    };
    for y in 0..platform.height() {
        horizontal(&mut out);
        for x in 0..platform.width() {
            let label = platform
                .tile_at(Coord { x, y })
                .map(|id| platform.tile(id).name.clone())
                .unwrap_or_else(|| "·".to_string());
            let _ = write!(out, "| {label:<width$}", width = cell_width - 1);
        }
        out.push_str("|\n");
    }
    horizontal(&mut out);
    out
}

/// Renders per-link utilisation as `from -> to: used/capacity` lines,
/// skipping idle links.
pub fn render_link_loads(platform: &Platform, state: &PlatformState) -> String {
    let mut out = String::new();
    for (id, link) in platform.links() {
        let residual = state.residual_link(platform, id);
        let used = link.capacity - residual;
        if used > 0 {
            let _ = writeln!(
                out,
                "{} -> {}: {}/{} words/s",
                link.from, link.to, used, link.capacity
            );
        }
    }
    if out.is_empty() {
        out.push_str("(no link load)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::paper_platform;

    #[test]
    fn layout_contains_all_tiles() {
        let p = paper_platform();
        let art = render_layout(&p);
        for (_, t) in p.tiles() {
            assert!(art.contains(&t.name), "missing {}", t.name);
        }
        // 3 rows of cells + 4 horizontal rules.
        assert_eq!(art.lines().count(), 7);
    }

    #[test]
    fn link_loads_reports_allocations() {
        let p = paper_platform();
        let mut s = p.initial_state();
        assert!(render_link_loads(&p, &s).contains("no link load"));
        let (lid, _) = p.links().next().unwrap();
        s.allocate_link(&p, lid, 42).unwrap();
        let report = render_link_loads(&p, &s);
        assert!(report.contains("42/"), "{report}");
    }
}
