//! Energy accounting: processing + NoC communication.
//!
//! The paper's objective is "to minimize the energy consumption of the
//! entire application: processing (including memory requirements thereof)
//! as well as interprocess communication" (§1.3). Processing energy comes
//! from the implementation library (Table 1's nJ/symbol column); this module
//! supplies the communication side: energy per token per hop, plus a
//! per-router traversal overhead.

use serde::{Deserialize, Serialize};

/// Parameters of the communication-energy model.
///
/// Defaults are representative 90 nm NoC figures (documented model
/// parameters, not paper values — the paper does not quantify NoC energy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy to move one 32-bit token across one link, in picojoules.
    pub link_pj_per_token: u64,
    /// Energy to traverse one router (buffering + arbitration), in
    /// picojoules per token.
    pub router_pj_per_token: u64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            link_pj_per_token: 30,
            router_pj_per_token: 20,
        }
    }
}

impl EnergyModel {
    /// Communication energy for `tokens` tokens taking a path with `hops`
    /// router-to-router links, in picojoules.
    ///
    /// A path with `h` hops traverses `h + 1` routers (Figure 3 draws a
    /// router actor per traversed router).
    pub fn channel_energy_pj(&self, tokens: u64, hops: u32) -> u64 {
        if hops == 0 {
            // Same-tile communication: through local memory, modelled free.
            return 0;
        }
        let link = self.link_pj_per_token * u64::from(hops) * tokens;
        let router = self.router_pj_per_token * (u64::from(hops) + 1) * tokens;
        link + router
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_hops_is_free() {
        let m = EnergyModel::default();
        assert_eq!(m.channel_energy_pj(1000, 0), 0);
    }

    #[test]
    fn energy_scales_linearly_in_tokens_and_hops() {
        let m = EnergyModel {
            link_pj_per_token: 10,
            router_pj_per_token: 5,
        };
        // 1 hop: 10·1 + 5·2 = 20 pJ per token.
        assert_eq!(m.channel_energy_pj(1, 1), 20);
        assert_eq!(m.channel_energy_pj(3, 1), 60);
        // 2 hops: 10·2 + 5·3 = 35 pJ per token.
        assert_eq!(m.channel_energy_pj(1, 2), 35);
    }

    #[test]
    fn more_hops_never_cheaper() {
        let m = EnergyModel::default();
        for h in 0..8u32 {
            assert!(m.channel_energy_pj(10, h) <= m.channel_energy_pj(10, h + 1));
        }
    }
}
