//! Error type for platform construction and resource operations.

use crate::tile::TileId;
use crate::topology::Coord;
use std::fmt;

/// Errors produced by platform construction, routing, and the occupancy
/// ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// A tile was placed outside the mesh.
    OutOfMesh {
        /// The offending coordinate.
        coord: Coord,
        /// Mesh width.
        width: u16,
        /// Mesh height.
        height: u16,
    },
    /// Two tiles were placed on the same router.
    DuplicatePosition(Coord),
    /// No route with sufficient residual capacity exists.
    NoRoute {
        /// Source tile.
        from: TileId,
        /// Destination tile.
        to: TileId,
        /// Requested bandwidth (words/second).
        demand: u64,
    },
    /// A tile lacks the requested resource.
    InsufficientResource {
        /// The tile.
        tile: TileId,
        /// Which resource was exhausted.
        resource: &'static str,
    },
    /// Attempted to release a claim that does not exist.
    UnknownClaim,
    /// A link allocation/release did not balance.
    LinkAccounting {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::OutOfMesh {
                coord,
                width,
                height,
            } => write!(f, "coordinate {coord} outside {width}x{height} mesh"),
            PlatformError::DuplicatePosition(c) => {
                write!(f, "two tiles share router position {c}")
            }
            PlatformError::NoRoute { from, to, demand } => write!(
                f,
                "no route from tile {from} to tile {to} with {demand} words/s free"
            ),
            PlatformError::InsufficientResource { tile, resource } => {
                write!(f, "tile {tile} lacks {resource}")
            }
            PlatformError::UnknownClaim => write!(f, "claim not found in ledger"),
            PlatformError::LinkAccounting { detail } => {
                write!(f, "link accounting violation: {detail}")
            }
        }
    }
}

impl std::error::Error for PlatformError {}
