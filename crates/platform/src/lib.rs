//! Heterogeneous tiled-MPSoC platform model.
//!
//! This crate is the hardware substrate of the `rtsm` workspace: the tiled
//! architecture of Section 1.1 of the DATE 2008 paper — processing elements
//! (*tiles*) of different types joined by a predictable (guaranteed
//! throughput, bounded latency) Network-on-Chip with a 2D-mesh topology.
//!
//! # Contents
//!
//! * [`TileKind`] / [`Tile`] — heterogeneous processing elements with
//!   clock, compute-slot, memory, and network-interface resources.
//! * [`Platform`] / [`PlatformBuilder`] — a mesh of routers with tiles
//!   attached, reproducing the paper's Figure 2 ([`paper::paper_platform`]).
//! * [`routing`] — capacity-constrained shortest-path routing over the NoC's
//!   directed links (step 3 of the mapping algorithm).
//! * [`PlatformState`] — the run-time occupancy ledger: which resources are
//!   claimed by which application (the paper's core motivation is that this
//!   is only known at run time).
//! * [`PlatformTransaction`] — staged, all-or-nothing mutation of the
//!   ledger: the single audited claim/release path that admission, stop,
//!   and migration are built on.
//! * [`EnergyModel`] — processing + communication energy accounting.
//!
//! # Example
//!
//! ```
//! use rtsm_platform::{paper::paper_platform, routing::route};
//!
//! let platform = paper_platform();
//! let state = platform.initial_state();
//! let arm1 = platform.tile_by_name("ARM1").unwrap();
//! let mont1 = platform.tile_by_name("MONTIUM1").unwrap();
//! let path = route(&platform, &state, arm1, mont1, 1_000).unwrap();
//! assert_eq!(path.hops(), platform.manhattan(arm1, mont1));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod energy;
pub mod error;
pub mod paper;
pub mod render;
pub mod routing;
pub mod state;
pub mod tile;
pub mod topology;
pub mod transaction;

pub use energy::EnergyModel;
pub use error::PlatformError;
pub use routing::{route, route_xy, Path, RouteScratch, RoutingPolicy};
pub use state::{Fragmentation, PlatformState, TileClaim};
pub use tile::{Tile, TileId, TileKind};
pub use topology::{AdjEntry, Coord, Link, LinkId, NocParams, Platform, PlatformBuilder};
pub use transaction::PlatformTransaction;
