//! Tiles: heterogeneous processing elements with their NoC interface.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The type of processing element on a tile.
///
/// The paper's case study uses ARM general-purpose cores and MONTIUM
/// coarse-grained reconfigurable cores; `Dsp`/`Fpga` widen the palette for
/// synthetic workloads and [`TileKind::Other`] gives an open namespace.
/// `AdcSource` and `Sink` model the fixed stream endpoints of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TileKind {
    /// General-purpose embedded core (paper: ARM926 with cache).
    Arm,
    /// Coarse-grained reconfigurable core (paper: MONTIUM).
    Montium,
    /// Dedicated DSP core (synthetic workloads).
    Dsp,
    /// Fine-grained reconfigurable fabric (synthetic workloads).
    Fpga,
    /// Analog-to-digital stream source (the paper's `A/D` tile).
    AdcSource,
    /// Stream sink (the paper's `Sink` tile).
    Sink,
    /// Any other tile type, distinguished by tag.
    Other(u8),
}

impl TileKind {
    /// True for tile kinds that execute application processes (as opposed to
    /// fixed stream endpoints).
    pub fn is_processing(&self) -> bool {
        !matches!(self, TileKind::AdcSource | TileKind::Sink)
    }
}

impl fmt::Display for TileKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TileKind::Arm => write!(f, "ARM"),
            TileKind::Montium => write!(f, "MONTIUM"),
            TileKind::Dsp => write!(f, "DSP"),
            TileKind::Fpga => write!(f, "FPGA"),
            TileKind::AdcSource => write!(f, "A/D"),
            TileKind::Sink => write!(f, "Sink"),
            TileKind::Other(tag) => write!(f, "T{tag}"),
        }
    }
}

/// Identifier of a tile within a [`crate::Platform`].
///
/// Tile ids are dense indices in insertion order; the mapper's first-fit
/// packing (step 1) iterates tiles in this order, which is why the paper
/// instance inserts `ARM1, ARM2, MONTIUM1, MONTIUM2, …`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TileId(pub(crate) usize);

impl TileId {
    /// Index of this tile in the platform's tile list.
    pub fn index(&self) -> usize {
        self.0
    }

    /// Builds a `TileId` from a raw index. The caller must ensure the index
    /// belongs to the intended platform.
    pub fn from_index(index: usize) -> Self {
        TileId(index)
    }
}

impl fmt::Display for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A tile: a processing element plus its network interface.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tile {
    /// Human-readable name (e.g. `ARM1`).
    pub name: String,
    /// Processing-element type.
    pub kind: TileKind,
    /// Position of the tile's router in the mesh.
    pub position: crate::topology::Coord,
    /// Clock frequency in MHz (cycle time = `1e6/clock_mhz` ps).
    pub clock_mhz: u32,
    /// Maximum number of processes this tile can host simultaneously.
    pub compute_slots: u32,
    /// Data memory available for implementation state and stream buffers,
    /// in bytes.
    pub memory_bytes: u64,
    /// Network-interface injection bandwidth (words/second).
    pub ni_injection: u64,
    /// Network-interface ejection bandwidth (words/second).
    pub ni_ejection: u64,
}

impl Tile {
    /// Cycle time in picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `clock_mhz` is zero.
    pub fn cycle_time_ps(&self) -> u64 {
        assert!(self.clock_mhz > 0, "tile clock must be positive");
        1_000_000 / u64::from(self.clock_mhz)
    }

    /// Clock cycles available in `period_ps` picoseconds (floor).
    pub fn cycles_per_period(&self, period_ps: u64) -> u64 {
        period_ps / self.cycle_time_ps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Coord;

    fn tile(kind: TileKind) -> Tile {
        Tile {
            name: "t".into(),
            kind,
            position: Coord { x: 0, y: 0 },
            clock_mhz: 200,
            compute_slots: 1,
            memory_bytes: 64 * 1024,
            ni_injection: 200_000_000,
            ni_ejection: 200_000_000,
        }
    }

    #[test]
    fn cycle_time_from_clock() {
        assert_eq!(tile(TileKind::Arm).cycle_time_ps(), 5_000);
        // 4 µs period at 200 MHz = 800 cycles (the paper-instance budget).
        assert_eq!(tile(TileKind::Arm).cycles_per_period(4_000_000), 800);
    }

    #[test]
    fn processing_predicate() {
        assert!(tile(TileKind::Arm).kind.is_processing());
        assert!(tile(TileKind::Montium).kind.is_processing());
        assert!(!TileKind::AdcSource.is_processing());
        assert!(!TileKind::Sink.is_processing());
        assert!(TileKind::Other(3).is_processing());
    }

    #[test]
    fn kind_display() {
        assert_eq!(TileKind::Montium.to_string(), "MONTIUM");
        assert_eq!(TileKind::Other(7).to_string(), "T7");
    }
}
