//! Mesh topology: routers, directed links, tiles, and the platform builder.

use crate::error::PlatformError;
use crate::state::PlatformState;
use crate::tile::{Tile, TileId, TileKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A router coordinate in the 2D mesh (`x` grows right, `y` grows down).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Coord {
    /// Column.
    pub x: u16,
    /// Row.
    pub y: u16,
}

impl Coord {
    /// Manhattan distance to `other` — the paper's step-2 cost metric.
    pub fn manhattan(&self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// Identifier of a directed router-to-router link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub(crate) usize);

impl LinkId {
    /// Index of this link in the platform's link list.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// A directed link between two adjacent routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// Upstream router.
    pub from: Coord,
    /// Downstream router.
    pub to: Coord,
    /// Guaranteed-throughput capacity in words/second.
    pub capacity: u64,
}

/// NoC-wide parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NocParams {
    /// Router traversal worst case in router-clock cycles (the paper's
    /// round-robin arbitration bound of 4).
    pub hop_latency_cycles: u64,
    /// Router clock in MHz.
    pub clock_mhz: u32,
    /// Capacity of every mesh link in words/second.
    pub link_capacity: u64,
}

impl Default for NocParams {
    fn default() -> Self {
        NocParams {
            hop_latency_cycles: 4,
            clock_mhz: 200,
            link_capacity: 200_000_000,
        }
    }
}

impl NocParams {
    /// Router cycle time in picoseconds.
    pub fn cycle_time_ps(&self) -> u64 {
        1_000_000 / u64::from(self.clock_mhz)
    }
}

/// One outgoing edge of a router in the precomputed adjacency table: the
/// neighbouring router and the directed link towards it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdjEntry {
    /// The neighbouring router.
    pub to: Coord,
    /// The directed link from the owning router to [`AdjEntry::to`].
    pub link: LinkId,
}

/// An immutable MPSoC platform: a `width × height` router mesh with tiles
/// attached to (a subset of) routers.
///
/// Run-time mutable resource state lives in [`PlatformState`], never here,
/// so one `Platform` can serve many concurrent what-if explorations.
///
/// Besides the tile and link lists, the platform carries derived lookup
/// tables built once at construction: a flat CSR adjacency table
/// ([`Platform::adjacency`]) that resolves a router's neighbours and their
/// directed links without hashing, and a name index making
/// [`Platform::tile_by_name`] O(1). Both are rebuilt on deserialization.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(from = "PlatformSerde", into = "PlatformSerde")]
pub struct Platform {
    width: u16,
    height: u16,
    noc: NocParams,
    tiles: Vec<Tile>,
    links: Vec<Link>,
    link_index: HashMap<(Coord, Coord), LinkId>,
    tile_at: HashMap<Coord, TileId>,
    tile_by_name: HashMap<String, TileId>,
    /// CSR offsets: router `r`'s adjacency is `adj[adj_offsets[r] .. adj_offsets[r+1]]`,
    /// routers indexed row-major (`y * width + x`). Length `width*height + 1`.
    adj_offsets: Vec<u32>,
    /// CSR payload: neighbour coords and directed links, in the same
    /// west/east/north/south order [`Platform::neighbours`] yields.
    adj: Vec<AdjEntry>,
}

/// Builds the derived lookup tables (CSR adjacency and name index) shared
/// by `PlatformBuilder::build` and deserialization.
fn derived_tables(
    width: u16,
    height: u16,
    tiles: &[Tile],
    link_index: &HashMap<(Coord, Coord), LinkId>,
) -> (HashMap<String, TileId>, Vec<u32>, Vec<AdjEntry>) {
    // First insertion wins so duplicate names resolve to the lowest tile
    // id, matching the linear scan this index replaced.
    let mut tile_by_name: HashMap<String, TileId> = HashMap::with_capacity(tiles.len());
    for (i, t) in tiles.iter().enumerate() {
        tile_by_name.entry(t.name.clone()).or_insert(TileId(i));
    }
    let n_routers = width as usize * height as usize;
    let mut adj_offsets = Vec::with_capacity(n_routers + 1);
    let mut adj = Vec::with_capacity(4 * n_routers);
    adj_offsets.push(0u32);
    for y in 0..height {
        for x in 0..width {
            let here = Coord { x, y };
            // Same order as `Platform::neighbours`: west, east, north, south.
            let (xi, yi) = (x as i32, y as i32);
            for (nx, ny) in [(xi - 1, yi), (xi + 1, yi), (xi, yi - 1), (xi, yi + 1)] {
                if nx >= 0 && ny >= 0 && (nx as u16) < width && (ny as u16) < height {
                    let there = Coord {
                        x: nx as u16,
                        y: ny as u16,
                    };
                    if let Some(&link) = link_index.get(&(here, there)) {
                        adj.push(AdjEntry { to: there, link });
                    }
                }
            }
            adj_offsets.push(adj.len() as u32);
        }
    }
    (tile_by_name, adj_offsets, adj)
}

/// Serde shadow of [`Platform`]: the coordinate-keyed lookup maps are
/// derived data and are rebuilt on deserialization (JSON requires string
/// keys).
#[derive(Serialize, Deserialize)]
#[serde(rename = "Platform")]
struct PlatformSerde {
    width: u16,
    height: u16,
    noc: NocParams,
    tiles: Vec<Tile>,
    links: Vec<Link>,
}

impl From<Platform> for PlatformSerde {
    fn from(p: Platform) -> Self {
        PlatformSerde {
            width: p.width,
            height: p.height,
            noc: p.noc,
            tiles: p.tiles,
            links: p.links,
        }
    }
}

impl From<PlatformSerde> for Platform {
    fn from(s: PlatformSerde) -> Self {
        let link_index = s
            .links
            .iter()
            .enumerate()
            .map(|(i, l)| ((l.from, l.to), LinkId(i)))
            .collect();
        let tile_at = s
            .tiles
            .iter()
            .enumerate()
            .map(|(i, t)| (t.position, TileId(i)))
            .collect();
        let (tile_by_name, adj_offsets, adj) =
            derived_tables(s.width, s.height, &s.tiles, &link_index);
        Platform {
            width: s.width,
            height: s.height,
            noc: s.noc,
            tiles: s.tiles,
            links: s.links,
            link_index,
            tile_at,
            tile_by_name,
            adj_offsets,
            adj,
        }
    }
}

impl Platform {
    /// Mesh width in routers.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Mesh height in routers.
    pub fn height(&self) -> u16 {
        self.height
    }

    /// NoC parameters.
    pub fn noc(&self) -> &NocParams {
        &self.noc
    }

    /// Number of tiles.
    pub fn n_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// Number of directed links.
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// The tile with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a tile of this platform.
    pub fn tile(&self, id: TileId) -> &Tile {
        &self.tiles[id.0]
    }

    /// The link with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a link of this platform.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    /// Iterates over `(id, tile)` pairs in insertion (first-fit) order.
    pub fn tiles(&self) -> impl Iterator<Item = (TileId, &Tile)> {
        self.tiles.iter().enumerate().map(|(i, t)| (TileId(i), t))
    }

    /// Iterates over `(id, link)` pairs.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link)> {
        self.links.iter().enumerate().map(|(i, l)| (LinkId(i), l))
    }

    /// Tiles of the given kind, in id order.
    pub fn tiles_of_kind(&self, kind: TileKind) -> impl Iterator<Item = (TileId, &Tile)> {
        self.tiles().filter(move |(_, t)| t.kind == kind)
    }

    /// Looks a tile up by name (O(1) via the name index built at
    /// construction).
    pub fn tile_by_name(&self, name: &str) -> Option<TileId> {
        self.tile_by_name.get(name).copied()
    }

    /// The tile attached to the router at `coord`, if any.
    pub fn tile_at(&self, coord: Coord) -> Option<TileId> {
        self.tile_at.get(&coord).copied()
    }

    /// The directed link from `from` to `to` (adjacent routers only).
    pub fn link_between(&self, from: Coord, to: Coord) -> Option<LinkId> {
        self.link_index.get(&(from, to)).copied()
    }

    /// Manhattan distance between two tiles' routers.
    ///
    /// # Panics
    ///
    /// Panics if either id is not a tile of this platform.
    pub fn manhattan(&self, a: TileId, b: TileId) -> u32 {
        self.tiles[a.0].position.manhattan(self.tiles[b.0].position)
    }

    /// A fresh, empty occupancy ledger for this platform.
    pub fn initial_state(&self) -> PlatformState {
        PlatformState::new(self)
    }

    /// Neighbouring router coordinates of `c` (up to 4).
    pub fn neighbours(&self, c: Coord) -> impl Iterator<Item = Coord> + '_ {
        self.adjacency(c).iter().map(|e| e.to)
    }

    /// Number of routers in the mesh (`width × height`).
    pub fn n_routers(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Dense row-major index of the router at `c` — the key into the
    /// adjacency table and the router-indexed scratch buffers of
    /// [`crate::routing::RouteScratch`].
    pub fn router_index(&self, c: Coord) -> usize {
        c.y as usize * self.width as usize + c.x as usize
    }

    /// The precomputed outgoing edges of the router at `c`: neighbour
    /// coordinates and directed links, in west/east/north/south order.
    ///
    /// This is the flat CSR table the routing hot path walks instead of
    /// probing the `(Coord, Coord) → LinkId` hash map per edge.
    pub fn adjacency(&self, c: Coord) -> &[AdjEntry] {
        let r = self.router_index(c);
        let lo = self.adj_offsets[r] as usize;
        let hi = self.adj_offsets[r + 1] as usize;
        &self.adj[lo..hi]
    }
}

/// Builder for [`Platform`].
///
/// # Example
///
/// ```
/// use rtsm_platform::{PlatformBuilder, TileKind, Coord};
///
/// let platform = PlatformBuilder::mesh(2, 2)
///     .tile("cpu0", TileKind::Arm, Coord { x: 0, y: 0 })
///     .tile("dsp0", TileKind::Dsp, Coord { x: 1, y: 1 })
///     .build()
///     .unwrap();
/// assert_eq!(platform.n_tiles(), 2);
/// // 2x2 mesh: 4 bidirectional mesh edges = 8 directed links.
/// assert_eq!(platform.n_links(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct PlatformBuilder {
    width: u16,
    height: u16,
    noc: NocParams,
    tiles: Vec<Tile>,
    default_clock_mhz: u32,
    default_slots: u32,
    default_memory: u64,
    default_ni: u64,
}

impl PlatformBuilder {
    /// Starts a `width × height` router mesh with default NoC parameters.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn mesh(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        PlatformBuilder {
            width,
            height,
            noc: NocParams::default(),
            tiles: Vec::new(),
            default_clock_mhz: 200,
            default_slots: 1,
            default_memory: 128 * 1024,
            default_ni: 200_000_000,
        }
    }

    /// Overrides the NoC parameters.
    pub fn noc(mut self, noc: NocParams) -> Self {
        self.noc = noc;
        self
    }

    /// Sets defaults applied by [`PlatformBuilder::tile`].
    pub fn tile_defaults(
        mut self,
        clock_mhz: u32,
        slots: u32,
        memory_bytes: u64,
        ni_bandwidth: u64,
    ) -> Self {
        self.default_clock_mhz = clock_mhz;
        self.default_slots = slots;
        self.default_memory = memory_bytes;
        self.default_ni = ni_bandwidth;
        self
    }

    /// Adds a tile with the builder's default resources.
    pub fn tile(self, name: impl Into<String>, kind: TileKind, position: Coord) -> Self {
        let tile = Tile {
            name: name.into(),
            kind,
            position,
            clock_mhz: self.default_clock_mhz,
            compute_slots: self.default_slots,
            memory_bytes: self.default_memory,
            ni_injection: self.default_ni,
            ni_ejection: self.default_ni,
        };
        self.tile_custom(tile)
    }

    /// Adds a fully specified tile.
    pub fn tile_custom(mut self, tile: Tile) -> Self {
        self.tiles.push(tile);
        self
    }

    /// Builds the platform.
    ///
    /// # Errors
    ///
    /// * [`PlatformError::OutOfMesh`] if a tile's position is outside the
    ///   mesh.
    /// * [`PlatformError::DuplicatePosition`] if two tiles share a router.
    pub fn build(self) -> Result<Platform, PlatformError> {
        let mut tile_at = HashMap::new();
        for (i, t) in self.tiles.iter().enumerate() {
            if t.position.x >= self.width || t.position.y >= self.height {
                return Err(PlatformError::OutOfMesh {
                    coord: t.position,
                    width: self.width,
                    height: self.height,
                });
            }
            if tile_at.insert(t.position, TileId(i)).is_some() {
                return Err(PlatformError::DuplicatePosition(t.position));
            }
        }
        let mut links = Vec::new();
        let mut link_index = HashMap::new();
        for y in 0..self.height {
            for x in 0..self.width {
                let here = Coord { x, y };
                // East and south neighbours; both directions.
                for (nx, ny) in [(x + 1, y), (x, y + 1)] {
                    if nx < self.width && ny < self.height {
                        let there = Coord { x: nx, y: ny };
                        for (a, b) in [(here, there), (there, here)] {
                            let id = LinkId(links.len());
                            links.push(Link {
                                from: a,
                                to: b,
                                capacity: self.noc.link_capacity,
                            });
                            link_index.insert((a, b), id);
                        }
                    }
                }
            }
        }
        let (tile_by_name, adj_offsets, adj) =
            derived_tables(self.width, self.height, &self.tiles, &link_index);
        Ok(Platform {
            width: self.width,
            height: self.height,
            noc: self.noc,
            tiles: self.tiles,
            links,
            link_index,
            tile_at,
            tile_by_name,
            adj_offsets,
            adj,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Platform {
        PlatformBuilder::mesh(3, 3)
            .tile("a", TileKind::Arm, Coord { x: 0, y: 0 })
            .tile("b", TileKind::Montium, Coord { x: 2, y: 2 })
            .build()
            .unwrap()
    }

    #[test]
    fn mesh_link_count() {
        // 3x3 mesh: 12 undirected edges = 24 directed links.
        assert_eq!(small().n_links(), 24);
    }

    #[test]
    fn manhattan_between_tiles() {
        let p = small();
        let a = p.tile_by_name("a").unwrap();
        let b = p.tile_by_name("b").unwrap();
        assert_eq!(p.manhattan(a, b), 4);
    }

    #[test]
    fn out_of_mesh_rejected() {
        let err = PlatformBuilder::mesh(2, 2)
            .tile("x", TileKind::Arm, Coord { x: 5, y: 0 })
            .build()
            .unwrap_err();
        assert!(matches!(err, PlatformError::OutOfMesh { .. }));
    }

    #[test]
    fn duplicate_position_rejected() {
        let err = PlatformBuilder::mesh(2, 2)
            .tile("x", TileKind::Arm, Coord { x: 0, y: 0 })
            .tile("y", TileKind::Arm, Coord { x: 0, y: 0 })
            .build()
            .unwrap_err();
        assert!(matches!(err, PlatformError::DuplicatePosition(_)));
    }

    #[test]
    fn neighbours_clipped_at_borders() {
        let p = small();
        let corner: Vec<Coord> = p.neighbours(Coord { x: 0, y: 0 }).collect();
        assert_eq!(corner.len(), 2);
        let centre: Vec<Coord> = p.neighbours(Coord { x: 1, y: 1 }).collect();
        assert_eq!(centre.len(), 4);
    }

    #[test]
    fn link_lookup_is_directional() {
        let p = small();
        let a = Coord { x: 0, y: 0 };
        let b = Coord { x: 1, y: 0 };
        let ab = p.link_between(a, b).unwrap();
        let ba = p.link_between(b, a).unwrap();
        assert_ne!(ab, ba);
        assert_eq!(p.link(ab).from, a);
        assert_eq!(p.link(ba).from, b);
        // Non-adjacent routers have no direct link.
        assert!(p.link_between(a, Coord { x: 2, y: 0 }).is_none());
    }

    #[test]
    fn adjacency_matches_link_index_everywhere() {
        let p = small();
        for y in 0..p.height() {
            for x in 0..p.width() {
                let here = Coord { x, y };
                let entries = p.adjacency(here);
                let expected: Vec<Coord> = {
                    let (xi, yi) = (x as i32, y as i32);
                    [(xi - 1, yi), (xi + 1, yi), (xi, yi - 1), (xi, yi + 1)]
                        .into_iter()
                        .filter(|&(nx, ny)| {
                            nx >= 0
                                && ny >= 0
                                && (nx as u16) < p.width()
                                && (ny as u16) < p.height()
                        })
                        .map(|(nx, ny)| Coord {
                            x: nx as u16,
                            y: ny as u16,
                        })
                        .collect()
                };
                assert_eq!(
                    entries.iter().map(|e| e.to).collect::<Vec<_>>(),
                    expected,
                    "adjacency order at {here}"
                );
                for e in entries {
                    assert_eq!(p.link_between(here, e.to), Some(e.link));
                }
            }
        }
    }

    #[test]
    fn name_index_prefers_first_duplicate() {
        let p = PlatformBuilder::mesh(2, 1)
            .tile("dup", TileKind::Arm, Coord { x: 0, y: 0 })
            .tile("dup", TileKind::Arm, Coord { x: 1, y: 0 })
            .build()
            .unwrap();
        assert_eq!(p.tile_by_name("dup"), Some(TileId(0)));
        assert_eq!(p.tile_by_name("missing"), None);
    }

    #[test]
    fn tiles_of_kind_in_id_order() {
        let p = PlatformBuilder::mesh(3, 1)
            .tile("m1", TileKind::Montium, Coord { x: 0, y: 0 })
            .tile("a1", TileKind::Arm, Coord { x: 1, y: 0 })
            .tile("m2", TileKind::Montium, Coord { x: 2, y: 0 })
            .build()
            .unwrap();
        let monts: Vec<&str> = p
            .tiles_of_kind(TileKind::Montium)
            .map(|(_, t)| t.name.as_str())
            .collect();
        assert_eq!(monts, vec!["m1", "m2"]);
    }
}
