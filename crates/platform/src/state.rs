//! The run-time occupancy ledger.
//!
//! The DATE 2008 paper's central argument is that resource availability is
//! only known when an application is started. [`PlatformState`] is that
//! knowledge: which compute slots, memory, NI bandwidth and link bandwidth
//! are in use. The spatial mapper works against a `PlatformState`, and
//! multi-application scenarios thread one ledger through a sequence of
//! mapping requests.

use crate::error::PlatformError;
use crate::tile::{TileId, TileKind};
use crate::topology::{LinkId, Platform};
use serde::{Deserialize, Serialize};

/// A claim of tile-local resources by one process implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileClaim {
    /// Compute slots taken (normally 1).
    pub slots: u32,
    /// Data memory taken, in bytes.
    pub memory_bytes: u64,
    /// Processor time taken, in cycles per second (WCET cycles per period ÷
    /// period).
    pub cycles_per_second: u64,
    /// NI injection bandwidth taken, in words per second.
    pub injection: u64,
    /// NI ejection bandwidth taken, in words per second.
    pub ejection: u64,
}

/// Mutable resource usage of a [`Platform`].
///
/// All mutating operations are exact inverses of each other
/// (`claim_tile`/`release_tile`, `allocate_link`/`release_link`), a property
/// the test-suite checks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlatformState {
    used_slots: Vec<u32>,
    used_memory: Vec<u64>,
    used_cycles: Vec<u64>,
    used_injection: Vec<u64>,
    used_ejection: Vec<u64>,
    used_links: Vec<u64>,
    failed_tiles: Vec<bool>,
    failed_links: Vec<bool>,
}

impl PlatformState {
    /// An empty ledger for `platform`.
    pub fn new(platform: &Platform) -> Self {
        let n = platform.n_tiles();
        let m = platform.n_links();
        PlatformState {
            used_slots: vec![0; n],
            used_memory: vec![0; n],
            used_cycles: vec![0; n],
            used_injection: vec![0; n],
            used_ejection: vec![0; n],
            used_links: vec![0; m],
            failed_tiles: vec![false; n],
            failed_links: vec![false; m],
        }
    }

    /// True if `claim` fits on `tile` given current usage.
    ///
    /// A failed tile fits nothing: every admission path funnels through
    /// this check, so quarantining here makes all mapping algorithms and
    /// transactions refuse failed tiles without any change on their side.
    pub fn fits_tile(&self, platform: &Platform, tile: TileId, claim: &TileClaim) -> bool {
        !self.failed_tiles[tile.index()] && self.tile_has_capacity(platform, tile, claim)
    }

    /// The capacity half of [`PlatformState::fits_tile`], ignoring health.
    fn tile_has_capacity(&self, platform: &Platform, tile: TileId, claim: &TileClaim) -> bool {
        let t = platform.tile(tile);
        let i = tile.index();
        let cycle_budget = u64::from(t.clock_mhz) * 1_000_000;
        self.used_slots[i] + claim.slots <= t.compute_slots
            && self.used_memory[i] + claim.memory_bytes <= t.memory_bytes
            && self.used_cycles[i] + claim.cycles_per_second <= cycle_budget
            && self.used_injection[i] + claim.injection <= t.ni_injection
            && self.used_ejection[i] + claim.ejection <= t.ni_ejection
    }

    /// Claims `claim` on `tile`.
    ///
    /// # Errors
    ///
    /// [`PlatformError::InsufficientResource`] if the claim does not fit;
    /// the ledger is unchanged in that case.
    pub fn claim_tile(
        &mut self,
        platform: &Platform,
        tile: TileId,
        claim: &TileClaim,
    ) -> Result<(), PlatformError> {
        if !self.fits_tile(platform, tile, claim) {
            return Err(PlatformError::InsufficientResource {
                tile,
                resource: self.first_missing(platform, tile, claim),
            });
        }
        let i = tile.index();
        self.used_slots[i] += claim.slots;
        self.used_memory[i] += claim.memory_bytes;
        self.used_cycles[i] += claim.cycles_per_second;
        self.used_injection[i] += claim.injection;
        self.used_ejection[i] += claim.ejection;
        Ok(())
    }

    /// Releases a claim previously made with [`PlatformState::claim_tile`].
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownClaim`] if the release would drive any
    /// counter negative (the claim was never made); the ledger is unchanged.
    pub fn release_tile(&mut self, tile: TileId, claim: &TileClaim) -> Result<(), PlatformError> {
        let i = tile.index();
        if self.used_slots[i] < claim.slots
            || self.used_memory[i] < claim.memory_bytes
            || self.used_cycles[i] < claim.cycles_per_second
            || self.used_injection[i] < claim.injection
            || self.used_ejection[i] < claim.ejection
        {
            return Err(PlatformError::UnknownClaim);
        }
        self.used_slots[i] -= claim.slots;
        self.used_memory[i] -= claim.memory_bytes;
        self.used_cycles[i] -= claim.cycles_per_second;
        self.used_injection[i] -= claim.injection;
        self.used_ejection[i] -= claim.ejection;
        Ok(())
    }

    fn first_missing(&self, platform: &Platform, tile: TileId, claim: &TileClaim) -> &'static str {
        let t = platform.tile(tile);
        let i = tile.index();
        if self.failed_tiles[i] {
            "tile failed"
        } else if self.used_slots[i] + claim.slots > t.compute_slots {
            "compute slots"
        } else if self.used_memory[i] + claim.memory_bytes > t.memory_bytes {
            "memory"
        } else if self.used_cycles[i] + claim.cycles_per_second > u64::from(t.clock_mhz) * 1_000_000
        {
            "processor cycles"
        } else if self.used_injection[i] + claim.injection > t.ni_injection {
            "NI injection bandwidth"
        } else {
            "NI ejection bandwidth"
        }
    }

    /// Residual capacity of `link` in words/second.
    ///
    /// A failed link has residual 0, so every route through it is refused
    /// by [`PlatformState::allocate_link`] — routes through failed links
    /// are invalid without any router-side special-casing.
    pub fn residual_link(&self, platform: &Platform, link: LinkId) -> u64 {
        if self.failed_links[link.index()] {
            return 0;
        }
        platform.link(link).capacity - self.used_links[link.index()]
    }

    /// Reserves `demand` words/second on `link`.
    ///
    /// # Errors
    ///
    /// [`PlatformError::LinkAccounting`] if the link lacks capacity.
    pub fn allocate_link(
        &mut self,
        platform: &Platform,
        link: LinkId,
        demand: u64,
    ) -> Result<(), PlatformError> {
        if self.residual_link(platform, link) < demand {
            return Err(PlatformError::LinkAccounting {
                detail: format!(
                    "link {:?} has {} words/s free, {} requested",
                    platform.link(link),
                    self.residual_link(platform, link),
                    demand
                ),
            });
        }
        self.used_links[link.index()] += demand;
        Ok(())
    }

    /// Releases `demand` words/second on `link`.
    ///
    /// # Errors
    ///
    /// [`PlatformError::LinkAccounting`] if more is released than allocated.
    pub fn release_link(&mut self, link: LinkId, demand: u64) -> Result<(), PlatformError> {
        if self.used_links[link.index()] < demand {
            return Err(PlatformError::LinkAccounting {
                detail: format!("releasing {demand} words/s exceeds allocation"),
            });
        }
        self.used_links[link.index()] -= demand;
        Ok(())
    }

    /// Used compute slots of `tile`.
    pub fn used_slots(&self, tile: TileId) -> u32 {
        self.used_slots[tile.index()]
    }

    /// Used memory of `tile`, in bytes.
    pub fn used_memory(&self, tile: TileId) -> u64 {
        self.used_memory[tile.index()]
    }

    /// Free compute slots of `tile`.
    pub fn free_slots(&self, platform: &Platform, tile: TileId) -> u32 {
        platform.tile(tile).compute_slots - self.used_slots[tile.index()]
    }

    /// Residual NI injection bandwidth of `tile`, in words/second.
    pub fn residual_injection(&self, platform: &Platform, tile: TileId) -> u64 {
        platform.tile(tile).ni_injection - self.used_injection[tile.index()]
    }

    /// Residual NI ejection bandwidth of `tile`, in words/second.
    pub fn residual_ejection(&self, platform: &Platform, tile: TileId) -> u64 {
        platform.tile(tile).ni_ejection - self.used_ejection[tile.index()]
    }

    // --- Health layer -----------------------------------------------------
    //
    // A failed tile is claimable by no one (`fits_tile` is false) and a
    // failed link has residual 0, but *existing* claims survive both ways:
    // releases stay legal on failed resources, so an evacuation can release
    // a victim's claims from the exact ledger they were made against. The
    // fail/repair bits are health metadata, not usage — they never change
    // the usage counters themselves.

    /// Marks `tile` as failed. Returns `true` if the tile was healthy
    /// before (the call changed state).
    pub fn fail_tile(&mut self, tile: TileId) -> bool {
        !std::mem::replace(&mut self.failed_tiles[tile.index()], true)
    }

    /// Marks `tile` as healthy again. Returns `true` if the tile was
    /// failed before (the call changed state).
    pub fn repair_tile(&mut self, tile: TileId) -> bool {
        std::mem::replace(&mut self.failed_tiles[tile.index()], false)
    }

    /// Marks `link` as failed. Returns `true` if the link was healthy
    /// before (the call changed state).
    pub fn fail_link(&mut self, link: LinkId) -> bool {
        !std::mem::replace(&mut self.failed_links[link.index()], true)
    }

    /// Marks `link` as healthy again. Returns `true` if the link was
    /// failed before (the call changed state).
    pub fn repair_link(&mut self, link: LinkId) -> bool {
        std::mem::replace(&mut self.failed_links[link.index()], false)
    }

    /// True if `tile` is currently marked failed.
    pub fn is_tile_failed(&self, tile: TileId) -> bool {
        self.failed_tiles[tile.index()]
    }

    /// True if `link` is currently marked failed.
    pub fn is_link_failed(&self, link: LinkId) -> bool {
        self.failed_links[link.index()]
    }

    /// True if any tile or link is currently marked failed.
    pub fn any_failed(&self) -> bool {
        self.failed_tiles.iter().any(|&f| f) || self.failed_links.iter().any(|&f| f)
    }

    /// Number of tiles currently marked failed.
    pub fn failed_tile_count(&self) -> u32 {
        self.failed_tiles.iter().filter(|&&f| f).count() as u32
    }

    /// Compute slots on tiles currently marked failed (quarantined
    /// capacity, whether or not it was in use when the tile failed).
    pub fn failed_slot_capacity(&self, platform: &Platform) -> u32 {
        (0..platform.n_tiles())
            .filter(|&i| self.failed_tiles[i])
            .map(|i| platform.tile(TileId::from_index(i)).compute_slots)
            .sum()
    }

    /// Re-applies a claim previously released from this ledger, bypassing
    /// the health check (capacity checks still apply).
    ///
    /// Only for transaction rollback: aborting an evacuation must be able
    /// to put a victim's claims back onto the failed tile they were
    /// released from, which [`PlatformState::claim_tile`] — correctly —
    /// refuses.
    pub(crate) fn restore_tile(
        &mut self,
        platform: &Platform,
        tile: TileId,
        claim: &TileClaim,
    ) -> Result<(), PlatformError> {
        if !self.tile_has_capacity(platform, tile, claim) {
            return Err(PlatformError::InsufficientResource {
                tile,
                resource: self.first_missing(platform, tile, claim),
            });
        }
        let i = tile.index();
        self.used_slots[i] += claim.slots;
        self.used_memory[i] += claim.memory_bytes;
        self.used_cycles[i] += claim.cycles_per_second;
        self.used_injection[i] += claim.injection;
        self.used_ejection[i] += claim.ejection;
        Ok(())
    }

    /// Re-applies a link allocation previously released from this ledger,
    /// bypassing the health check (capacity still applies). Rollback-only,
    /// like [`PlatformState::restore_tile`].
    pub(crate) fn restore_link(
        &mut self,
        platform: &Platform,
        link: LinkId,
        demand: u64,
    ) -> Result<(), PlatformError> {
        let i = link.index();
        let free = platform.link(link).capacity - self.used_links[i];
        if free < demand {
            return Err(PlatformError::LinkAccounting {
                detail: format!("restoring {demand} words/s exceeds capacity ({free} free)"),
            });
        }
        self.used_links[i] += demand;
        Ok(())
    }

    /// How fragmented the free compute capacity is (see [`Fragmentation`]).
    ///
    /// Two tiles belong to the same free region when both have at least one
    /// free compute slot and their routers are mesh neighbours. A platform
    /// whose free slots all sit in one contiguous region scores 0‰; free
    /// capacity scattered into many small islands scores high — exactly the
    /// situation where an arriving application is rejected although enough
    /// total capacity exists, and where migrating a running application can
    /// recover the admission.
    pub fn fragmentation(&self, platform: &Platform) -> Fragmentation {
        let n = platform.n_tiles();
        let free: Vec<u32> = (0..n)
            .map(|i| {
                if self.failed_tiles[i] {
                    // Quarantined capacity is not free capacity.
                    return 0;
                }
                let tile = platform.tile(TileId::from_index(i));
                tile.compute_slots - self.used_slots[i]
            })
            .collect();
        let free_slots: u32 = free.iter().sum();

        // Largest connected free region (4-neighbourhood over router
        // coordinates), in free slots.
        let mut seen = vec![false; n];
        let mut largest: u32 = 0;
        let mut stack: Vec<usize> = Vec::new();
        for start in 0..n {
            if seen[start] || free[start] == 0 {
                continue;
            }
            let mut region: u32 = 0;
            seen[start] = true;
            stack.push(start);
            while let Some(i) = stack.pop() {
                region += free[i];
                let pos = platform.tile(TileId::from_index(i)).position;
                for neighbour in platform.neighbours(pos) {
                    if let Some(id) = platform.tile_at(neighbour) {
                        let j = id.index();
                        if !seen[j] && free[j] > 0 {
                            seen[j] = true;
                            stack.push(j);
                        }
                    }
                }
            }
            largest = largest.max(region);
        }

        // Gini coefficient of the per-tile free-slot distribution:
        // Σᵢ Σⱼ |xᵢ − xⱼ| / (2 n Σ x), in permille.
        let total = u64::from(free_slots);
        let gini_permille = if total == 0 || n == 0 {
            0
        } else {
            let mut abs_diff_sum: u64 = 0;
            for i in 0..n {
                for j in 0..n {
                    abs_diff_sum += u64::from(free[i].abs_diff(free[j]));
                }
            }
            (abs_diff_sum * 1000 / (2 * n as u64 * total)) as u32
        };

        Fragmentation {
            free_slots,
            largest_free_region_slots: largest,
            fragmentation_permille: (largest * 1000)
                .checked_div(free_slots)
                .map_or(0, |share| 1000 - share),
            free_slot_gini_permille: gini_permille,
        }
    }

    /// Healthy tiles of `kind` with at least one free compute slot, in id
    /// order — the candidate *anchor* positions a cached mapping shape can
    /// be translated to. The same free-capacity notion as
    /// [`PlatformState::fragmentation`] (failed tiles contribute nothing),
    /// exposed per kind so a template match only visits placements whose
    /// anchor could possibly host its process.
    pub fn free_anchor_tiles(&self, platform: &Platform, kind: TileKind) -> Vec<TileId> {
        platform
            .tiles_of_kind(kind)
            .filter(|(id, tile)| {
                !self.failed_tiles[id.index()] && tile.compute_slots > self.used_slots[id.index()]
            })
            .map(|(id, _)| id)
            .collect()
    }
}

/// How scattered a platform's free compute slots are — the measurable
/// counterpart of "the NoC has fragmented", produced by
/// [`PlatformState::fragmentation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fragmentation {
    /// Free compute slots over all tiles.
    pub free_slots: u32,
    /// Free slots in the largest contiguous free region (tiles with free
    /// slots whose routers are mesh-adjacent).
    pub largest_free_region_slots: u32,
    /// `1000 × (1 − largest_region ⁄ free)`: 0‰ when all free capacity is
    /// one contiguous region, approaching 1000‰ as it shatters. 0 when no
    /// slot is free.
    pub fragmentation_permille: u32,
    /// Gini coefficient of the per-tile free-slot distribution, in
    /// permille: 0‰ = evenly spread free capacity, high = a few islands.
    pub free_slot_gini_permille: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::TileKind;
    use crate::topology::{Coord, PlatformBuilder};

    fn platform() -> Platform {
        PlatformBuilder::mesh(2, 1)
            .tile_defaults(200, 2, 1000, 1_000_000)
            .tile("a", TileKind::Arm, Coord { x: 0, y: 0 })
            .tile("b", TileKind::Arm, Coord { x: 1, y: 0 })
            .build()
            .unwrap()
    }

    fn claim() -> TileClaim {
        TileClaim {
            slots: 1,
            memory_bytes: 400,
            cycles_per_second: 50_000_000,
            injection: 100_000,
            ejection: 100_000,
        }
    }

    #[test]
    fn claim_release_roundtrip() {
        let p = platform();
        let t = p.tile_by_name("a").unwrap();
        let mut s = p.initial_state();
        let before = s.clone();
        s.claim_tile(&p, t, &claim()).unwrap();
        assert_eq!(s.used_slots(t), 1);
        s.release_tile(t, &claim()).unwrap();
        assert_eq!(s, before);
    }

    #[test]
    fn overcommit_rejected_without_mutation() {
        let p = platform();
        let t = p.tile_by_name("a").unwrap();
        let mut s = p.initial_state();
        let big = TileClaim {
            memory_bytes: 900,
            ..claim()
        };
        s.claim_tile(&p, t, &big).unwrap();
        let snapshot = s.clone();
        let err = s.claim_tile(&p, t, &big).unwrap_err();
        assert!(matches!(
            err,
            PlatformError::InsufficientResource {
                resource: "memory",
                ..
            }
        ));
        assert_eq!(s, snapshot);
    }

    #[test]
    fn slot_exhaustion_reported() {
        let p = platform();
        let t = p.tile_by_name("a").unwrap();
        let mut s = p.initial_state();
        let slim = TileClaim {
            memory_bytes: 0,
            cycles_per_second: 0,
            injection: 0,
            ejection: 0,
            slots: 1,
        };
        s.claim_tile(&p, t, &slim).unwrap();
        s.claim_tile(&p, t, &slim).unwrap();
        let err = s.claim_tile(&p, t, &slim).unwrap_err();
        assert!(matches!(
            err,
            PlatformError::InsufficientResource {
                resource: "compute slots",
                ..
            }
        ));
    }

    #[test]
    fn unbalanced_release_rejected() {
        let p = platform();
        let t = p.tile_by_name("a").unwrap();
        let mut s = p.initial_state();
        assert!(matches!(
            s.release_tile(t, &claim()),
            Err(PlatformError::UnknownClaim)
        ));
    }

    #[test]
    fn link_allocate_release_roundtrip() {
        let p = platform();
        let (lid, _) = p.links().next().unwrap();
        let mut s = p.initial_state();
        let cap = p.link(lid).capacity;
        s.allocate_link(&p, lid, cap).unwrap();
        assert_eq!(s.residual_link(&p, lid), 0);
        assert!(s.allocate_link(&p, lid, 1).is_err());
        s.release_link(lid, cap).unwrap();
        assert_eq!(s.residual_link(&p, lid), cap);
        assert!(s.release_link(lid, 1).is_err());
    }

    #[test]
    fn fragmentation_tracks_free_slot_islands() {
        use crate::topology::NocParams;
        // A 3×1 strip of single-slot tiles: occupying the middle tile
        // splits the free slots into two islands of one.
        let p = PlatformBuilder::mesh(3, 1)
            .noc(NocParams::default())
            .tile_defaults(200, 1, 1000, 1_000_000)
            .tile("a", TileKind::Arm, Coord { x: 0, y: 0 })
            .tile("b", TileKind::Arm, Coord { x: 1, y: 0 })
            .tile("c", TileKind::Arm, Coord { x: 2, y: 0 })
            .build()
            .unwrap();
        let mut s = p.initial_state();
        let idle = s.fragmentation(&p);
        assert_eq!(idle.free_slots, 3);
        assert_eq!(idle.largest_free_region_slots, 3);
        assert_eq!(idle.fragmentation_permille, 0, "one contiguous region");

        let slot = TileClaim {
            slots: 1,
            memory_bytes: 0,
            cycles_per_second: 0,
            injection: 0,
            ejection: 0,
        };
        s.claim_tile(&p, p.tile_by_name("b").unwrap(), &slot)
            .unwrap();
        let split = s.fragmentation(&p);
        assert_eq!(split.free_slots, 2);
        assert_eq!(split.largest_free_region_slots, 1, "two islands of one");
        assert_eq!(split.fragmentation_permille, 500);
        assert!(split.free_slot_gini_permille > 0);

        for name in ["a", "c"] {
            s.claim_tile(&p, p.tile_by_name(name).unwrap(), &slot)
                .unwrap();
        }
        let full = s.fragmentation(&p);
        assert_eq!(full.free_slots, 0);
        assert_eq!(
            full.fragmentation_permille, 0,
            "nothing free, nothing fragmented"
        );
    }

    #[test]
    fn failed_tile_rejects_claims_but_allows_releases() {
        let p = platform();
        let t = p.tile_by_name("a").unwrap();
        let mut s = p.initial_state();
        s.claim_tile(&p, t, &claim()).unwrap();

        assert!(s.fail_tile(t), "first failure changes state");
        assert!(!s.fail_tile(t), "double failure is a no-op");
        assert!(s.is_tile_failed(t));
        assert!(s.any_failed());
        assert_eq!(s.failed_tile_count(), 1);

        // New claims are quarantined with a distinct diagnosis…
        assert!(!s.fits_tile(&p, t, &claim()));
        let err = s.claim_tile(&p, t, &claim()).unwrap_err();
        assert!(matches!(
            err,
            PlatformError::InsufficientResource {
                resource: "tile failed",
                ..
            }
        ));
        // …but the existing claim can still be evacuated (released).
        s.release_tile(t, &claim()).unwrap();

        assert!(s.repair_tile(t), "repair changes state");
        assert!(!s.repair_tile(t), "double repair is a no-op");
        assert!(!s.any_failed());
        assert!(s.fits_tile(&p, t, &claim()), "repaired tile admits again");
    }

    #[test]
    fn failed_link_has_zero_residual_but_allows_releases() {
        let p = platform();
        let (lid, _) = p.links().next().unwrap();
        let mut s = p.initial_state();
        s.allocate_link(&p, lid, 100).unwrap();

        assert!(s.fail_link(lid));
        assert!(s.is_link_failed(lid));
        assert_eq!(s.residual_link(&p, lid), 0);
        assert!(s.allocate_link(&p, lid, 1).is_err());
        // Evacuation releases the route from the failed link.
        s.release_link(lid, 100).unwrap();

        assert!(s.repair_link(lid));
        assert_eq!(s.residual_link(&p, lid), p.link(lid).capacity);
    }

    #[test]
    fn failed_tiles_are_not_free_capacity() {
        let p = platform();
        let mut s = p.initial_state();
        let healthy = s.fragmentation(&p);
        assert_eq!(healthy.free_slots, 4);

        s.fail_tile(p.tile_by_name("a").unwrap());
        let degraded = s.fragmentation(&p);
        assert_eq!(degraded.free_slots, 2, "quarantined slots are not free");
        assert_eq!(degraded.largest_free_region_slots, 2);
        assert_eq!(s.failed_slot_capacity(&p), 2);
    }

    #[test]
    fn cycle_budget_enforced() {
        let p = platform();
        let t = p.tile_by_name("a").unwrap();
        let mut s = p.initial_state();
        // 200 MHz tile = 200e6 cycles/s budget.
        let heavy = TileClaim {
            cycles_per_second: 150_000_000,
            memory_bytes: 0,
            injection: 0,
            ejection: 0,
            slots: 1,
        };
        s.claim_tile(&p, t, &heavy).unwrap();
        let err = s.claim_tile(&p, t, &heavy).unwrap_err();
        assert!(matches!(
            err,
            PlatformError::InsufficientResource {
                resource: "processor cycles",
                ..
            }
        ));
    }
}
