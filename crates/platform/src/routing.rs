//! Capacity-constrained shortest-path routing — step 3's substrate.
//!
//! "In each iteration for a given channel, a shortest path between the
//! source and destination tile of the channel has to be determined, where
//! only those paths through the interconnect are taken into account which
//! still have enough capacity for the throughput requirement of the current
//! channel." (Section 3, step 3.)
//!
//! # The allocation-free hot path
//!
//! A run-time mapper routes thousands of channels per second, so the search
//! must not pay for setup: edges are resolved through the platform's flat
//! CSR adjacency table ([`Platform::adjacency`]) instead of hashing
//! coordinate pairs, and all Dijkstra working memory lives in a reusable,
//! generation-stamped [`RouteScratch`]. Pass one scratch to repeated
//! [`route_with`] / [`route_xy_with`] / [`RoutingPolicy::route_with`] calls
//! and the search performs zero heap allocation in steady state (the
//! returned [`Path`] is borrowed from the scratch; clone it only when a
//! route is actually kept). The plain [`route`] / [`route_xy`] wrappers
//! allocate a fresh scratch per call for convenience.

use crate::error::PlatformError;
use crate::state::PlatformState;
use crate::tile::TileId;
use crate::topology::{Coord, LinkId, Platform};
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// A routed guaranteed-throughput connection through the NoC.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Path {
    /// Source tile.
    pub from: TileId,
    /// Destination tile.
    pub to: TileId,
    /// Routers traversed, source router first (always ≥ 1 entries).
    pub routers: Vec<Coord>,
    /// Directed links traversed (`routers.len() - 1` entries).
    pub links: Vec<LinkId>,
    /// Reserved bandwidth in words/second.
    pub demand: u64,
}

impl Path {
    /// Number of router-to-router hops (= Manhattan distance for minimal
    /// mesh routes).
    pub fn hops(&self) -> u32 {
        self.links.len() as u32
    }

    /// Number of routers traversed (the router actors of Figure 3).
    pub fn router_count(&self) -> u32 {
        self.routers.len() as u32
    }
}

/// Reusable working memory for the path searches: Dijkstra's distance and
/// predecessor tables, the priority queue, and the result [`Path`] itself.
///
/// Entries are *generation-stamped*: every search bumps a counter and
/// treats entries from older generations as unvisited, so per-call work is
/// proportional to the routers actually touched — no O(mesh) clearing and,
/// once warm, no allocation at all. One scratch may serve platforms of any
/// (and varying) size; the buffers grow to the largest mesh seen.
#[derive(Debug, Clone, Default)]
pub struct RouteScratch {
    /// Current search generation; `stamp[i] == generation` marks router `i`
    /// as visited in this search.
    generation: u32,
    stamp: Vec<u32>,
    /// Best-known hop count per router (valid only when stamped).
    best: Vec<u32>,
    /// Predecessor router index (`u32::MAX` = none; valid only when
    /// stamped).
    prev: Vec<u32>,
    heap: BinaryHeap<std::cmp::Reverse<(u32, (u16, u16))>>,
    /// The most recent search result; its vectors are reused across calls.
    path: Path,
}

impl RouteScratch {
    /// A fresh scratch; buffers are sized on first use.
    pub fn new() -> Self {
        RouteScratch::default()
    }

    /// Prepares for a search over `n_routers` routers: sizes the tables,
    /// advances the generation, and clears the queue (keeping capacity).
    fn begin(&mut self, n_routers: usize) {
        if self.stamp.len() < n_routers {
            self.stamp.resize(n_routers, 0);
            self.best.resize(n_routers, u32::MAX);
            self.prev.resize(n_routers, u32::MAX);
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Stamp wrap-around: old stamps could alias the new generation,
            // so reset them once every 2^32 searches.
            self.stamp.fill(0);
            self.generation = 1;
        }
        self.heap.clear();
    }

    fn visit(&mut self, i: usize, cost: u32, prev: u32) {
        self.stamp[i] = self.generation;
        self.best[i] = cost;
        self.prev[i] = prev;
    }

    fn best(&self, i: usize) -> u32 {
        if self.stamp[i] == self.generation {
            self.best[i]
        } else {
            u32::MAX
        }
    }

    /// Begins refilling `self.path` for a new result.
    fn reset_path(&mut self, from: TileId, to: TileId, demand: u64) {
        self.path.from = from;
        self.path.to = to;
        self.path.demand = demand;
        self.path.routers.clear();
        self.path.links.clear();
    }
}

impl Default for Path {
    fn default() -> Self {
        Path {
            from: TileId(0),
            to: TileId(0),
            routers: Vec::new(),
            links: Vec::new(),
            demand: 0,
        }
    }
}

/// Finds a minimal-hop path from `from` to `to` using only links with at
/// least `demand` words/second residual capacity, and with sufficient NI
/// bandwidth at both endpoints.
///
/// Ties between equal-hop paths are broken deterministically (lexicographic
/// router coordinates), so mapping runs are reproducible.
///
/// Allocates a fresh [`RouteScratch`] per call; hot paths should hold one
/// scratch and call [`route_with`] instead.
///
/// # Errors
///
/// [`PlatformError::NoRoute`] if no such path exists (including NI
/// exhaustion) — the mapper turns this into step-3 feedback.
pub fn route(
    platform: &Platform,
    state: &PlatformState,
    from: TileId,
    to: TileId,
    demand: u64,
) -> Result<Path, PlatformError> {
    let mut scratch = RouteScratch::new();
    route_with(platform, state, from, to, demand, &mut scratch).cloned()
}

/// [`route`] against caller-owned working memory: repeated calls perform no
/// heap allocation once `scratch` is warm. The returned path borrows from
/// `scratch` — clone it if the route is kept.
///
/// # Errors
///
/// [`PlatformError::NoRoute`] as for [`route`].
pub fn route_with<'s>(
    platform: &Platform,
    state: &PlatformState,
    from: TileId,
    to: TileId,
    demand: u64,
    scratch: &'s mut RouteScratch,
) -> Result<&'s Path, PlatformError> {
    let no_route = || PlatformError::NoRoute { from, to, demand };
    // A quarantined endpoint is unroutable even at zero demand: the path
    // would claim network-interface capacity on a failed tile.
    if state.is_tile_failed(from) || state.is_tile_failed(to) {
        return Err(no_route());
    }
    if state.residual_injection(platform, from) < demand
        || state.residual_ejection(platform, to) < demand
    {
        return Err(no_route());
    }
    let start = platform.tile(from).position;
    let goal = platform.tile(to).position;
    scratch.reset_path(from, to, demand);
    if start == goal {
        scratch.path.routers.push(start);
        return Ok(&scratch.path);
    }

    // Dijkstra over routers; cost = hops; deterministic tie-break on
    // (cost, coord). Edges come from the platform's CSR adjacency table in
    // the same west/east/north/south order the original hash-map walk used,
    // so paths (including ties) are bit-for-bit identical.
    let width = platform.width() as usize;
    let index = |c: Coord| (c.y as usize) * width + c.x as usize;
    scratch.begin(platform.n_routers());
    scratch.visit(index(start), 0, u32::MAX);
    scratch
        .heap
        .push(std::cmp::Reverse((0, (start.x, start.y))));
    while let Some(std::cmp::Reverse((cost, (x, y)))) = scratch.heap.pop() {
        let here = Coord { x, y };
        if cost > scratch.best(index(here)) {
            continue;
        }
        if here == goal {
            break;
        }
        for entry in platform.adjacency(here) {
            // A quarantined link is unusable even at zero demand: routes
            // through failed links are invalid, not merely full.
            if state.is_link_failed(entry.link)
                || state.residual_link(platform, entry.link) < demand
            {
                continue;
            }
            let ncost = cost + 1;
            let ni = index(entry.to);
            if ncost < scratch.best(ni) {
                scratch.visit(ni, ncost, index(here) as u32);
                scratch
                    .heap
                    .push(std::cmp::Reverse((ncost, (entry.to.x, entry.to.y))));
            }
        }
    }
    if scratch.best(index(goal)) == u32::MAX {
        return Err(no_route());
    }

    // Walk predecessors back from the goal, then reverse in place.
    let coord_of = |i: usize| Coord {
        x: (i % width) as u16,
        y: (i / width) as u16,
    };
    let mut cursor = index(goal);
    scratch.path.routers.push(goal);
    loop {
        let p = scratch.prev[cursor];
        if p == u32::MAX {
            break;
        }
        scratch.path.routers.push(coord_of(p as usize));
        cursor = p as usize;
    }
    scratch.path.routers.reverse();
    for w in scratch.path.routers.windows(2) {
        let link = platform
            .adjacency(w[0])
            .iter()
            .find(|e| e.to == w[1])
            .expect("consecutive routers are adjacent")
            .link;
        scratch.path.links.push(link);
    }
    Ok(&scratch.path)
}

/// The path-search policy used when realising a channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// Capacity-aware shortest path that may detour around congestion
    /// ([`route`]) — the paper's step-3 behaviour.
    #[default]
    Adaptive,
    /// Deterministic dimension-ordered XY routing ([`route_xy`]).
    DimensionOrdered,
}

impl RoutingPolicy {
    /// Routes with this policy.
    ///
    /// # Errors
    ///
    /// [`PlatformError::NoRoute`] as the underlying router reports.
    pub fn route(
        &self,
        platform: &Platform,
        state: &PlatformState,
        from: TileId,
        to: TileId,
        demand: u64,
    ) -> Result<Path, PlatformError> {
        let mut scratch = RouteScratch::new();
        self.route_with(platform, state, from, to, demand, &mut scratch)
            .cloned()
    }

    /// Routes with this policy against caller-owned working memory
    /// (allocation-free once `scratch` is warm; the returned path borrows
    /// from it).
    ///
    /// # Errors
    ///
    /// [`PlatformError::NoRoute`] as the underlying router reports.
    pub fn route_with<'s>(
        &self,
        platform: &Platform,
        state: &PlatformState,
        from: TileId,
        to: TileId,
        demand: u64,
        scratch: &'s mut RouteScratch,
    ) -> Result<&'s Path, PlatformError> {
        match self {
            RoutingPolicy::Adaptive => route_with(platform, state, from, to, demand, scratch),
            RoutingPolicy::DimensionOrdered => {
                route_xy_with(platform, state, from, to, demand, scratch)
            }
        }
    }
}

/// Dimension-ordered (XY) routing: first along X, then along Y — the
/// classic deterministic policy of guaranteed-throughput mesh NoCs.
///
/// Unlike [`route`], XY cannot detour: if any link on *the* XY path lacks
/// residual capacity, routing fails. The benches compare both policies
/// under congestion.
///
/// # Errors
///
/// [`PlatformError::NoRoute`] if an XY-path link or an endpoint NI lacks
/// capacity.
pub fn route_xy(
    platform: &Platform,
    state: &PlatformState,
    from: TileId,
    to: TileId,
    demand: u64,
) -> Result<Path, PlatformError> {
    let mut scratch = RouteScratch::new();
    route_xy_with(platform, state, from, to, demand, &mut scratch).cloned()
}

/// [`route_xy`] against caller-owned working memory (allocation-free once
/// `scratch` is warm; the returned path borrows from it).
///
/// # Errors
///
/// [`PlatformError::NoRoute`] as for [`route_xy`].
pub fn route_xy_with<'s>(
    platform: &Platform,
    state: &PlatformState,
    from: TileId,
    to: TileId,
    demand: u64,
    scratch: &'s mut RouteScratch,
) -> Result<&'s Path, PlatformError> {
    let no_route = || PlatformError::NoRoute { from, to, demand };
    // As in [`route_with`]: quarantined endpoints are unroutable.
    if state.is_tile_failed(from) || state.is_tile_failed(to) {
        return Err(no_route());
    }
    if state.residual_injection(platform, from) < demand
        || state.residual_ejection(platform, to) < demand
    {
        return Err(no_route());
    }
    let start = platform.tile(from).position;
    let goal = platform.tile(to).position;
    scratch.reset_path(from, to, demand);
    scratch.path.routers.push(start);
    let mut cursor = start;
    while cursor.x != goal.x {
        let next = Coord {
            x: if goal.x > cursor.x {
                cursor.x + 1
            } else {
                cursor.x - 1
            },
            y: cursor.y,
        };
        scratch.path.routers.push(next);
        cursor = next;
    }
    while cursor.y != goal.y {
        let next = Coord {
            x: cursor.x,
            y: if goal.y > cursor.y {
                cursor.y + 1
            } else {
                cursor.y - 1
            },
        };
        scratch.path.routers.push(next);
        cursor = next;
    }
    for w in scratch.path.routers.windows(2) {
        let link = platform
            .adjacency(w[0])
            .iter()
            .find(|e| e.to == w[1])
            .map(|e| e.link)
            .ok_or_else(no_route)?;
        if state.is_link_failed(link) || state.residual_link(platform, link) < demand {
            return Err(no_route());
        }
        scratch.path.links.push(link);
    }
    Ok(&scratch.path)
}

pub(crate) fn ni_claims(path: &Path) -> [(TileId, crate::state::TileClaim); 2] {
    let inject = crate::state::TileClaim {
        slots: 0,
        memory_bytes: 0,
        cycles_per_second: 0,
        injection: path.demand,
        ejection: 0,
    };
    let eject = crate::state::TileClaim {
        slots: 0,
        memory_bytes: 0,
        cycles_per_second: 0,
        injection: 0,
        ejection: path.demand,
    };
    [(path.from, inject), (path.to, eject)]
}

/// Reserves the path's bandwidth on every link plus NI injection at the
/// source tile and NI ejection at the destination tile.
///
/// On failure the ledger is left exactly as found (all partial reservations
/// are rolled back).
///
/// # Errors
///
/// [`PlatformError::LinkAccounting`] if any link lacks capacity, or
/// [`PlatformError::InsufficientResource`] if an endpoint NI is exhausted.
pub fn allocate(
    platform: &Platform,
    state: &mut PlatformState,
    path: &Path,
) -> Result<(), PlatformError> {
    let mut tx = crate::transaction::PlatformTransaction::begin(platform, state);
    tx.allocate_path(path)?; // an early return drops the tx, rolling back
    tx.commit();
    Ok(())
}

/// Releases a previously allocated path (links and endpoint NI).
///
/// On failure the ledger is left exactly as found (partial releases are
/// rolled back).
///
/// # Errors
///
/// [`PlatformError::LinkAccounting`] / [`PlatformError::UnknownClaim`] if
/// the path was not allocated.
pub fn release(
    platform: &Platform,
    state: &mut PlatformState,
    path: &Path,
) -> Result<(), PlatformError> {
    let mut tx = crate::transaction::PlatformTransaction::begin(platform, state);
    tx.release_path(path)?;
    tx.commit();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::TileKind;
    use crate::topology::{NocParams, PlatformBuilder};

    fn platform_3x3() -> Platform {
        PlatformBuilder::mesh(3, 3)
            .noc(NocParams {
                hop_latency_cycles: 4,
                clock_mhz: 200,
                link_capacity: 100,
            })
            .tile("a", TileKind::Arm, Coord { x: 0, y: 0 })
            .tile("b", TileKind::Arm, Coord { x: 2, y: 2 })
            .tile("c", TileKind::Arm, Coord { x: 2, y: 0 })
            .build()
            .unwrap()
    }

    #[test]
    fn shortest_path_has_manhattan_hops() {
        let p = platform_3x3();
        let s = p.initial_state();
        let a = p.tile_by_name("a").unwrap();
        let b = p.tile_by_name("b").unwrap();
        let path = route(&p, &s, a, b, 10).unwrap();
        assert_eq!(path.hops(), 4);
        assert_eq!(path.router_count(), 5);
    }

    #[test]
    fn self_route_is_empty() {
        let p = platform_3x3();
        let s = p.initial_state();
        let a = p.tile_by_name("a").unwrap();
        let path = route(&p, &s, a, a, 10).unwrap();
        assert_eq!(path.hops(), 0);
        assert_eq!(path.router_count(), 1);
    }

    #[test]
    fn saturated_links_are_avoided() {
        let p = platform_3x3();
        let mut s = p.initial_state();
        let a = p.tile_by_name("a").unwrap();
        let c = p.tile_by_name("c").unwrap();
        // Saturate the direct row: (0,0)->(1,0) and (1,0)->(2,0).
        for (from, to) in [((0, 0), (1, 0)), ((1, 0), (2, 0))] {
            let l = p
                .link_between(
                    Coord {
                        x: from.0,
                        y: from.1,
                    },
                    Coord { x: to.0, y: to.1 },
                )
                .unwrap();
            s.allocate_link(&p, l, 100).unwrap();
        }
        let path = route(&p, &s, a, c, 10).unwrap();
        // Must detour: longer than the Manhattan distance of 2.
        assert!(path.hops() > 2, "hops {}", path.hops());
    }

    #[test]
    fn no_route_when_everything_saturated() {
        let p = platform_3x3();
        let mut s = p.initial_state();
        let a = p.tile_by_name("a").unwrap();
        let b = p.tile_by_name("b").unwrap();
        for (l, _) in p.links() {
            s.allocate_link(&p, l, 100).unwrap();
        }
        assert!(matches!(
            route(&p, &s, a, b, 10),
            Err(PlatformError::NoRoute { .. })
        ));
    }

    #[test]
    fn demand_above_link_capacity_unroutable() {
        let p = platform_3x3();
        let s = p.initial_state();
        let a = p.tile_by_name("a").unwrap();
        let b = p.tile_by_name("b").unwrap();
        // Links carry 100; NI carries the default (much larger).
        assert!(route(&p, &s, a, b, 101).is_err());
    }

    #[test]
    fn allocate_release_roundtrip() {
        let p = platform_3x3();
        let mut s = p.initial_state();
        let a = p.tile_by_name("a").unwrap();
        let b = p.tile_by_name("b").unwrap();
        let before = s.clone();
        let path = route(&p, &s, a, b, 60).unwrap();
        allocate(&p, &mut s, &path).unwrap();
        // A second 60-demand route must avoid the allocated links or fail;
        // capacity is 100 so the same links cannot fit both.
        let second = route(&p, &s, a, b, 60).unwrap();
        assert!(second.links.iter().all(|l| !path.links.contains(l)));
        release(&p, &mut s, &path).unwrap();
        assert_eq!(s, before);
    }

    #[test]
    fn allocation_failure_rolls_back() {
        let p = platform_3x3();
        let mut s = p.initial_state();
        let a = p.tile_by_name("a").unwrap();
        let b = p.tile_by_name("b").unwrap();
        let path = route(&p, &s, a, b, 60).unwrap();
        // Saturate the LAST link of the path behind the router's back.
        let last = *path.links.last().unwrap();
        s.allocate_link(&p, last, 50).unwrap();
        let snapshot = s.clone();
        assert!(allocate(&p, &mut s, &path).is_err());
        assert_eq!(s, snapshot, "partial allocation must roll back");
    }

    #[test]
    fn deterministic_tie_break() {
        let p = platform_3x3();
        let s = p.initial_state();
        let a = p.tile_by_name("a").unwrap();
        let b = p.tile_by_name("b").unwrap();
        let p1 = route(&p, &s, a, b, 10).unwrap();
        let p2 = route(&p, &s, a, b, 10).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn xy_route_is_minimal_and_dimension_ordered() {
        let p = platform_3x3();
        let s = p.initial_state();
        let a = p.tile_by_name("a").unwrap(); // (0,0)
        let b = p.tile_by_name("b").unwrap(); // (2,2)
        let path = route_xy(&p, &s, a, b, 10).unwrap();
        assert_eq!(path.hops(), 4);
        // X first: the second router must be (1,0), not (0,1).
        assert_eq!(path.routers[1], Coord { x: 1, y: 0 });
        assert_eq!(path.routers[2], Coord { x: 2, y: 0 });
    }

    #[test]
    fn xy_cannot_detour_but_adaptive_can() {
        let p = platform_3x3();
        let mut s = p.initial_state();
        let a = p.tile_by_name("a").unwrap(); // (0,0)
        let c = p.tile_by_name("c").unwrap(); // (2,0)
                                              // Saturate the direct X corridor.
        for (from, to) in [((0, 0), (1, 0)), ((1, 0), (2, 0))] {
            let l = p
                .link_between(
                    Coord {
                        x: from.0,
                        y: from.1,
                    },
                    Coord { x: to.0, y: to.1 },
                )
                .unwrap();
            s.allocate_link(&p, l, 100).unwrap();
        }
        assert!(matches!(
            route_xy(&p, &s, a, c, 10),
            Err(PlatformError::NoRoute { .. })
        ));
        // The adaptive router detours around it.
        assert!(route(&p, &s, a, c, 10).is_ok());
    }

    #[test]
    fn xy_self_route_is_empty() {
        let p = platform_3x3();
        let s = p.initial_state();
        let a = p.tile_by_name("a").unwrap();
        let path = route_xy(&p, &s, a, a, 10).unwrap();
        assert_eq!(path.hops(), 0);
    }

    #[test]
    fn xy_and_adaptive_agree_on_empty_noc_hop_count() {
        let p = platform_3x3();
        let s = p.initial_state();
        let a = p.tile_by_name("a").unwrap();
        let b = p.tile_by_name("b").unwrap();
        let adaptive = route(&p, &s, a, b, 10).unwrap();
        let xy = route_xy(&p, &s, a, b, 10).unwrap();
        assert_eq!(adaptive.hops(), xy.hops());
    }

    #[test]
    fn ni_exhaustion_blocks_route() {
        let p = platform_3x3();
        let mut s = p.initial_state();
        let a = p.tile_by_name("a").unwrap();
        let b = p.tile_by_name("b").unwrap();
        let inj = p.tile(a).ni_injection;
        s.claim_tile(
            &p,
            a,
            &crate::state::TileClaim {
                slots: 0,
                memory_bytes: 0,
                cycles_per_second: 0,
                injection: inj,
                ejection: 0,
            },
        )
        .unwrap();
        assert!(matches!(
            route(&p, &s, a, b, 1),
            Err(PlatformError::NoRoute { .. })
        ));
    }
}
