//! The transactional resource layer: staged, atomic mutation of a
//! [`PlatformState`].
//!
//! Every resource mutation in the workspace used to carry its own
//! hand-rolled rollback sequence (snapshot-and-restore in the mapping
//! commit path, undo loops in the router allocator, release-then-reclaim
//! dances in the runtime manager). [`PlatformTransaction`] replaces them
//! with one audited path: operations apply to the ledger *immediately* —
//! so later operations in the same transaction see their effects, which is
//! what lets a migrating application reuse its own freed resources
//! (release-before-claim) — while an undo log records their exact
//! inverses. [`commit`](PlatformTransaction::commit) discards the log;
//! [`abort`](PlatformTransaction::abort) (or dropping the transaction)
//! replays it in reverse, restoring the ledger byte-for-byte.
//!
//! Because every primitive of [`PlatformState`] either applies fully or
//! leaves the ledger untouched, a failed operation leaves the transaction
//! consistent: the caller can keep staging, or bail and let the drop-abort
//! clean up. Replaying the log in LIFO order retraces the exact state
//! sequence backwards, so every inverse is guaranteed to apply — a
//! violated inverse is a logic error and panics rather than corrupting the
//! ledger.
//!
//! # Failure windows
//!
//! The health layer ([`PlatformState::fail_tile`] and friends) composes
//! with transactions as follows:
//!
//! * **Claims on failed resources are refused at staging time.** Every
//!   staged claim goes through [`PlatformState::claim_tile`] /
//!   [`PlatformState::allocate_link`], which consult the health bits — a
//!   plan that names a failed tile or routes through a failed link fails
//!   at [`claim_tile`](PlatformTransaction::claim_tile) /
//!   [`allocate_path`](PlatformTransaction::allocate_path), before
//!   anything commits. There is no window in which a commit can land
//!   claims on a resource that failed before the transaction staged them:
//!   the whole plan→stage→commit sequence runs under one `&mut
//!   PlatformState` borrow, so no failure can be injected between plan
//!   evaluation and commit — a failure observed by the staging step is a
//!   failure that happened before `begin`.
//! * **Releases (and their rollback) ignore health.** Evacuating a victim
//!   releases claims from a failed tile; aborting that evacuation must
//!   restore them onto the same failed tile. Releases check only ledger
//!   underflow, and rollback of a staged release re-applies it through a
//!   capacity-only restore path, so the drop-abort guarantee — the ledger
//!   is restored byte-for-byte — holds even while resources are failed.
//! * **Fail/repair are not transactional operations.** They mutate health
//!   metadata, never usage counters, and are applied by the runtime
//!   manager outside any open transaction; a transaction's undo log never
//!   contains them.
//!
//! # Example
//!
//! ```
//! use rtsm_platform::paper::paper_platform;
//! use rtsm_platform::{PlatformTransaction, TileClaim};
//!
//! let platform = paper_platform();
//! let mut state = platform.initial_state();
//! let before = state.clone();
//! let tile = platform.tile_by_name("ARM1").unwrap();
//! let claim = TileClaim {
//!     slots: 1,
//!     memory_bytes: 128,
//!     cycles_per_second: 0,
//!     injection: 0,
//!     ejection: 0,
//! };
//!
//! // Abort (or drop) restores the exact prior ledger…
//! let mut tx = PlatformTransaction::begin(&platform, &mut state);
//! tx.claim_tile(tile, &claim).unwrap();
//! tx.abort();
//! assert_eq!(state, before);
//!
//! // …while commit keeps the staged claims.
//! let mut tx = PlatformTransaction::begin(&platform, &mut state);
//! tx.claim_tile(tile, &claim).unwrap();
//! tx.commit();
//! assert_eq!(state.used_slots(tile), 1);
//! ```

use crate::error::PlatformError;
use crate::routing::{ni_claims, Path};
use crate::state::{PlatformState, TileClaim};
use crate::tile::TileId;
use crate::topology::{LinkId, Platform};
use rtsm_obs as obs;

/// One applied operation, recorded so the transaction can invert it.
#[derive(Debug, Clone, Copy)]
enum TxOp {
    ClaimedTile { tile: TileId, claim: TileClaim },
    ReleasedTile { tile: TileId, claim: TileClaim },
    AllocatedLink { link: LinkId, demand: u64 },
    ReleasedLink { link: LinkId, demand: u64 },
}

/// A staged set of claims and releases over a [`PlatformState`] with
/// all-or-nothing semantics (see the [module docs](self)).
#[derive(Debug)]
pub struct PlatformTransaction<'a> {
    platform: &'a Platform,
    state: &'a mut PlatformState,
    log: Vec<TxOp>,
    committed: bool,
}

impl<'a> PlatformTransaction<'a> {
    /// Opens a transaction over `state`. Until
    /// [`commit`](PlatformTransaction::commit), every staged operation is
    /// provisional: dropping the transaction rolls all of them back.
    pub fn begin(platform: &'a Platform, state: &'a mut PlatformState) -> Self {
        PlatformTransaction {
            platform,
            state,
            log: Vec::new(),
            committed: false,
        }
    }

    /// The platform the ledger belongs to.
    pub fn platform(&self) -> &Platform {
        self.platform
    }

    /// The ledger *including* all staged operations — what a mapping call
    /// inside the transaction should plan against.
    pub fn state(&self) -> &PlatformState {
        self.state
    }

    /// Number of operations staged so far.
    pub fn staged_ops(&self) -> usize {
        self.log.len()
    }

    /// True if `claim` currently fits on `tile` (staged operations
    /// included).
    pub fn fits_tile(&self, tile: TileId, claim: &TileClaim) -> bool {
        self.state.fits_tile(self.platform, tile, claim)
    }

    /// Stages a tile claim.
    ///
    /// # Errors
    ///
    /// [`PlatformError::InsufficientResource`] if the claim does not fit;
    /// the transaction stays consistent and usable.
    pub fn claim_tile(&mut self, tile: TileId, claim: &TileClaim) -> Result<(), PlatformError> {
        self.state.claim_tile(self.platform, tile, claim)?;
        self.log.push(TxOp::ClaimedTile {
            tile,
            claim: *claim,
        });
        Ok(())
    }

    /// Stages a tile release.
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownClaim`] if the claim is not present; the
    /// transaction stays consistent and usable.
    pub fn release_tile(&mut self, tile: TileId, claim: &TileClaim) -> Result<(), PlatformError> {
        self.state.release_tile(tile, claim)?;
        self.log.push(TxOp::ReleasedTile {
            tile,
            claim: *claim,
        });
        Ok(())
    }

    /// Stages a link-bandwidth allocation.
    ///
    /// # Errors
    ///
    /// [`PlatformError::LinkAccounting`] if the link lacks capacity.
    pub fn allocate_link(&mut self, link: LinkId, demand: u64) -> Result<(), PlatformError> {
        self.state.allocate_link(self.platform, link, demand)?;
        self.log.push(TxOp::AllocatedLink { link, demand });
        Ok(())
    }

    /// Stages a link-bandwidth release.
    ///
    /// # Errors
    ///
    /// [`PlatformError::LinkAccounting`] if more is released than held.
    pub fn release_link(&mut self, link: LinkId, demand: u64) -> Result<(), PlatformError> {
        self.state.release_link(link, demand)?;
        self.log.push(TxOp::ReleasedLink { link, demand });
        Ok(())
    }

    /// Stages a whole routed path: bandwidth on every link plus NI
    /// injection at the source tile and NI ejection at the destination.
    /// Atomic as a unit: if any piece fails, the pieces staged by *this
    /// call* are unwound before returning, so the transaction holds either
    /// the whole path or none of it.
    ///
    /// # Errors
    ///
    /// The first failing link or NI claim.
    pub fn allocate_path(&mut self, path: &Path) -> Result<(), PlatformError> {
        let mark = self.log.len();
        self.try_allocate_path(path).inspect_err(|_| {
            self.rollback_to(mark);
        })
    }

    fn try_allocate_path(&mut self, path: &Path) -> Result<(), PlatformError> {
        for &link in &path.links {
            self.allocate_link(link, path.demand)?;
        }
        let [inject, eject] = ni_claims(path);
        self.claim_tile(inject.0, &inject.1)?;
        self.claim_tile(eject.0, &eject.1)?;
        Ok(())
    }

    /// Stages the release of a previously allocated path. Atomic as a
    /// unit, like [`allocate_path`](PlatformTransaction::allocate_path).
    ///
    /// # Errors
    ///
    /// The first failing link or NI release (the path was not allocated on
    /// this ledger).
    pub fn release_path(&mut self, path: &Path) -> Result<(), PlatformError> {
        let mark = self.log.len();
        self.try_release_path(path).inspect_err(|_| {
            self.rollback_to(mark);
        })
    }

    fn try_release_path(&mut self, path: &Path) -> Result<(), PlatformError> {
        for &link in &path.links {
            self.release_link(link, path.demand)?;
        }
        let [inject, eject] = ni_claims(path);
        self.release_tile(inject.0, &inject.1)?;
        self.release_tile(eject.0, &eject.1)?;
        Ok(())
    }

    /// Makes every staged operation permanent.
    pub fn commit(mut self) {
        self.committed = true;
        self.log.clear();
        obs::count(obs::Counter::TxCommit, 1);
    }

    /// Rolls every staged operation back, restoring the ledger to exactly
    /// the state [`begin`](PlatformTransaction::begin) saw. Equivalent to
    /// dropping the transaction; provided for explicitness.
    pub fn abort(self) {
        // Drop does the work.
    }

    fn rollback(&mut self) {
        self.rollback_to(0);
    }

    /// Unwinds staged operations (in reverse) until `mark` entries remain.
    fn rollback_to(&mut self, mark: usize) {
        while self.log.len() > mark {
            let op = self.log.pop().expect("len > mark ≥ 0");
            match op {
                TxOp::ClaimedTile { tile, claim } => self
                    .state
                    .release_tile(tile, &claim)
                    .expect("inverting a claim staged by this transaction"),
                // Restores bypass the health check: an aborted evacuation
                // must put the victim's claims back onto the very tile or
                // link whose failure triggered it (see the module docs on
                // failure windows).
                TxOp::ReleasedTile { tile, claim } => self
                    .state
                    .restore_tile(self.platform, tile, &claim)
                    .expect("re-claiming a release staged by this transaction"),
                TxOp::AllocatedLink { link, demand } => self
                    .state
                    .release_link(link, demand)
                    .expect("inverting a link allocation staged by this transaction"),
                TxOp::ReleasedLink { link, demand } => self
                    .state
                    .restore_link(self.platform, link, demand)
                    .expect("re-allocating a link release staged by this transaction"),
            }
        }
    }
}

impl Drop for PlatformTransaction<'_> {
    fn drop(&mut self) {
        if !self.committed {
            self.rollback();
            obs::count(obs::Counter::TxAbort, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::route;
    use crate::tile::TileKind;
    use crate::topology::{Coord, PlatformBuilder};

    fn platform() -> Platform {
        PlatformBuilder::mesh(2, 2)
            .tile_defaults(200, 2, 4096, 1_000_000)
            .tile("a", TileKind::Arm, Coord { x: 0, y: 0 })
            .tile("b", TileKind::Arm, Coord { x: 1, y: 0 })
            .tile("c", TileKind::Arm, Coord { x: 0, y: 1 })
            .build()
            .unwrap()
    }

    fn claim(memory: u64) -> TileClaim {
        TileClaim {
            slots: 1,
            memory_bytes: memory,
            cycles_per_second: 1_000_000,
            injection: 100,
            ejection: 100,
        }
    }

    #[test]
    fn commit_keeps_abort_restores() {
        let p = platform();
        let a = p.tile_by_name("a").unwrap();
        let mut state = p.initial_state();
        let before = state.clone();

        let mut tx = PlatformTransaction::begin(&p, &mut state);
        tx.claim_tile(a, &claim(100)).unwrap();
        tx.abort();
        assert_eq!(state, before, "abort restores the exact prior ledger");

        let mut tx = PlatformTransaction::begin(&p, &mut state);
        tx.claim_tile(a, &claim(100)).unwrap();
        tx.commit();
        assert_eq!(state.used_slots(a), 1);
        assert_eq!(state.used_memory(a), 100);
    }

    #[test]
    fn drop_without_commit_aborts() {
        let p = platform();
        let a = p.tile_by_name("a").unwrap();
        let mut state = p.initial_state();
        let before = state.clone();
        {
            let mut tx = PlatformTransaction::begin(&p, &mut state);
            tx.claim_tile(a, &claim(100)).unwrap();
            // Dropped here.
        }
        assert_eq!(state, before);
    }

    #[test]
    fn release_before_claim_reuses_freed_resources() {
        // The migration pattern: a 2-slot tile is full; releasing one claim
        // inside the transaction lets a different claim take its place, and
        // abort still restores the original occupancy exactly.
        let p = platform();
        let a = p.tile_by_name("a").unwrap();
        let mut state = p.initial_state();
        state.claim_tile(&p, a, &claim(1000)).unwrap();
        state.claim_tile(&p, a, &claim(2000)).unwrap();
        let occupied = state.clone();

        let mut tx = PlatformTransaction::begin(&p, &mut state);
        assert!(!tx.fits_tile(a, &claim(500)), "tile starts full");
        tx.release_tile(a, &claim(1000)).unwrap();
        tx.claim_tile(a, &claim(500)).unwrap();
        tx.abort();
        assert_eq!(state, occupied, "abort undoes release-then-claim");

        let mut tx = PlatformTransaction::begin(&p, &mut state);
        tx.release_tile(a, &claim(1000)).unwrap();
        tx.claim_tile(a, &claim(500)).unwrap();
        tx.commit();
        assert_eq!(state.used_memory(a), 2500);
    }

    #[test]
    fn failed_operation_leaves_transaction_usable() {
        let p = platform();
        let a = p.tile_by_name("a").unwrap();
        let mut state = p.initial_state();
        let before = state.clone();
        let mut tx = PlatformTransaction::begin(&p, &mut state);
        tx.claim_tile(a, &claim(100)).unwrap();
        // 5000 bytes exceed the 4096-byte tile: the op fails atomically.
        assert!(tx.claim_tile(a, &claim(5000)).is_err());
        assert_eq!(tx.staged_ops(), 1, "failed ops are not logged");
        tx.claim_tile(a, &claim(200)).unwrap();
        tx.abort();
        assert_eq!(state, before);
    }

    #[test]
    fn path_allocation_is_staged_atomically() {
        let p = platform();
        let a = p.tile_by_name("a").unwrap();
        let b = p.tile_by_name("b").unwrap();
        let mut state = p.initial_state();
        let path = route(&p, &state, a, b, 1_000).unwrap();
        let before = state.clone();

        let mut tx = PlatformTransaction::begin(&p, &mut state);
        tx.allocate_path(&path).unwrap();
        tx.abort();
        assert_eq!(state, before);

        let mut tx = PlatformTransaction::begin(&p, &mut state);
        tx.allocate_path(&path).unwrap();
        tx.commit();
        assert_eq!(
            state.residual_link(&p, path.links[0]),
            p.link(path.links[0]).capacity - 1_000
        );

        let mut tx = PlatformTransaction::begin(&p, &mut state);
        tx.release_path(&path).unwrap();
        tx.commit();
        assert_eq!(state, before);
    }

    #[test]
    fn abort_restores_claims_onto_a_failed_tile() {
        // The evacuation-rollback window: the victim's claims were released
        // from a tile that is *currently failed*; abort must restore them
        // onto that same failed tile, byte-for-byte.
        let p = platform();
        let a = p.tile_by_name("a").unwrap();
        let mut state = p.initial_state();
        state.claim_tile(&p, a, &claim(100)).unwrap();
        state.fail_tile(a);
        let before = state.clone();

        let mut tx = PlatformTransaction::begin(&p, &mut state);
        tx.release_tile(a, &claim(100)).unwrap();
        assert!(
            tx.claim_tile(a, &claim(100)).is_err(),
            "new claims on the failed tile are refused even inside the tx"
        );
        tx.abort();
        assert_eq!(state, before, "abort restores the failed tile's claims");
    }

    #[test]
    fn staging_refuses_failed_resources() {
        let p = platform();
        let a = p.tile_by_name("a").unwrap();
        let b = p.tile_by_name("b").unwrap();
        let mut state = p.initial_state();
        let path = route(&p, &state, a, b, 1_000).unwrap();
        state.fail_link(path.links[0]);
        let before = state.clone();

        let mut tx = PlatformTransaction::begin(&p, &mut state);
        assert!(
            tx.allocate_path(&path).is_err(),
            "routes through failed links are invalid"
        );
        drop(tx);
        assert_eq!(state, before);
    }

    #[test]
    fn releasing_an_unallocated_path_fails_without_corruption() {
        let p = platform();
        let a = p.tile_by_name("a").unwrap();
        let c = p.tile_by_name("c").unwrap();
        let mut state = p.initial_state();
        let path = route(&p, &state, a, c, 1_000).unwrap();
        let before = state.clone();
        let mut tx = PlatformTransaction::begin(&p, &mut state);
        assert!(tx.release_path(&path).is_err());
        drop(tx);
        assert_eq!(state, before);
    }
}
