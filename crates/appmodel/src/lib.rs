//! Streaming-application models for run-time spatial mapping.
//!
//! The DATE 2008 paper describes applications at two levels (§1.2, §4.1):
//!
//! * **Functional** — a Kahn Process Network ([`kpn::ProcessGraph`]): just
//!   the decomposition into communicating processes and the data
//!   dependencies between them, plus the QoS constraints
//!   ([`qos::QosSpec`]). Together these form the Application Level
//!   Specification ([`als::ApplicationSpec`]).
//! * **Implementation** — per process, one or more concrete
//!   [`implementation::Implementation`]s, each targeting a tile type and
//!   described by a CSDF actor (per-phase WCETs and token rates), an energy
//!   figure, and resource requirements (Table 1).
//!
//! [`hiperlan2`] instantiates the paper's full case study: the HIPERLAN/2
//! receiver of Figure 1 with the implementation library of Table 1 across
//! all seven demapping modes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod als;
pub mod error;
pub mod hiperlan2;
pub mod implementation;
pub mod kpn;
pub mod library;
pub mod qos;

pub use als::ApplicationSpec;
pub use error::AppModelError;
pub use implementation::Implementation;
pub use kpn::{Endpoint, KpnChannel, KpnChannelId, Process, ProcessGraph, ProcessId};
pub use library::ImplementationLibrary;
pub use qos::QosSpec;
