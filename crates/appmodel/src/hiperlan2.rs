//! The paper's case study: a HIPERLAN/2 receiver (Figure 1 + Table 1).
//!
//! The receiver decomposes into four data-stream processes — *Prefix
//! removal*, *Frequency offset correction*, *Inverse OFDM* and *Remainder*
//! (the paper groups equalization, phase-offset correction and demapping
//! into one process) — plus a control process that selects the demapping
//! mode at frame starts and is "not part of the data stream".
//!
//! One OFDM symbol (80 complex 32-bit samples) arrives every 4 µs; the
//! demapped output size `b` depends on the receiver mode: the standard's
//! seven modes span 12 bytes (3 words, BPSK) to 384 bytes (96 words, QAM64)
//! per symbol (§4.1).
//!
//! # Model notes (documented substitutions, see `DESIGN.md`)
//!
//! * The ARM Inverse-OFDM output is normalised from Table 1's 64 tokens to
//!   the 52 useful carriers, matching Figure 1's edge label (the 12 extra
//!   tokens are padding the grouped Remainder discards; the paper's
//!   walk-through maps Inverse OFDM on a MONTIUM, so Table 2 / Figure 3 are
//!   unaffected).
//! * The ARM Remainder's third input phase reads the mode word from CTRL,
//!   not stream data; its data port is ⟨52,0,0⟩.
//! * The MONTIUM Remainder WCET phase `73−b` is clamped at 1 cycle
//!   (only QAM64's `b = 96` exceeds 72).

use crate::als::ApplicationSpec;
use crate::implementation::Implementation;
use crate::kpn::{Endpoint, ProcessGraph};
use crate::library::ImplementationLibrary;
use crate::qos::QosSpec;
use rtsm_dataflow::PhaseVec;
use rtsm_platform::TileKind;
use serde::{Deserialize, Serialize};

/// One OFDM symbol every 4 µs (§4.1), in picoseconds.
pub const SYMBOL_PERIOD_PS: u64 = 4_000_000;

/// Samples per OFDM symbol entering the receiver (80 complex numbers).
pub const SAMPLES_PER_SYMBOL: u64 = 80;

/// The seven HIPERLAN/2 receiver modes, which "only differ with regards to
/// the demapping" (§4.1).
///
/// `b`, the demapped 32-bit words per OFDM symbol, spans the paper's range:
/// 12 bytes (3 words) for BPSK½ up to 384 bytes (96 words) for 64-QAM¾.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Hiperlan2Mode {
    /// BPSK, rate ½ — `b = 3` words (the paper's 12-byte minimum).
    Bpsk12,
    /// BPSK, rate ¾ — `b = 6` words.
    Bpsk34,
    /// QPSK, rate ½ — `b = 12` words.
    Qpsk12,
    /// QPSK, rate ¾ — `b = 24` words.
    Qpsk34,
    /// 16-QAM, rate 9/16 — `b = 48` words.
    Qam16R916,
    /// 16-QAM, rate ¾ — `b = 72` words.
    Qam16R34,
    /// 64-QAM, rate ¾ — `b = 96` words (the paper's 384-byte maximum).
    Qam64R34,
}

impl Hiperlan2Mode {
    /// All seven modes, in increasing `b`.
    pub const ALL: [Hiperlan2Mode; 7] = [
        Hiperlan2Mode::Bpsk12,
        Hiperlan2Mode::Bpsk34,
        Hiperlan2Mode::Qpsk12,
        Hiperlan2Mode::Qpsk34,
        Hiperlan2Mode::Qam16R916,
        Hiperlan2Mode::Qam16R34,
        Hiperlan2Mode::Qam64R34,
    ];

    /// `b`: demapped 32-bit words per OFDM symbol.
    pub fn demapped_words(&self) -> u64 {
        match self {
            Hiperlan2Mode::Bpsk12 => 3,
            Hiperlan2Mode::Bpsk34 => 6,
            Hiperlan2Mode::Qpsk12 => 12,
            Hiperlan2Mode::Qpsk34 => 24,
            Hiperlan2Mode::Qam16R916 => 48,
            Hiperlan2Mode::Qam16R34 => 72,
            Hiperlan2Mode::Qam64R34 => 96,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Hiperlan2Mode::Bpsk12 => "BPSK 1/2",
            Hiperlan2Mode::Bpsk34 => "BPSK 3/4",
            Hiperlan2Mode::Qpsk12 => "QPSK 1/2",
            Hiperlan2Mode::Qpsk34 => "QPSK 3/4",
            Hiperlan2Mode::Qam16R916 => "16-QAM 9/16",
            Hiperlan2Mode::Qam16R34 => "16-QAM 3/4",
            Hiperlan2Mode::Qam64R34 => "64-QAM 3/4",
        }
    }
}

/// Data memory footprint of an ARM implementation, in bytes (model
/// parameter; the paper does not tabulate memory).
pub const ARM_IMPL_MEMORY: u64 = 8 * 1024;

/// Data memory footprint of a MONTIUM implementation, in bytes (model
/// parameter).
pub const MONTIUM_IMPL_MEMORY: u64 = 2 * 1024;

/// Builds the HIPERLAN/2 receiver ALS for `mode` — Figure 1's KPN, the QoS
/// constraint of one symbol per 4 µs, and Table 1's implementation library.
///
/// The returned specification always passes [`ApplicationSpec::validate`]
/// (covered by tests for all seven modes).
pub fn hiperlan2_receiver(mode: Hiperlan2Mode) -> ApplicationSpec {
    let b = mode.demapped_words();
    let mut graph = ProcessGraph::new();
    let pfx = graph.add_process_abbrev("Prefix removal", "Pfx.rem.");
    let frq = graph.add_process_abbrev("Freq. off. correction", "Frq.off.");
    let iofdm = graph.add_process_abbrev("Inverse OFDM", "Inv.OFDM");
    let rem = graph.add_process_abbrev("Remainder", "Rem.");
    let ctrl = graph.add_control_process("CTRL");

    graph
        .add_channel(Endpoint::StreamInput, Endpoint::Process(pfx), 80)
        .expect("valid endpoints");
    graph
        .add_channel(Endpoint::Process(pfx), Endpoint::Process(frq), 64)
        .expect("valid endpoints");
    graph
        .add_channel(Endpoint::Process(frq), Endpoint::Process(iofdm), 64)
        .expect("valid endpoints");
    graph
        .add_channel(Endpoint::Process(iofdm), Endpoint::Process(rem), 52)
        .expect("valid endpoints");
    graph
        .add_channel(Endpoint::Process(rem), Endpoint::StreamOutput, b)
        .expect("valid endpoints");
    // Demapping-mode selection, once per MAC frame (500 symbols).
    graph
        .add_control_channel(Endpoint::Process(ctrl), Endpoint::Process(rem), 1)
        .expect("valid endpoints");

    let mut library = ImplementationLibrary::new();

    // Prefix removal (Table 1).
    library.register(
        pfx,
        Implementation::simple(
            "Prefix removal @ ARM",
            TileKind::Arm,
            PhaseVec::uniform(18, 18),
            PhaseVec::uniform(8, 2).concat(&PhaseVec::repeat_pattern(&[8, 0], 8)),
            PhaseVec::uniform(0, 2).concat(&PhaseVec::repeat_pattern(&[0, 8], 8)),
            60_000,
            ARM_IMPL_MEMORY,
        ),
    );
    library.register(
        pfx,
        Implementation::simple(
            "Prefix removal @ MONTIUM",
            TileKind::Montium,
            PhaseVec::uniform(1, 81),
            PhaseVec::uniform(1, 80).concat(&PhaseVec::single(0)),
            PhaseVec::uniform(0, 17).concat(&PhaseVec::uniform(1, 64)),
            32_000,
            MONTIUM_IMPL_MEMORY,
        ),
    );

    // Frequency offset correction.
    library.register(
        frq,
        Implementation::simple(
            "Freq. off. correction @ ARM",
            TileKind::Arm,
            PhaseVec::from_slice(&[18, 32, 18]),
            PhaseVec::from_slice(&[8, 0, 0]),
            PhaseVec::from_slice(&[0, 0, 8]),
            62_000,
            ARM_IMPL_MEMORY,
        ),
    );
    library.register(
        frq,
        Implementation::simple(
            "Freq. off. correction @ MONTIUM",
            TileKind::Montium,
            PhaseVec::uniform(1, 66),
            PhaseVec::uniform(1, 64).concat(&PhaseVec::uniform(0, 2)),
            PhaseVec::uniform(0, 2).concat(&PhaseVec::uniform(1, 64)),
            33_000,
            MONTIUM_IMPL_MEMORY,
        ),
    );

    // Inverse OFDM.
    library.register(
        iofdm,
        Implementation::simple(
            "Inverse OFDM @ ARM",
            TileKind::Arm,
            PhaseVec::from_slice(&[66, 4250, 54]),
            PhaseVec::from_slice(&[64, 0, 0]),
            // Normalised to the 52 useful carriers (see module docs).
            PhaseVec::from_slice(&[0, 0, 52]),
            275_000,
            ARM_IMPL_MEMORY,
        ),
    );
    library.register(
        iofdm,
        Implementation::simple(
            "Inverse OFDM @ MONTIUM",
            TileKind::Montium,
            PhaseVec::uniform(1, 64)
                .concat(&PhaseVec::single(170))
                .concat(&PhaseVec::uniform(1, 52)),
            PhaseVec::uniform(1, 64).concat(&PhaseVec::uniform(0, 53)),
            PhaseVec::uniform(0, 65).concat(&PhaseVec::uniform(1, 52)),
            143_000,
            MONTIUM_IMPL_MEMORY,
        ),
    );

    // Remainder (equalization + phase-offset correction + demapping).
    library.register(
        rem,
        Implementation::simple(
            "Remainder @ ARM",
            TileKind::Arm,
            PhaseVec::from_slice(&[54, 2250, b + 2]),
            PhaseVec::from_slice(&[52, 0, 0]),
            PhaseVec::from_slice(&[0, 0, b]),
            140_000,
            ARM_IMPL_MEMORY,
        ),
    );
    let montium_mid_wcet = 73u64.saturating_sub(b).max(1);
    library.register(
        rem,
        Implementation::simple(
            "Remainder @ MONTIUM",
            TileKind::Montium,
            PhaseVec::uniform(1, 52)
                .concat(&PhaseVec::single(montium_mid_wcet))
                .concat(&PhaseVec::uniform(1, b as u32)),
            PhaseVec::uniform(1, 52).concat(&PhaseVec::uniform(0, b as u32 + 1)),
            PhaseVec::uniform(0, 53).concat(&PhaseVec::uniform(1, b as u32)),
            76_000,
            MONTIUM_IMPL_MEMORY,
        ),
    );

    ApplicationSpec {
        name: format!("HIPERLAN/2 receiver ({})", mode.name()),
        graph,
        qos: QosSpec::with_period(SYMBOL_PERIOD_PS),
        library,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_validate() {
        for mode in Hiperlan2Mode::ALL {
            let spec = hiperlan2_receiver(mode);
            assert_eq!(spec.validate(), Ok(()), "mode {}", mode.name());
        }
    }

    #[test]
    fn mode_range_matches_paper() {
        // "the minimum output is 12 bytes and the maximum is 384 bytes".
        assert_eq!(Hiperlan2Mode::Bpsk12.demapped_words() * 4, 12);
        assert_eq!(Hiperlan2Mode::Qam64R34.demapped_words() * 4, 384);
        let words: Vec<u64> = Hiperlan2Mode::ALL
            .iter()
            .map(|m| m.demapped_words())
            .collect();
        assert!(words.windows(2).all(|w| w[0] < w[1]), "modes monotone in b");
    }

    #[test]
    fn table1_energy_column() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let energy = |process: &str, kind: TileKind| {
            let p = spec.graph.process_by_name(process).unwrap();
            spec.library.impl_for(p, kind).unwrap().energy_pj_per_period / 1000
        };
        assert_eq!(energy("Prefix removal", TileKind::Arm), 60);
        assert_eq!(energy("Prefix removal", TileKind::Montium), 32);
        assert_eq!(energy("Freq. off. correction", TileKind::Arm), 62);
        assert_eq!(energy("Freq. off. correction", TileKind::Montium), 33);
        assert_eq!(energy("Inverse OFDM", TileKind::Arm), 275);
        assert_eq!(energy("Inverse OFDM", TileKind::Montium), 143);
        assert_eq!(energy("Remainder", TileKind::Arm), 140);
        assert_eq!(energy("Remainder", TileKind::Montium), 76);
    }

    #[test]
    fn table1_wcet_totals() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34); // b = 24
        let wcet = |process: &str, kind: TileKind| {
            let p = spec.graph.process_by_name(process).unwrap();
            spec.library.impl_for(p, kind).unwrap().cycle_wcet()
        };
        assert_eq!(wcet("Prefix removal", TileKind::Arm), 324); // 18·18
        assert_eq!(wcet("Prefix removal", TileKind::Montium), 81);
        assert_eq!(wcet("Freq. off. correction", TileKind::Arm), 68);
        assert_eq!(wcet("Freq. off. correction", TileKind::Montium), 66);
        assert_eq!(wcet("Inverse OFDM", TileKind::Arm), 4370);
        assert_eq!(wcet("Inverse OFDM", TileKind::Montium), 286); // 64+170+52
        assert_eq!(wcet("Remainder", TileKind::Arm), 54 + 2250 + 26);
        assert_eq!(wcet("Remainder", TileKind::Montium), 52 + 49 + 24);
    }

    #[test]
    fn frq_arm_runs_eight_cycles_per_symbol() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let frq = spec.graph.process_by_name("Freq. off. correction").unwrap();
        let arm = spec.library.impl_for(frq, TileKind::Arm).unwrap();
        assert_eq!(spec.cycles_per_period(frq, arm), 8);
        let montium = spec.library.impl_for(frq, TileKind::Montium).unwrap();
        assert_eq!(spec.cycles_per_period(frq, montium), 1);
    }

    #[test]
    fn montium_remainder_wcet_clamped_for_qam64() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qam64R34); // b = 96 > 72
        let rem = spec.graph.process_by_name("Remainder").unwrap();
        let montium = spec.library.impl_for(rem, TileKind::Montium).unwrap();
        // 52·1 + max(73−96, 1) + 96·1 = 149.
        assert_eq!(montium.cycle_wcet(), 149);
    }

    #[test]
    fn stream_structure_matches_figure1() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Bpsk12);
        let traffic: Vec<u64> = spec
            .graph
            .stream_channels()
            .map(|(_, c)| c.tokens_per_period)
            .collect();
        assert_eq!(traffic, vec![80, 64, 64, 52, 3]);
        assert_eq!(spec.graph.stream_processes().count(), 4);
        assert_eq!(spec.graph.processes().count(), 5); // + CTRL
    }

    #[test]
    fn arm_cycle_budget_structure() {
        // At 200 MHz (800 cycles / 4 µs), the ARM implementations of
        // Inverse OFDM and Remainder are throughput-infeasible while
        // everything else fits — the structure the paper's step 1 relies on.
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let budget = 800u64;
        let per_period = |process: &str, kind: TileKind| {
            let p = spec.graph.process_by_name(process).unwrap();
            let i = spec.library.impl_for(p, kind).unwrap();
            i.wcet_per_period(spec.cycles_per_period(p, i))
        };
        assert!(per_period("Prefix removal", TileKind::Arm) <= budget);
        assert!(per_period("Freq. off. correction", TileKind::Arm) <= budget);
        assert!(per_period("Inverse OFDM", TileKind::Arm) > budget);
        assert!(per_period("Remainder", TileKind::Arm) > budget);
        for process in [
            "Prefix removal",
            "Freq. off. correction",
            "Inverse OFDM",
            "Remainder",
        ] {
            assert!(
                per_period(process, TileKind::Montium) <= budget,
                "{process}"
            );
        }
    }
}
