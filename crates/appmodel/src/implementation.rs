//! Concrete process implementations: CSDF actors bound to tile types.

use rtsm_dataflow::PhaseVec;
use rtsm_platform::TileKind;
use serde::{Deserialize, Serialize};

/// One implementation of a KPN process for one tile type — a row of the
/// paper's Table 1.
///
/// The CSDF description (per-phase WCETs and per-port token rates) is what
/// step 4 composes into the whole-application CSDF graph of Figure 3; the
/// energy figure is what steps 1–2 optimise; the resource requirements are
/// what adherence checks against.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Implementation {
    /// Display name, e.g. `Inverse OFDM @ MONTIUM`.
    pub name: String,
    /// Tile type this implementation runs on.
    pub tile_kind: TileKind,
    /// Worst-case execution time per phase, in tile clock cycles.
    pub wcet: PhaseVec,
    /// Token consumption per phase, one vector per input port (the port
    /// order is the process's input-channel order in the KPN).
    pub inputs: Vec<PhaseVec>,
    /// Token production per phase, one vector per output port.
    pub outputs: Vec<PhaseVec>,
    /// Average energy per application period, in picojoules (Table 1's
    /// nJ/symbol column × 1000).
    pub energy_pj_per_period: u64,
    /// Data memory required on the tile, in bytes.
    pub memory_bytes: u64,
}

impl Implementation {
    /// Number of phases of the CSDF actor.
    pub fn n_phases(&self) -> usize {
        self.wcet.len()
    }

    /// Total WCET of one phase-cycle, in cycles.
    pub fn cycle_wcet(&self) -> u64 {
        self.wcet.total()
    }

    /// Tokens consumed per phase-cycle on input port `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn tokens_in_per_cycle(&self, port: usize) -> u64 {
        self.inputs[port].total()
    }

    /// Tokens produced per phase-cycle on output port `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn tokens_out_per_cycle(&self, port: usize) -> u64 {
        self.outputs[port].total()
    }

    /// Checks that all rate vectors have the actor's phase count.
    pub fn phases_consistent(&self) -> bool {
        self.inputs
            .iter()
            .chain(self.outputs.iter())
            .all(|r| r.len() == self.n_phases())
    }

    /// Phase-cycles this implementation must complete per application
    /// period to keep up with a channel carrying `tokens_per_period` on
    /// `port` (input side); `None` if the rate does not divide evenly.
    pub fn cycles_per_period_in(&self, port: usize, tokens_per_period: u64) -> Option<u64> {
        let per_cycle = self.tokens_in_per_cycle(port);
        if per_cycle == 0 || !tokens_per_period.is_multiple_of(per_cycle) {
            return None;
        }
        Some(tokens_per_period / per_cycle)
    }

    /// WCET cycles consumed per application period, given the number of
    /// phase-cycles per period.
    pub fn wcet_per_period(&self, cycles_per_period: u64) -> u64 {
        self.cycle_wcet() * cycles_per_period
    }
}

/// Builder-style constructor helpers.
impl Implementation {
    /// Creates a single-input single-output implementation (the common case
    /// in the paper's Table 1).
    pub fn simple(
        name: impl Into<String>,
        tile_kind: TileKind,
        wcet: PhaseVec,
        input: PhaseVec,
        output: PhaseVec,
        energy_pj_per_period: u64,
        memory_bytes: u64,
    ) -> Self {
        Implementation {
            name: name.into(),
            tile_kind,
            wcet,
            inputs: vec![input],
            outputs: vec![output],
            energy_pj_per_period,
            memory_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfx_arm() -> Implementation {
        // Table 1, Prefix removal on ARM: in ⟨8²,(8,0)⁸⟩ out ⟨0²,(0,8)⁸⟩
        // wcet ⟨18¹⁸⟩, 60 nJ/symbol.
        Implementation::simple(
            "Prefix removal @ ARM",
            TileKind::Arm,
            PhaseVec::uniform(18, 18),
            PhaseVec::uniform(8, 2).concat(&PhaseVec::repeat_pattern(&[8, 0], 8)),
            PhaseVec::uniform(0, 2).concat(&PhaseVec::repeat_pattern(&[0, 8], 8)),
            60_000,
            4096,
        )
    }

    #[test]
    fn table1_prefix_removal_arm_totals() {
        let i = pfx_arm();
        assert_eq!(i.n_phases(), 18);
        assert_eq!(i.cycle_wcet(), 324);
        assert_eq!(i.tokens_in_per_cycle(0), 80);
        assert_eq!(i.tokens_out_per_cycle(0), 64);
        assert!(i.phases_consistent());
    }

    #[test]
    fn cycles_per_period_divides() {
        let i = pfx_arm();
        // 80 tokens/symbol ÷ 80 tokens/cycle = 1 cycle/symbol.
        assert_eq!(i.cycles_per_period_in(0, 80), Some(1));
        assert_eq!(i.cycles_per_period_in(0, 83), None);
        assert_eq!(i.wcet_per_period(1), 324);
    }

    #[test]
    fn inconsistent_phases_detected() {
        let mut i = pfx_arm();
        i.inputs[0] = PhaseVec::single(80);
        assert!(!i.phases_consistent());
    }
}
