//! The Application Level Specification: graph + QoS + implementations.

use crate::error::AppModelError;
use crate::kpn::{ProcessGraph, ProcessId};
use crate::library::ImplementationLibrary;
use crate::qos::QosSpec;
use serde::{Deserialize, Serialize};

/// Everything the spatial mapper needs to know about one application:
/// the KPN with its QoS constraints (the ALS of §4.1) plus the
/// implementation library (Table 1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApplicationSpec {
    /// Application name (e.g. `HIPERLAN/2 receiver`).
    pub name: String,
    /// The process network (Figure 1).
    pub graph: ProcessGraph,
    /// Throughput / latency constraints.
    pub qos: QosSpec,
    /// Available implementations per process (Table 1).
    pub library: ImplementationLibrary,
}

impl ApplicationSpec {
    /// Validates the specification:
    ///
    /// * every data-stream process has at least one implementation,
    /// * every implementation's port counts match the process's channel
    ///   degree,
    /// * every implementation's per-cycle rates divide the channel traffic
    ///   and imply one consistent phase-cycle count per period,
    /// * the data-stream graph is acyclic.
    ///
    /// # Errors
    ///
    /// The first violated rule, as an [`AppModelError`].
    pub fn validate(&self) -> Result<(), AppModelError> {
        self.graph.topological_order()?;
        for (pid, process) in self.graph.stream_processes() {
            let impls = self.library.impls_for(pid);
            if impls.is_empty() {
                return Err(AppModelError::NoImplementation {
                    process: process.name.clone(),
                });
            }
            let in_channels = self.graph.inputs_of(pid);
            let out_channels = self.graph.outputs_of(pid);
            for implementation in impls {
                if implementation.inputs.len() != in_channels.len() {
                    return Err(AppModelError::PortMismatch {
                        implementation: implementation.name.clone(),
                        direction: "input",
                        has: implementation.inputs.len(),
                        expected: in_channels.len(),
                    });
                }
                if implementation.outputs.len() != out_channels.len() {
                    return Err(AppModelError::PortMismatch {
                        implementation: implementation.name.clone(),
                        direction: "output",
                        has: implementation.outputs.len(),
                        expected: out_channels.len(),
                    });
                }
                if !implementation.phases_consistent() {
                    return Err(AppModelError::RateMismatch {
                        implementation: implementation.name.clone(),
                        detail: "rate vector phase counts differ from WCET phases".into(),
                    });
                }
                // One consistent cycles-per-period across all ports.
                let mut cycles: Option<u64> = None;
                for (port, ch) in in_channels.iter().enumerate() {
                    let tokens = self.graph.channel(*ch).tokens_per_period;
                    let c = implementation
                        .cycles_per_period_in(port, tokens)
                        .ok_or_else(|| AppModelError::RateMismatch {
                            implementation: implementation.name.clone(),
                            detail: format!(
                                "input port {port}: {} tokens/cycle does not divide \
                                 {tokens} tokens/period",
                                implementation.tokens_in_per_cycle(port)
                            ),
                        })?;
                    if *cycles.get_or_insert(c) != c {
                        return Err(AppModelError::RateMismatch {
                            implementation: implementation.name.clone(),
                            detail: "ports imply different cycle counts".into(),
                        });
                    }
                }
                for (port, ch) in out_channels.iter().enumerate() {
                    let tokens = self.graph.channel(*ch).tokens_per_period;
                    let per_cycle = implementation.tokens_out_per_cycle(port);
                    if per_cycle == 0 || !tokens.is_multiple_of(per_cycle) {
                        return Err(AppModelError::RateMismatch {
                            implementation: implementation.name.clone(),
                            detail: format!(
                                "output port {port}: {per_cycle} tokens/cycle does not \
                                 divide {tokens} tokens/period"
                            ),
                        });
                    }
                    let c = tokens / per_cycle;
                    if *cycles.get_or_insert(c) != c {
                        return Err(AppModelError::RateMismatch {
                            implementation: implementation.name.clone(),
                            detail: "ports imply different cycle counts".into(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Phase-cycles per period of `implementation` when serving `process` —
    /// derived from the first port (validation guarantees all ports agree).
    /// Falls back to 1 for processes without data channels.
    pub fn cycles_per_period(
        &self,
        process: ProcessId,
        implementation: &crate::implementation::Implementation,
    ) -> u64 {
        let inputs = self.graph.inputs_of(process);
        if let Some(first) = inputs.first() {
            let tokens = self.graph.channel(*first).tokens_per_period;
            if let Some(c) = implementation.cycles_per_period_in(0, tokens) {
                return c;
            }
        }
        let outputs = self.graph.outputs_of(process);
        if let Some(first) = outputs.first() {
            let tokens = self.graph.channel(*first).tokens_per_period;
            let per_cycle = implementation.tokens_out_per_cycle(0);
            if per_cycle > 0 && tokens.is_multiple_of(per_cycle) {
                return tokens / per_cycle;
            }
        }
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implementation::Implementation;
    use crate::kpn::Endpoint;
    use rtsm_dataflow::PhaseVec;
    use rtsm_platform::TileKind;

    fn spec() -> ApplicationSpec {
        let mut graph = ProcessGraph::new();
        let p = graph.add_process("work");
        graph
            .add_channel(Endpoint::StreamInput, Endpoint::Process(p), 8)
            .unwrap();
        graph
            .add_channel(Endpoint::Process(p), Endpoint::StreamOutput, 8)
            .unwrap();
        let mut library = ImplementationLibrary::new();
        library.register(
            p,
            Implementation::simple(
                "work @ ARM",
                TileKind::Arm,
                PhaseVec::single(10),
                PhaseVec::single(2),
                PhaseVec::single(2),
                1000,
                64,
            ),
        );
        ApplicationSpec {
            name: "test".into(),
            graph,
            qos: QosSpec::with_period(1_000_000),
            library,
        }
    }

    #[test]
    fn valid_spec_passes() {
        assert_eq!(spec().validate(), Ok(()));
    }

    #[test]
    fn missing_implementation_reported() {
        let mut s = spec();
        s.library = ImplementationLibrary::new();
        assert!(matches!(
            s.validate(),
            Err(AppModelError::NoImplementation { .. })
        ));
    }

    #[test]
    fn non_dividing_rate_reported() {
        let mut s = spec();
        let p = s.graph.process_by_name("work").unwrap();
        let mut lib = ImplementationLibrary::new();
        lib.register(
            p,
            Implementation::simple(
                "bad",
                TileKind::Arm,
                PhaseVec::single(10),
                PhaseVec::single(3), // 3 does not divide 8
                PhaseVec::single(2),
                1000,
                64,
            ),
        );
        s.library = lib;
        assert!(matches!(
            s.validate(),
            Err(AppModelError::RateMismatch { .. })
        ));
    }

    #[test]
    fn port_count_mismatch_reported() {
        let mut s = spec();
        let p = s.graph.process_by_name("work").unwrap();
        let mut lib = ImplementationLibrary::new();
        lib.register(
            p,
            Implementation {
                name: "two-in".into(),
                tile_kind: TileKind::Arm,
                wcet: PhaseVec::single(1),
                inputs: vec![PhaseVec::single(1), PhaseVec::single(1)],
                outputs: vec![PhaseVec::single(1)],
                energy_pj_per_period: 1,
                memory_bytes: 1,
            },
        );
        s.library = lib;
        assert!(matches!(
            s.validate(),
            Err(AppModelError::PortMismatch { .. })
        ));
    }

    #[test]
    fn cycles_per_period_derived() {
        let s = spec();
        let p = s.graph.process_by_name("work").unwrap();
        let implementation = &s.library.impls_for(p)[0];
        // 8 tokens/period ÷ 2 tokens/cycle = 4 cycles/period.
        assert_eq!(s.cycles_per_period(p, implementation), 4);
    }

    #[test]
    fn inconsistent_port_cycles_reported() {
        let mut s = spec();
        let p = s.graph.process_by_name("work").unwrap();
        let mut lib = ImplementationLibrary::new();
        lib.register(
            p,
            Implementation::simple(
                "skewed",
                TileKind::Arm,
                PhaseVec::single(10),
                PhaseVec::single(2), // 4 cycles/period
                PhaseVec::single(4), // 2 cycles/period — inconsistent
                1000,
                64,
            ),
        );
        s.library = lib;
        assert!(matches!(
            s.validate(),
            Err(AppModelError::RateMismatch { .. })
        ));
    }
}
