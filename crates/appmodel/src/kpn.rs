//! Kahn Process Network: the functional decomposition of a streaming
//! application (the paper's Figure 1).

use crate::error::AppModelError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a process within a [`ProcessGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProcessId(pub(crate) usize);

impl ProcessId {
    /// Index of this process in the graph's process list.
    pub fn index(&self) -> usize {
        self.0
    }

    /// Builds a `ProcessId` from a raw index. The caller must ensure the
    /// index belongs to the intended graph.
    pub fn from_index(index: usize) -> Self {
        ProcessId(index)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a channel within a [`ProcessGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct KpnChannelId(pub(crate) usize);

impl KpnChannelId {
    /// Index of this channel in the graph's channel list.
    pub fn index(&self) -> usize {
        self.0
    }

    /// Builds a `KpnChannelId` from a raw index. The caller must ensure the
    /// index belongs to the intended graph.
    pub fn from_index(index: usize) -> Self {
        KpnChannelId(index)
    }
}

/// A process of the KPN.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Process {
    /// Human-readable name (e.g. `Inverse OFDM`).
    pub name: String,
    /// Abbreviation used in compact tables (the paper's `Inv.OFDM`);
    /// defaults to `name`.
    pub short_name: String,
    /// Control processes are "not part of the data stream" (§4.1): they are
    /// excluded from spatial-mapping cost and routing.
    pub is_control: bool,
}

/// One end of a KPN channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// A process of this application.
    Process(ProcessId),
    /// The platform's stream input (the paper's `A/D` tile).
    StreamInput,
    /// The platform's stream output (the paper's `Sink` tile).
    StreamOutput,
}

/// A FIFO channel of the KPN, annotated with its traffic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KpnChannel {
    /// Producing end.
    pub src: Endpoint,
    /// Consuming end.
    pub dst: Endpoint,
    /// 32-bit tokens crossing this channel per application period (the edge
    /// labels of Figure 1: complex samples per OFDM symbol).
    pub tokens_per_period: u64,
    /// True for control channels (not part of the data stream).
    pub is_control: bool,
}

/// The process network. Channels are kept in insertion order; a process's
/// input/output *port order* is its channel order, which implementations'
/// per-port rate vectors must follow.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessGraph {
    processes: Vec<Process>,
    channels: Vec<KpnChannel>,
}

impl ProcessGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a data-stream process.
    pub fn add_process(&mut self, name: impl Into<String>) -> ProcessId {
        let name = name.into();
        self.processes.push(Process {
            short_name: name.clone(),
            name,
            is_control: false,
        });
        ProcessId(self.processes.len() - 1)
    }

    /// Adds a data-stream process with a table abbreviation (the paper's
    /// `Pfx.rem.`, `Inv.OFDM`, …).
    pub fn add_process_abbrev(
        &mut self,
        name: impl Into<String>,
        short_name: impl Into<String>,
    ) -> ProcessId {
        self.processes.push(Process {
            name: name.into(),
            short_name: short_name.into(),
            is_control: false,
        });
        ProcessId(self.processes.len() - 1)
    }

    /// Adds a control process (excluded from the data stream).
    pub fn add_control_process(&mut self, name: impl Into<String>) -> ProcessId {
        let name = name.into();
        self.processes.push(Process {
            short_name: name.clone(),
            name,
            is_control: true,
        });
        ProcessId(self.processes.len() - 1)
    }

    /// Adds a data channel carrying `tokens_per_period` tokens per period.
    ///
    /// # Errors
    ///
    /// [`AppModelError::BadEndpoint`] if `src` is `StreamOutput` or `dst` is
    /// `StreamInput`; [`AppModelError::UnknownProcess`] for dangling ids.
    pub fn add_channel(
        &mut self,
        src: Endpoint,
        dst: Endpoint,
        tokens_per_period: u64,
    ) -> Result<KpnChannelId, AppModelError> {
        self.add_channel_inner(src, dst, tokens_per_period, false)
    }

    /// Adds a control channel (excluded from mapping cost and routing).
    ///
    /// # Errors
    ///
    /// Same as [`ProcessGraph::add_channel`].
    pub fn add_control_channel(
        &mut self,
        src: Endpoint,
        dst: Endpoint,
        tokens_per_period: u64,
    ) -> Result<KpnChannelId, AppModelError> {
        self.add_channel_inner(src, dst, tokens_per_period, true)
    }

    fn add_channel_inner(
        &mut self,
        src: Endpoint,
        dst: Endpoint,
        tokens_per_period: u64,
        is_control: bool,
    ) -> Result<KpnChannelId, AppModelError> {
        if matches!(src, Endpoint::StreamOutput) {
            return Err(AppModelError::BadEndpoint("StreamOutput cannot produce"));
        }
        if matches!(dst, Endpoint::StreamInput) {
            return Err(AppModelError::BadEndpoint("StreamInput cannot consume"));
        }
        for ep in [src, dst] {
            if let Endpoint::Process(p) = ep {
                if p.0 >= self.processes.len() {
                    return Err(AppModelError::UnknownProcess(p.0));
                }
            }
        }
        self.channels.push(KpnChannel {
            src,
            dst,
            tokens_per_period,
            is_control,
        });
        Ok(KpnChannelId(self.channels.len() - 1))
    }

    /// Number of processes (including control processes).
    pub fn n_processes(&self) -> usize {
        self.processes.len()
    }

    /// Number of channels (including control channels).
    pub fn n_channels(&self) -> usize {
        self.channels.len()
    }

    /// The process with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a process of this graph.
    pub fn process(&self, id: ProcessId) -> &Process {
        &self.processes[id.0]
    }

    /// The channel with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a channel of this graph.
    pub fn channel(&self, id: KpnChannelId) -> &KpnChannel {
        &self.channels[id.0]
    }

    /// Iterates over `(id, process)` pairs.
    pub fn processes(&self) -> impl Iterator<Item = (ProcessId, &Process)> {
        self.processes
            .iter()
            .enumerate()
            .map(|(i, p)| (ProcessId(i), p))
    }

    /// Data-stream processes only (control excluded), in id order.
    pub fn stream_processes(&self) -> impl Iterator<Item = (ProcessId, &Process)> {
        self.processes().filter(|(_, p)| !p.is_control)
    }

    /// Iterates over `(id, channel)` pairs.
    pub fn channels(&self) -> impl Iterator<Item = (KpnChannelId, &KpnChannel)> {
        self.channels
            .iter()
            .enumerate()
            .map(|(i, c)| (KpnChannelId(i), c))
    }

    /// Data-stream channels only (control excluded), in id order.
    pub fn stream_channels(&self) -> impl Iterator<Item = (KpnChannelId, &KpnChannel)> {
        self.channels().filter(|(_, c)| !c.is_control)
    }

    /// Looks a process up by name (first match).
    pub fn process_by_name(&self, name: &str) -> Option<ProcessId> {
        self.processes
            .iter()
            .position(|p| p.name == name)
            .map(ProcessId)
    }

    /// Data input channels of `process`, in port (insertion) order.
    pub fn inputs_of(&self, process: ProcessId) -> Vec<KpnChannelId> {
        self.stream_channels()
            .filter(|(_, c)| c.dst == Endpoint::Process(process))
            .map(|(id, _)| id)
            .collect()
    }

    /// Data output channels of `process`, in port (insertion) order.
    pub fn outputs_of(&self, process: ProcessId) -> Vec<KpnChannelId> {
        self.stream_channels()
            .filter(|(_, c)| c.src == Endpoint::Process(process))
            .map(|(id, _)| id)
            .collect()
    }

    /// Neighbouring stream processes of `process` (union of producers into
    /// and consumers from it), deduplicated, in id order.
    pub fn neighbours_of(&self, process: ProcessId) -> Vec<ProcessId> {
        let mut out: Vec<ProcessId> = Vec::new();
        for (_, c) in self.stream_channels() {
            let other = match (c.src, c.dst) {
                (Endpoint::Process(a), Endpoint::Process(b)) if a == process => Some(b),
                (Endpoint::Process(a), Endpoint::Process(b)) if b == process => Some(a),
                _ => None,
            };
            if let Some(o) = other {
                if !out.contains(&o) {
                    out.push(o);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Topological order of the stream processes (stream-input feeders
    /// first). This is the paper's deterministic tie-break order.
    ///
    /// # Errors
    ///
    /// [`AppModelError::CyclicKpn`] if the data-stream graph has a cycle.
    pub fn topological_order(&self) -> Result<Vec<ProcessId>, AppModelError> {
        let n = self.processes.len();
        let mut indegree = vec![0usize; n];
        let mut is_stream = vec![false; n];
        for (id, p) in self.processes() {
            is_stream[id.0] = !p.is_control;
        }
        for (_, c) in self.stream_channels() {
            if let (Endpoint::Process(_), Endpoint::Process(d)) = (c.src, c.dst) {
                indegree[d.0] += 1;
            }
        }
        // Kahn's algorithm with an index-ordered frontier for determinism.
        let mut order = Vec::new();
        let mut frontier: Vec<usize> = (0..n)
            .filter(|&i| is_stream[i] && indegree[i] == 0)
            .collect();
        while let Some(&next) = frontier.iter().min() {
            frontier.retain(|&x| x != next);
            order.push(ProcessId(next));
            for (_, c) in self.stream_channels() {
                if let (Endpoint::Process(s), Endpoint::Process(d)) = (c.src, c.dst) {
                    if s.0 == next {
                        indegree[d.0] -= 1;
                        if indegree[d.0] == 0 {
                            frontier.push(d.0);
                        }
                    }
                }
            }
        }
        if order.len() != is_stream.iter().filter(|&&s| s).count() {
            return Err(AppModelError::CyclicKpn);
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> (ProcessGraph, Vec<ProcessId>) {
        let mut g = ProcessGraph::new();
        let a = g.add_process("a");
        let b = g.add_process("b");
        let c = g.add_process("c");
        g.add_channel(Endpoint::StreamInput, Endpoint::Process(a), 80)
            .unwrap();
        g.add_channel(Endpoint::Process(a), Endpoint::Process(b), 64)
            .unwrap();
        g.add_channel(Endpoint::Process(b), Endpoint::Process(c), 52)
            .unwrap();
        g.add_channel(Endpoint::Process(c), Endpoint::StreamOutput, 24)
            .unwrap();
        (g, vec![a, b, c])
    }

    #[test]
    fn topological_order_of_chain() {
        let (g, ids) = chain();
        assert_eq!(g.topological_order().unwrap(), ids);
    }

    #[test]
    fn cycle_detected() {
        let mut g = ProcessGraph::new();
        let a = g.add_process("a");
        let b = g.add_process("b");
        g.add_channel(Endpoint::Process(a), Endpoint::Process(b), 1)
            .unwrap();
        g.add_channel(Endpoint::Process(b), Endpoint::Process(a), 1)
            .unwrap();
        assert_eq!(g.topological_order(), Err(AppModelError::CyclicKpn));
    }

    #[test]
    fn control_channels_excluded_from_stream_views() {
        let (mut g, ids) = chain();
        let ctrl = g.add_control_process("ctrl");
        g.add_control_channel(Endpoint::Process(ctrl), Endpoint::Process(ids[2]), 1)
            .unwrap();
        assert_eq!(g.stream_channels().count(), 4);
        assert_eq!(g.channels().count(), 5);
        assert_eq!(g.stream_processes().count(), 3);
        assert_eq!(g.inputs_of(ids[2]).len(), 1);
        // Control process excluded from topological order.
        assert_eq!(g.topological_order().unwrap().len(), 3);
    }

    #[test]
    fn neighbours_are_symmetric_and_deduplicated() {
        let (g, ids) = chain();
        assert_eq!(g.neighbours_of(ids[1]), vec![ids[0], ids[2]]);
        assert_eq!(g.neighbours_of(ids[0]), vec![ids[1]]);
    }

    #[test]
    fn bad_endpoints_rejected() {
        let mut g = ProcessGraph::new();
        let a = g.add_process("a");
        assert!(g
            .add_channel(Endpoint::StreamOutput, Endpoint::Process(a), 1)
            .is_err());
        assert!(g
            .add_channel(Endpoint::Process(a), Endpoint::StreamInput, 1)
            .is_err());
        assert!(g
            .add_channel(Endpoint::Process(ProcessId(99)), Endpoint::Process(a), 1)
            .is_err());
    }

    #[test]
    fn port_order_is_insertion_order() {
        let mut g = ProcessGraph::new();
        let join = g.add_process("join");
        let a = g.add_process("a");
        let b = g.add_process("b");
        let c1 = g
            .add_channel(Endpoint::Process(a), Endpoint::Process(join), 4)
            .unwrap();
        let c2 = g
            .add_channel(Endpoint::Process(b), Endpoint::Process(join), 8)
            .unwrap();
        assert_eq!(g.inputs_of(join), vec![c1, c2]);
    }
}
