//! Quality-of-Service constraints of an application.

use serde::{Deserialize, Serialize};

/// QoS constraints attached to an Application Level Specification (§1.3:
/// "throughput requirements and latency bounds").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QosSpec {
    /// Application period in picoseconds: one unit of stream input (e.g. an
    /// OFDM symbol) arrives every `period_ps` (HIPERLAN/2: 4 µs).
    pub period_ps: u64,
    /// Optional end-to-end latency bound (stream input to stream output) in
    /// picoseconds.
    pub max_latency_ps: Option<u64>,
}

impl QosSpec {
    /// A throughput-only constraint with the given period.
    pub fn with_period(period_ps: u64) -> Self {
        QosSpec {
            period_ps,
            max_latency_ps: None,
        }
    }

    /// Adds a latency bound.
    #[must_use]
    pub fn latency_bound(mut self, max_latency_ps: u64) -> Self {
        self.max_latency_ps = Some(max_latency_ps);
        self
    }

    /// Throughput demand of a channel carrying `tokens_per_period` tokens,
    /// in words/second (the unit of NoC link capacity).
    pub fn words_per_second(&self, tokens_per_period: u64) -> u64 {
        // tokens/period ÷ period_ps × 1e12 ps/s, computed without overflow
        // for realistic magnitudes.
        (tokens_per_period as u128 * 1_000_000_000_000u128 / self.period_ps as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hiperlan2_channel_bandwidths() {
        let qos = QosSpec::with_period(4_000_000); // 4 µs
                                                   // 80 tokens per 4 µs = 20M words/s.
        assert_eq!(qos.words_per_second(80), 20_000_000);
        assert_eq!(qos.words_per_second(64), 16_000_000);
    }

    #[test]
    fn latency_builder() {
        let qos = QosSpec::with_period(1000).latency_bound(5000);
        assert_eq!(qos.max_latency_ps, Some(5000));
    }
}
