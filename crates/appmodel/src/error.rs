//! Error type for application-model validation.

use std::fmt;

/// Errors found while building or validating application models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppModelError {
    /// A channel endpoint references a process that does not exist.
    UnknownProcess(usize),
    /// A process has no implementation at all.
    NoImplementation {
        /// Name of the unimplementable process.
        process: String,
    },
    /// An implementation's port count does not match the process's channel
    /// degree in the KPN.
    PortMismatch {
        /// The implementation's name.
        implementation: String,
        /// `"input"` or `"output"`.
        direction: &'static str,
        /// Ports declared by the implementation.
        has: usize,
        /// Channels attached in the KPN.
        expected: usize,
    },
    /// An implementation's per-cycle rate does not divide the channel's
    /// tokens-per-period, or ports imply different cycle counts.
    RateMismatch {
        /// The implementation's name.
        implementation: String,
        /// Explanation of the violated relation.
        detail: String,
    },
    /// The KPN has a cycle (streaming specifications here are acyclic; the
    /// control process is not part of the data stream).
    CyclicKpn,
    /// A stream endpoint is used incorrectly (e.g. `StreamInput` as a
    /// destination).
    BadEndpoint(&'static str),
}

impl fmt::Display for AppModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppModelError::UnknownProcess(i) => write!(f, "unknown process index {i}"),
            AppModelError::NoImplementation { process } => {
                write!(f, "process `{process}` has no implementation")
            }
            AppModelError::PortMismatch {
                implementation,
                direction,
                has,
                expected,
            } => write!(
                f,
                "implementation `{implementation}` has {has} {direction} ports, KPN expects {expected}"
            ),
            AppModelError::RateMismatch {
                implementation,
                detail,
            } => write!(f, "implementation `{implementation}` rate mismatch: {detail}"),
            AppModelError::CyclicKpn => write!(f, "KPN data-stream graph has a cycle"),
            AppModelError::BadEndpoint(what) => write!(f, "bad endpoint use: {what}"),
        }
    }
}

impl std::error::Error for AppModelError {}
