//! The implementation library: all known implementations per process.

use crate::implementation::Implementation;
use crate::kpn::ProcessId;
use rtsm_platform::TileKind;
use serde::{Deserialize, Serialize};

/// All implementations available for the processes of one application —
/// the paper's Table 1 as a data structure.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImplementationLibrary {
    // Indexed by process id; inner Vec in registration order.
    by_process: Vec<Vec<Implementation>>,
}

impl ImplementationLibrary {
    /// An empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `implementation` for `process`.
    pub fn register(&mut self, process: ProcessId, implementation: Implementation) {
        if self.by_process.len() <= process.index() {
            self.by_process.resize_with(process.index() + 1, Vec::new);
        }
        self.by_process[process.index()].push(implementation);
    }

    /// All implementations of `process`, in registration order.
    pub fn impls_for(&self, process: ProcessId) -> &[Implementation] {
        self.by_process
            .get(process.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The implementation of `process` for `kind`, if registered (first
    /// match).
    pub fn impl_for(&self, process: ProcessId, kind: TileKind) -> Option<&Implementation> {
        self.impls_for(process).iter().find(|i| i.tile_kind == kind)
    }

    /// Distinct tile kinds for which `process` has an implementation.
    pub fn kinds_for(&self, process: ProcessId) -> Vec<TileKind> {
        let mut kinds: Vec<TileKind> = Vec::new();
        for i in self.impls_for(process) {
            if !kinds.contains(&i.tile_kind) {
                kinds.push(i.tile_kind);
            }
        }
        kinds
    }

    /// Total number of registered implementations.
    pub fn len(&self) -> usize {
        self.by_process.iter().map(Vec::len).sum()
    }

    /// True if no implementation is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtsm_dataflow::PhaseVec;

    fn implementation(kind: TileKind) -> Implementation {
        Implementation::simple(
            format!("x @ {kind}"),
            kind,
            PhaseVec::single(10),
            PhaseVec::single(1),
            PhaseVec::single(1),
            1000,
            64,
        )
    }

    #[test]
    fn register_and_lookup() {
        let mut lib = ImplementationLibrary::new();
        let p = ProcessId(0);
        lib.register(p, implementation(TileKind::Arm));
        lib.register(p, implementation(TileKind::Montium));
        assert_eq!(lib.impls_for(p).len(), 2);
        assert_eq!(
            lib.impl_for(p, TileKind::Montium).unwrap().tile_kind,
            TileKind::Montium
        );
        assert!(lib.impl_for(p, TileKind::Dsp).is_none());
        assert_eq!(lib.kinds_for(p), vec![TileKind::Arm, TileKind::Montium]);
        assert_eq!(lib.len(), 2);
    }

    #[test]
    fn unknown_process_is_empty() {
        let lib = ImplementationLibrary::new();
        assert!(lib.impls_for(ProcessId(5)).is_empty());
        assert!(lib.is_empty());
    }
}
