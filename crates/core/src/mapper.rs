//! The spatial mapper: steps 1–4 under the iterative-refinement driver.
//!
//! "In general, the production of feedback immediately triggers a new
//! iteration … The feedback from a lower level may result in a completely
//! different mapping on a higher level in a next iteration." (§3.)

use crate::algorithm::{MappingAlgorithm, MappingOutcome};
use crate::constraints::MappingConstraints;
use crate::cost::CostModel;
use crate::error::MapError;
use crate::feedback::Constraints;
use crate::step1::assign_implementations;
use crate::step2::{improve_assignment_with, Step2Config};
use crate::step3::route_channels_with;
use crate::step4::{check_constraints, Step4Config};
use crate::trace::{AttemptTrace, MapTrace};
use rtsm_app::{ApplicationSpec, Endpoint};
use rtsm_obs as obs;
use rtsm_platform::{EnergyModel, Platform, PlatformState, RoutingPolicy, TileKind};
use serde::{Deserialize, Serialize};

/// Configuration of the whole mapper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MapperConfig {
    /// Step-2 cost model (default: the paper's hop count).
    pub cost_model: CostModel,
    /// Step-2 search settings.
    pub step2: Step2Config,
    /// Step-4 composition settings.
    pub step4: Step4Config,
    /// Step-3 path-search policy (adaptive, per the paper, or XY).
    pub routing: RoutingPolicy,
    /// Maximum refinement attempts before giving up.
    pub max_refinements: usize,
    /// Energy model used for the result's energy account.
    pub energy_model: EnergyModel,
    /// Record the full search trace ([`MappingOutcome::trace`], Table-2
    /// events, assignment snapshots). Default `true` — what the paper
    /// reproduction and debugging read. Turn it **off** on hot paths
    /// (simulators, benches): the search makes identical decisions and the
    /// `evaluated`/`attempts` counters stay exact, but no trace structures
    /// are allocated at all.
    pub capture: bool,
}

impl Default for MapperConfig {
    fn default() -> Self {
        MapperConfig {
            cost_model: CostModel::HopCount,
            step2: Step2Config::default(),
            step4: Step4Config::default(),
            routing: RoutingPolicy::Adaptive,
            max_refinements: 8,
            energy_model: EnergyModel::default(),
            capture: true,
        }
    }
}

impl MapperConfig {
    /// This configuration with trace capture disabled — the hot-path
    /// variant for simulators and benches.
    #[must_use]
    pub fn without_capture(mut self) -> Self {
        self.capture = false;
        self
    }
}

/// The run-time spatial mapper (see the [crate documentation](crate)).
#[derive(Debug, Clone, Default)]
pub struct SpatialMapper {
    config: MapperConfig,
}

impl SpatialMapper {
    /// Creates a mapper with `config`.
    pub fn new(config: MapperConfig) -> Self {
        SpatialMapper { config }
    }

    /// The mapper's configuration.
    pub fn config(&self) -> &MapperConfig {
        &self.config
    }

    /// Maps `spec` onto `platform` given the current occupancy `base`.
    ///
    /// `base` is **not** mutated: apply the returned result with
    /// [`MappingOutcome::commit`] when the application actually starts, or
    /// let a [`RuntimeManager`](crate::RuntimeManager) manage the whole
    /// lifecycle.
    ///
    /// # Errors
    ///
    /// * [`MapError::InvalidSpec`] if the specification fails validation.
    /// * [`MapError::NoStreamEndpoint`] if stream endpoints are used but
    ///   the platform has no `AdcSource`/`Sink` tile.
    /// * [`MapError::NoFeasibleMapping`] if refinement exhausts its budget
    ///   or dead-ends.
    pub fn map(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        base: &PlatformState,
    ) -> Result<MappingOutcome, MapError> {
        self.map_constrained(spec, platform, base, &MappingConstraints::none())
    }

    /// Maps `spec` onto `platform` under caller-imposed `constraints`
    /// (pinned process→tile assignments, excluded tiles): the external
    /// constraints seed every refinement attempt, so steps 1–2 never place
    /// a process where the caller forbade it, and a returned mapping always
    /// satisfies [`MappingConstraints::satisfied_by`]. With
    /// [`MappingConstraints::none`] this is exactly [`SpatialMapper::map`].
    ///
    /// # Errors
    ///
    /// As for [`SpatialMapper::map`]; constraints that leave a process no
    /// viable placement surface as [`MapError::Unmappable`] or
    /// [`MapError::NoFeasibleMapping`].
    pub fn map_constrained(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        base: &PlatformState,
        external: &MappingConstraints,
    ) -> Result<MappingOutcome, MapError> {
        spec.validate()?;
        self.check_endpoints(spec, platform)?;

        // Observability only: span guards report timing to whatever probe
        // the caller installed; no decision below depends on them.
        let _map_span = obs::span(obs::Span::Map);
        let capture = self.config.capture;
        let mut constraints = Constraints::with_external(external.clone());
        let mut trace = MapTrace::default();
        let mut last_feedback = Vec::new();
        // Counters maintained independently of the trace so `evaluated` and
        // `attempts` stay exact when capture is off: every attempt costs
        // its step-2 evaluations plus one (the attempt itself), exactly the
        // `events.len() + 1` sum the captured trace would yield.
        let mut attempts_made = 0usize;
        let mut evaluated: u64 = 0;

        for attempt in 0..self.config.max_refinements.max(1) {
            let mut attempt_trace = AttemptTrace::default();

            // Step 1: implementations + greedy first-fit tiles.
            let step1_result = {
                let _s = obs::span(obs::Span::Step1);
                assign_implementations(spec, platform, base, &constraints)
            };
            let step1 = match step1_result {
                Ok(out) => out,
                Err(failure) => {
                    attempts_made += 1;
                    evaluated += 1;
                    if capture {
                        attempt_trace.feedback = failure.feedback.clone();
                        trace.attempts.push(attempt_trace);
                    }
                    let mut absorbed = false;
                    for fb in &failure.feedback {
                        absorbed |= constraints.absorb(fb);
                    }
                    last_feedback = failure.feedback;
                    if !absorbed {
                        return Err(MapError::Unmappable {
                            process: spec.graph.process(failure.process).name.clone(),
                        });
                    }
                    continue;
                }
            };
            if capture {
                attempt_trace.step1 = step1.events;
            }
            let mut mapping = step1.mapping;
            let mut working = step1.working;

            // Step 2: local-search improvement.
            let step2_trace = {
                let _s = obs::span(obs::Span::Step2);
                improve_assignment_with(
                    spec,
                    platform,
                    &constraints,
                    &mut mapping,
                    &mut working,
                    &self.config.cost_model,
                    &self.config.step2,
                    capture,
                )
            };
            attempts_made += 1;
            evaluated += step2_trace.evaluations + 1;
            if capture {
                attempt_trace.step2 = step2_trace;
            }

            // Step 3: routing.
            let step3_result = {
                let _s = obs::span(obs::Span::Step3);
                route_channels_with(
                    spec,
                    platform,
                    &mut mapping,
                    &mut working,
                    self.config.routing,
                )
            };
            if let Err(feedback) = step3_result {
                if capture {
                    attempt_trace.feedback = feedback.clone();
                    trace.attempts.push(attempt_trace);
                }
                let mut absorbed = false;
                for fb in &feedback {
                    absorbed |= constraints.absorb(fb);
                }
                last_feedback = feedback;
                if !absorbed {
                    break;
                }
                continue;
            }

            // Step 4: constraint check.
            let step4 = {
                let _s = obs::span(obs::Span::Step4);
                check_constraints(spec, platform, &mapping, &working, &self.config.step4)
            };
            if step4.feasible {
                if capture {
                    attempt_trace.feasible = true;
                    trace.attempts.push(attempt_trace);
                }
                let energy_pj = mapping.energy_pj(spec, platform, &self.config.energy_model);
                let communication_hops = mapping.communication_hops(spec, platform);
                return Ok(MappingOutcome {
                    mapping,
                    csdf: Some(step4.csdf),
                    buffers: step4.buffers,
                    energy_pj,
                    communication_hops,
                    feasible: true,
                    evaluated,
                    trace: capture.then_some(trace),
                    attempts: attempt + 1,
                    achieved_period: step4.achieved_period,
                    latency_ps: step4.latency_ps,
                });
            }
            if capture {
                attempt_trace.feedback = step4.feedback.clone();
                trace.attempts.push(attempt_trace);
            }
            let mut absorbed = false;
            for fb in &step4.feedback {
                absorbed |= constraints.absorb(fb);
            }
            last_feedback = step4.feedback;
            if !absorbed {
                break;
            }
        }

        Err(MapError::NoFeasibleMapping {
            attempts: attempts_made,
            last_feedback,
        })
    }

    fn check_endpoints(&self, spec: &ApplicationSpec, platform: &Platform) -> Result<(), MapError> {
        let uses_input = spec
            .graph
            .stream_channels()
            .any(|(_, c)| c.src == Endpoint::StreamInput);
        let uses_output = spec
            .graph
            .stream_channels()
            .any(|(_, c)| c.dst == Endpoint::StreamOutput);
        if uses_input && platform.tiles_of_kind(TileKind::AdcSource).next().is_none() {
            return Err(MapError::NoStreamEndpoint { which: "AdcSource" });
        }
        if uses_output && platform.tiles_of_kind(TileKind::Sink).next().is_none() {
            return Err(MapError::NoStreamEndpoint { which: "Sink" });
        }
        Ok(())
    }
}

impl MappingAlgorithm for SpatialMapper {
    fn name(&self) -> &str {
        "hierarchical heuristic (paper)"
    }

    fn map_constrained(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        base: &PlatformState,
        constraints: &MappingConstraints,
    ) -> Result<MappingOutcome, MapError> {
        SpatialMapper::map_constrained(self, spec, platform, base, constraints)
    }
}

/// Convenience: the tile each process ended up on, by name.
pub fn placement_by_name(
    result: &MappingOutcome,
    spec: &ApplicationSpec,
    platform: &Platform,
) -> Vec<(String, String)> {
    result
        .mapping
        .assignments()
        .map(|(p, a)| {
            (
                spec.graph.process(p).name.clone(),
                platform.tile(a.tile).name.clone(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
    use rtsm_platform::paper::paper_platform;
    use rtsm_platform::TileClaim;

    #[test]
    fn paper_case_maps_first_attempt() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let result = SpatialMapper::new(MapperConfig::default())
            .map(&spec, &platform, &platform.initial_state())
            .unwrap();
        assert!(result.feasible);
        assert_eq!(result.attempts, 1);
        assert_eq!(result.communication_hops, 7);
        assert_eq!(result.buffers.len(), 4);
    }

    #[test]
    fn commit_release_roundtrip() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let mut state = platform.initial_state();
        let result = SpatialMapper::new(MapperConfig::default())
            .map(&spec, &platform, &state)
            .unwrap();
        let before = state.clone();
        result.commit(&spec, &platform, &mut state).unwrap();
        assert_ne!(state, before);
        // Mapping a second instance against the committed state must avoid
        // the occupied MONTIUMs — and therefore fail (Inverse OFDM cannot
        // run on an ARM at 200 MHz).
        let second = SpatialMapper::new(MapperConfig::default()).map(&spec, &platform, &state);
        assert!(second.is_err());
        result.release(&spec, &platform, &mut state).unwrap();
        assert_eq!(state, before);
    }

    #[test]
    fn double_commit_fails_cleanly() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let mut state = platform.initial_state();
        let result = SpatialMapper::new(MapperConfig::default())
            .map(&spec, &platform, &state)
            .unwrap();
        result.commit(&spec, &platform, &mut state).unwrap();
        let snapshot = state.clone();
        assert!(result.commit(&spec, &platform, &mut state).is_err());
        assert_eq!(state, snapshot, "failed commit must roll back");
    }

    #[test]
    fn run_time_knowledge_beats_worst_case() {
        // §1.3: with the actual platform state known at run time, the
        // mapper exploits whatever is free. Occupy ARM1 and let the mapper
        // adapt: the mapping still succeeds using ARM2 only if the ARM
        // processes fit together — otherwise a refinement kicks in. Either
        // way, no panic and a coherent result/error.
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let mut base = platform.initial_state();
        base.claim_tile(
            &platform,
            platform.tile_by_name("ARM1").unwrap(),
            &TileClaim {
                slots: 1,
                memory_bytes: 0,
                cycles_per_second: 0,
                injection: 0,
                ejection: 0,
            },
        )
        .unwrap();
        match SpatialMapper::new(MapperConfig::default()).map(&spec, &platform, &base) {
            Ok(result) => {
                // Pfx and Frq must share ARM2 — only possible if slots
                // allowed it, which they do not (1 slot): so reaching here
                // would mean another packing was found.
                assert!(result.feasible);
            }
            Err(MapError::NoFeasibleMapping { .. }) | Err(MapError::Unmappable { .. }) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn capture_off_identical_outcome_minus_trace() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let state = platform.initial_state();
        let with = SpatialMapper::new(MapperConfig::default())
            .map(&spec, &platform, &state)
            .unwrap();
        let without = SpatialMapper::new(MapperConfig::default().without_capture())
            .map(&spec, &platform, &state)
            .unwrap();
        assert!(with.trace.is_some());
        assert!(without.trace.is_none(), "capture off records no trace");
        assert_eq!(with.mapping, without.mapping);
        assert_eq!(with.buffers, without.buffers);
        assert_eq!(with.energy_pj, without.energy_pj);
        assert_eq!(with.communication_hops, without.communication_hops);
        assert_eq!(with.evaluated, without.evaluated, "counters stay exact");
        assert_eq!(with.attempts, without.attempts);
        assert_eq!(with.achieved_period, without.achieved_period);
    }

    #[test]
    fn pinned_process_lands_on_its_tile() {
        use crate::constraints::MappingConstraints;
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let pfx = spec.graph.process_by_name("Prefix removal").unwrap();
        // Unconstrained, Prefix removal ends on ARM2 (Table 2); pin it to
        // ARM1 and the mapper must honour that, still finding a feasible
        // (if costlier) mapping.
        let arm1 = platform.tile_by_name("ARM1").unwrap();
        let constraints = MappingConstraints::none().pin(pfx, arm1);
        let result = SpatialMapper::default()
            .map_constrained(&spec, &platform, &platform.initial_state(), &constraints)
            .expect("pinning Prefix removal to an ARM stays feasible");
        assert_eq!(result.mapping.assignment(pfx).unwrap().tile, arm1);
        assert!(constraints.satisfied_by(&result.mapping));
    }

    #[test]
    fn pinned_processes_generate_no_step2_candidates() {
        use crate::constraints::MappingConstraints;
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let state = platform.initial_state();
        let mapper = SpatialMapper::default();
        let generated = |constraints: &MappingConstraints| {
            let outcome = mapper
                .map_constrained(&spec, &platform, &state, constraints)
                .expect("paper case maps");
            let trace = outcome.trace.as_ref().expect("capture is on by default");
            (
                outcome.clone(),
                trace
                    .attempts
                    .iter()
                    .map(|a| a.step2.generated)
                    .sum::<u64>(),
            )
        };
        let (_, unpinned_generated) = generated(&MappingConstraints::none());
        // Pin Inverse OFDM where step 1 already puts it: the mapping is
        // unchanged, but its moves and every swap naming it are pruned
        // before the constraint oracle ever sees them.
        let inv = spec.graph.process_by_name("Inverse OFDM").unwrap();
        let (pinned_outcome, pinned_generated) = generated(
            &MappingConstraints::none().pin(inv, platform.tile_by_name("MONTIUM1").unwrap()),
        );
        assert!(
            pinned_generated < unpinned_generated,
            "pruning must shrink the generated neighbourhood \
             ({pinned_generated} vs {unpinned_generated})"
        );
        assert_eq!(
            pinned_outcome.mapping.assignment(inv).unwrap().tile,
            platform.tile_by_name("MONTIUM1").unwrap()
        );
        // No generated candidate ever names the pinned process.
        for attempt in &pinned_outcome.trace.as_ref().unwrap().attempts {
            for event in &attempt.step2.events {
                match event.candidate {
                    crate::trace::Step2Move::Move { process, .. } => assert_ne!(process, inv),
                    crate::trace::Step2Move::Swap { a, b } => {
                        assert_ne!(a, inv);
                        assert_ne!(b, inv);
                    }
                }
            }
        }
    }

    #[test]
    fn excluded_tile_forces_relocation() {
        use crate::constraints::MappingConstraints;
        use rtsm_app::{Endpoint, Implementation, ImplementationLibrary, ProcessGraph, QosSpec};
        use rtsm_dataflow::PhaseVec;
        use rtsm_platform::{Coord, PlatformBuilder};

        // Two identical ARMs; first-fit prefers ARM-a. Excluding it must
        // push the process to ARM-b without violating feasibility.
        let platform = PlatformBuilder::mesh(4, 1)
            .tile_defaults(200, 2, 64 * 1024, 200_000_000)
            .tile("A/D", TileKind::AdcSource, Coord { x: 0, y: 0 })
            .tile("ARM-a", TileKind::Arm, Coord { x: 1, y: 0 })
            .tile("ARM-b", TileKind::Arm, Coord { x: 2, y: 0 })
            .tile("Sink", TileKind::Sink, Coord { x: 3, y: 0 })
            .build()
            .unwrap();
        let mut graph = ProcessGraph::new();
        let p = graph.add_process("Stage");
        graph
            .add_channel(Endpoint::StreamInput, Endpoint::Process(p), 16)
            .unwrap();
        graph
            .add_channel(Endpoint::Process(p), Endpoint::StreamOutput, 16)
            .unwrap();
        let mut library = ImplementationLibrary::new();
        library.register(
            p,
            Implementation::simple(
                "Stage @ ARM",
                TileKind::Arm,
                PhaseVec::from_slice(&[8, 60, 8]),
                PhaseVec::from_slice(&[16, 0, 0]),
                PhaseVec::from_slice(&[0, 0, 16]),
                5_000,
                2048,
            ),
        );
        let spec = ApplicationSpec {
            name: "relocatable app".into(),
            graph,
            qos: QosSpec::with_period(4_000_000),
            library,
        };

        let arm_a = platform.tile_by_name("ARM-a").unwrap();
        let arm_b = platform.tile_by_name("ARM-b").unwrap();
        let unconstrained = SpatialMapper::default()
            .map(&spec, &platform, &platform.initial_state())
            .unwrap();
        assert_eq!(unconstrained.mapping.assignment(p).unwrap().tile, arm_a);

        let constraints = MappingConstraints::none().exclude_tile(arm_a);
        let result = SpatialMapper::default()
            .map_constrained(&spec, &platform, &platform.initial_state(), &constraints)
            .expect("ARM-b can host the process");
        assert_eq!(result.mapping.assignment(p).unwrap().tile, arm_b);
        assert!(constraints.satisfied_by(&result.mapping));
    }

    #[test]
    fn unsatisfiable_constraints_fail_cleanly() {
        use crate::constraints::MappingConstraints;
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        // Excluding both MONTIUMs leaves Inverse OFDM (MONTIUM-only at
        // 200 MHz) nowhere to go.
        let constraints = MappingConstraints::none()
            .exclude_tile(platform.tile_by_name("MONTIUM1").unwrap())
            .exclude_tile(platform.tile_by_name("MONTIUM2").unwrap());
        let err = SpatialMapper::default()
            .map_constrained(&spec, &platform, &platform.initial_state(), &constraints)
            .unwrap_err();
        assert!(matches!(
            err,
            MapError::Unmappable { .. } | MapError::NoFeasibleMapping { .. }
        ));
    }

    #[test]
    fn empty_constraints_reproduce_unconstrained_outcome() {
        use crate::constraints::MappingConstraints;
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let state = platform.initial_state();
        let unconstrained = SpatialMapper::default()
            .map(&spec, &platform, &state)
            .unwrap();
        let constrained = SpatialMapper::default()
            .map_constrained(&spec, &platform, &state, &MappingConstraints::none())
            .unwrap();
        assert_eq!(unconstrained, constrained);
    }

    #[test]
    fn missing_sink_tile_reported() {
        use rtsm_platform::{Coord, PlatformBuilder};
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = PlatformBuilder::mesh(2, 2)
            .tile("adc", TileKind::AdcSource, Coord { x: 0, y: 0 })
            .tile("arm", TileKind::Arm, Coord { x: 1, y: 0 })
            .tile("m", TileKind::Montium, Coord { x: 0, y: 1 })
            .build()
            .unwrap();
        let err = SpatialMapper::new(MapperConfig::default())
            .map(&spec, &platform, &platform.initial_state())
            .unwrap_err();
        assert!(matches!(err, MapError::NoStreamEndpoint { which: "Sink" }));
    }

    #[test]
    fn buffer_overflow_feedback_relocates_process() {
        use rtsm_app::{Endpoint, Implementation, ImplementationLibrary, ProcessGraph, QosSpec};
        use rtsm_dataflow::PhaseVec;
        use rtsm_platform::{Coord, PlatformBuilder, Tile};

        // One burst-consuming process: its input buffer must hold the whole
        // 64-token burst (256 bytes). ARM-tight has memory for the
        // implementation but not the buffer; ARM-roomy has plenty but sits
        // further away. Steps 1–2 prefer ARM-tight; step 4's buffer check
        // must push the process to ARM-roomy via feedback.
        let tile = |name: &str, kind, x, y, mem| Tile {
            name: name.into(),
            kind,
            position: Coord { x, y },
            clock_mhz: 200,
            compute_slots: 1,
            memory_bytes: mem,
            ni_injection: 200_000_000,
            ni_ejection: 200_000_000,
        };
        let platform = PlatformBuilder::mesh(3, 3)
            .tile_custom(tile("ARM-tight", TileKind::Arm, 0, 1, 1024 + 100))
            .tile_custom(tile("ARM-roomy", TileKind::Arm, 2, 1, 64 * 1024))
            .tile_custom(tile("A/D", TileKind::AdcSource, 0, 0, 1024))
            .tile_custom(tile("Sink", TileKind::Sink, 0, 2, 1024))
            .build()
            .unwrap();

        let mut graph = ProcessGraph::new();
        let p = graph.add_process("Burst");
        graph
            .add_channel(Endpoint::StreamInput, Endpoint::Process(p), 64)
            .unwrap();
        graph
            .add_channel(Endpoint::Process(p), Endpoint::StreamOutput, 64)
            .unwrap();
        let mut library = ImplementationLibrary::new();
        library.register(
            p,
            Implementation::simple(
                "Burst @ ARM",
                TileKind::Arm,
                PhaseVec::from_slice(&[16, 100, 16]),
                PhaseVec::from_slice(&[64, 0, 0]), // whole-burst read: B ≥ 64
                PhaseVec::from_slice(&[0, 0, 64]),
                10_000,
                1024,
            ),
        );
        let spec = ApplicationSpec {
            name: "burst app".into(),
            graph,
            qos: QosSpec::with_period(4_000_000),
            library,
        };

        let result = SpatialMapper::new(MapperConfig::default())
            .map(&spec, &platform, &platform.initial_state())
            .expect("refinement relocates the process");
        assert!(result.attempts >= 2, "expected a refinement round");
        let a = result.mapping.assignment(p).unwrap();
        assert_eq!(platform.tile(a.tile).name, "ARM-roomy");
        // The overflow feedback is visible in the failed attempt's trace.
        assert!(result.trace.as_ref().unwrap().attempts[0]
            .feedback
            .iter()
            .any(|f| matches!(f, crate::Feedback::BufferOverflow { .. })));
    }

    #[test]
    fn multi_slot_tile_hosts_two_light_processes() {
        use rtsm_app::{Endpoint, Implementation, ImplementationLibrary, ProcessGraph, QosSpec};
        use rtsm_dataflow::PhaseVec;
        use rtsm_platform::{Coord, PlatformBuilder};

        // A single 2-slot ARM: both pipeline stages must share it (same-tile
        // channel, no NoC traffic), within the combined cycle budget.
        let platform = PlatformBuilder::mesh(3, 1)
            .tile_defaults(200, 2, 64 * 1024, 200_000_000)
            .tile("ARM", TileKind::Arm, Coord { x: 1, y: 0 })
            .tile("A/D", TileKind::AdcSource, Coord { x: 0, y: 0 })
            .tile("Sink", TileKind::Sink, Coord { x: 2, y: 0 })
            .build()
            .unwrap();
        let mut graph = ProcessGraph::new();
        let a = graph.add_process("StageA");
        let b = graph.add_process("StageB");
        graph
            .add_channel(Endpoint::StreamInput, Endpoint::Process(a), 16)
            .unwrap();
        graph
            .add_channel(Endpoint::Process(a), Endpoint::Process(b), 16)
            .unwrap();
        graph
            .add_channel(Endpoint::Process(b), Endpoint::StreamOutput, 16)
            .unwrap();
        let mut library = ImplementationLibrary::new();
        for (pid, name) in [(a, "StageA"), (b, "StageB")] {
            library.register(
                pid,
                Implementation::simple(
                    format!("{name} @ ARM"),
                    TileKind::Arm,
                    PhaseVec::from_slice(&[8, 60, 8]), // 76 cc ≪ 800-cc budget
                    PhaseVec::from_slice(&[16, 0, 0]),
                    PhaseVec::from_slice(&[0, 0, 16]),
                    5_000,
                    2048,
                ),
            );
        }
        let spec = ApplicationSpec {
            name: "shared-tile app".into(),
            graph,
            qos: QosSpec::with_period(4_000_000),
            library,
        };
        let result = SpatialMapper::new(MapperConfig::default())
            .map(&spec, &platform, &platform.initial_state())
            .expect("two light processes share the 2-slot ARM");
        let ta = result.mapping.assignment(a).unwrap().tile;
        let tb = result.mapping.assignment(b).unwrap().tile;
        assert_eq!(ta, tb, "both stages on the shared tile");
        // The A→B channel is realised in local memory.
        let shared = spec
            .graph
            .stream_channels()
            .find(|(_, c)| {
                c.src == rtsm_app::Endpoint::Process(a) && c.dst == rtsm_app::Endpoint::Process(b)
            })
            .unwrap()
            .0;
        assert_eq!(
            result.mapping.route(shared),
            Some(&crate::RouteBinding::SameTile)
        );
    }

    #[test]
    fn xy_routing_policy_maps_paper_case_identically() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let config = MapperConfig {
            routing: RoutingPolicy::DimensionOrdered,
            ..MapperConfig::default()
        };
        let result = SpatialMapper::new(config)
            .map(&spec, &platform, &platform.initial_state())
            .expect("XY routes the uncongested paper case");
        // Same placement and cost; only path shapes may differ.
        assert_eq!(result.communication_hops, 7);
        assert!(result.feasible);
    }

    #[test]
    fn energy_account_is_consistent() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let result = SpatialMapper::new(MapperConfig::default())
            .map(&spec, &platform, &platform.initial_state())
            .unwrap();
        let recomputed = result
            .mapping
            .energy_pj(&spec, &platform, &EnergyModel::default());
        assert_eq!(result.energy_pj, recomputed);
    }
}
