//! Resource claims derived from an implementation choice.

use rtsm_app::{ApplicationSpec, Implementation, ProcessId};
use rtsm_platform::TileClaim;

/// The tile resources a process claims when `implementation` serves it:
/// one compute slot, the implementation's memory, its WCET as a share of
/// the tile's cycle budget, and NI bandwidth for its channel traffic.
pub fn claim_for(
    spec: &ApplicationSpec,
    process: ProcessId,
    implementation: &Implementation,
) -> TileClaim {
    let cycles_per_period = spec.cycles_per_period(process, implementation);
    let wcet = implementation.wcet_per_period(cycles_per_period);
    // cycles/period ÷ period_ps × 1e12 ps/s = cycles/second.
    let cycles_per_second =
        (wcet as u128 * 1_000_000_000_000u128 / spec.qos.period_ps as u128) as u64;
    let ejection: u64 = spec
        .graph
        .inputs_of(process)
        .iter()
        .map(|ch| {
            spec.qos
                .words_per_second(spec.graph.channel(*ch).tokens_per_period)
        })
        .sum();
    let injection: u64 = spec
        .graph
        .outputs_of(process)
        .iter()
        .map(|ch| {
            spec.qos
                .words_per_second(spec.graph.channel(*ch).tokens_per_period)
        })
        .sum();
    TileClaim {
        slots: 1,
        memory_bytes: implementation.memory_bytes,
        cycles_per_second,
        injection,
        ejection,
    }
}

/// The part of a claim that is *reserved* when a process is assigned to a
/// tile in steps 1–2: slot, memory and cycles. The NI fields of
/// [`claim_for`] are a **filter** ("tiles … that have sufficient
/// communication resources … at least, locally", §3.2); actual NI bandwidth
/// is reserved per channel by step 3's route allocation, so reserving it
/// here too would double-count.
pub fn reservation_of(claim: &TileClaim) -> TileClaim {
    TileClaim {
        injection: 0,
        ejection: 0,
        ..*claim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
    use rtsm_platform::TileKind;

    #[test]
    fn prefix_removal_arm_claim() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let pfx = spec.graph.process_by_name("Prefix removal").unwrap();
        let arm = spec.library.impl_for(pfx, TileKind::Arm).unwrap();
        let claim = claim_for(&spec, pfx, arm);
        // 324 cycles per 4 µs = 81e6 cycles/s.
        assert_eq!(claim.cycles_per_second, 81_000_000);
        // Input 80 tokens/4 µs = 20M words/s; output 64 → 16M words/s.
        assert_eq!(claim.ejection, 20_000_000);
        assert_eq!(claim.injection, 16_000_000);
        assert_eq!(claim.slots, 1);
    }

    #[test]
    fn frq_arm_claim_accounts_for_eight_cycles() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let frq = spec.graph.process_by_name("Freq. off. correction").unwrap();
        let arm = spec.library.impl_for(frq, TileKind::Arm).unwrap();
        let claim = claim_for(&spec, frq, arm);
        // 8 firing-cycles × 68 cycles per 4 µs = 136e6 cycles/s.
        assert_eq!(claim.cycles_per_second, 136_000_000);
    }

    #[test]
    fn iofdm_arm_exceeds_200mhz_budget() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let iofdm = spec.graph.process_by_name("Inverse OFDM").unwrap();
        let arm = spec.library.impl_for(iofdm, TileKind::Arm).unwrap();
        let claim = claim_for(&spec, iofdm, arm);
        // 4370 cycles per 4 µs = 1.0925e9 cycles/s > 200e6: infeasible on
        // the paper platform's 200 MHz tiles.
        assert!(claim.cycles_per_second > 200_000_000);
    }
}
