//! The unified mapping-algorithm interface.
//!
//! Every spatial mapper in the workspace — the paper's four-step heuristic
//! ([`SpatialMapper`](crate::SpatialMapper)) and the baseline comparators in
//! `rtsm_baselines` — implements one trait, [`MappingAlgorithm`], and
//! produces one outcome type, [`MappingOutcome`]. This is what makes the
//! benchmarks apples-to-apples and what the run-time manager
//! ([`RuntimeManager`](crate::RuntimeManager)) plugs algorithms into.

use crate::claims::{claim_for, reservation_of};
use crate::error::MapError;
use crate::mapping::{Mapping, RouteBinding};
use crate::step4::ChannelBuffer;
use crate::trace::MapTrace;
use rtsm_app::ApplicationSpec;
use rtsm_dataflow::CsdfGraph;
use rtsm_platform::{routing, Platform, PlatformError, PlatformState, TileClaim};
use serde::{Deserialize, Serialize};

/// A feasible spatial mapping with everything needed to report it, compare
/// it against other algorithms' results, and commit it onto a platform —
/// the single outcome type shared by the heuristic and every baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingOutcome {
    /// The mapping (process assignments and channel routes).
    pub mapping: Mapping,
    /// Computed tile-side buffers (`B_i`), needed to commit the mapping.
    pub buffers: Vec<ChannelBuffer>,
    /// The composed CSDF graph (Figure 3), when the algorithm retains it.
    pub csdf: Option<CsdfGraph>,
    /// Total energy per period in picojoules (processing + communication).
    pub energy_pj: u64,
    /// The paper's communication cost (Σ Manhattan hops).
    pub communication_hops: u32,
    /// Whether step 4's dataflow analysis accepted the mapping (always
    /// `true` for outcomes returned via `Ok`; retained for traces).
    pub feasible: bool,
    /// Search effort: algorithm-specific count of evaluated assignments.
    pub evaluated: u64,
    /// Number of refinement attempts used (1 = first try).
    pub attempts: usize,
    /// Achieved source period `(time_ps, iterations)`.
    pub achieved_period: (u64, u64),
    /// Measured latency, when a bound was specified.
    pub latency_ps: Option<u64>,
    /// Full search trace, when the algorithm records one.
    pub trace: Option<MapTrace>,
}

impl MappingOutcome {
    /// Reserves this mapping's resources on `state`: tile claims, buffer
    /// memory, and routed-path bandwidth. Use when actually *starting* the
    /// application; [`MappingOutcome::release`] is the exact inverse.
    ///
    /// # Errors
    ///
    /// [`PlatformError`] if `state` no longer has the resources (another
    /// application claimed them since mapping); partial reservations are
    /// rolled back.
    pub fn commit(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        state: &mut PlatformState,
    ) -> Result<(), PlatformError> {
        let snapshot = state.clone();
        match self.try_commit(spec, platform, state) {
            Ok(()) => Ok(()),
            Err(e) => {
                *state = snapshot;
                Err(e)
            }
        }
    }

    fn try_commit(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        state: &mut PlatformState,
    ) -> Result<(), PlatformError> {
        for (pid, assignment) in self.mapping.assignments() {
            let implementation = &spec.library.impls_for(pid)[assignment.impl_index];
            let claim = claim_for(spec, pid, implementation);
            state.claim_tile(platform, assignment.tile, &reservation_of(&claim))?;
        }
        for buffer in &self.buffers {
            state.claim_tile(
                platform,
                buffer.tile,
                &TileClaim {
                    slots: 0,
                    memory_bytes: buffer.capacity_words * 4,
                    cycles_per_second: 0,
                    injection: 0,
                    ejection: 0,
                },
            )?;
        }
        for (_, route) in self.mapping.routes() {
            if let RouteBinding::Path(path) = route {
                routing::allocate(platform, state, path)?;
            }
        }
        Ok(())
    }

    /// Releases everything [`MappingOutcome::commit`] reserved (the
    /// application stopped).
    ///
    /// # Errors
    ///
    /// [`PlatformError`] if the reservations were not present; like
    /// [`MappingOutcome::commit`], partial releases are rolled back, so a
    /// failed release leaves `state` exactly as it was.
    pub fn release(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        state: &mut PlatformState,
    ) -> Result<(), PlatformError> {
        let snapshot = state.clone();
        match self.try_release(spec, platform, state) {
            Ok(()) => Ok(()),
            Err(e) => {
                *state = snapshot;
                Err(e)
            }
        }
    }

    fn try_release(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        state: &mut PlatformState,
    ) -> Result<(), PlatformError> {
        for (pid, assignment) in self.mapping.assignments() {
            let implementation = &spec.library.impls_for(pid)[assignment.impl_index];
            let claim = claim_for(spec, pid, implementation);
            state.release_tile(assignment.tile, &reservation_of(&claim))?;
        }
        for buffer in &self.buffers {
            state.release_tile(
                buffer.tile,
                &TileClaim {
                    slots: 0,
                    memory_bytes: buffer.capacity_words * 4,
                    cycles_per_second: 0,
                    injection: 0,
                    ejection: 0,
                },
            )?;
        }
        for (_, route) in self.mapping.routes() {
            if let RouteBinding::Path(path) = route {
                routing::release(platform, state, path)?;
            }
        }
        Ok(())
    }
}

/// A spatial-mapping algorithm: given an application, a platform, and the
/// current occupancy, either produce a feasible [`MappingOutcome`] or
/// explain why none exists.
///
/// Implementors must *not* mutate `base`; starting an application is a
/// separate, explicit step ([`MappingOutcome::commit`], or
/// [`RuntimeManager::start`](crate::RuntimeManager::start) which does both
/// atomically).
pub trait MappingAlgorithm {
    /// Display name for tables and reports.
    fn name(&self) -> &str;

    /// Maps `spec` onto `platform` over occupancy `base`.
    ///
    /// # Errors
    ///
    /// * [`MapError::NoFeasibleMapping`] when the algorithm's search
    ///   exhausts without a feasible mapping;
    /// * algorithm-specific variants such as [`MapError::InvalidSpec`] or
    ///   [`MapError::Unmappable`] where applicable.
    fn map(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        base: &PlatformState,
    ) -> Result<MappingOutcome, MapError>;
}

impl<A: MappingAlgorithm + ?Sized> MappingAlgorithm for &A {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn map(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        base: &PlatformState,
    ) -> Result<MappingOutcome, MapError> {
        (**self).map(spec, platform, base)
    }
}

impl<A: MappingAlgorithm + ?Sized> MappingAlgorithm for Box<A> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn map(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        base: &PlatformState,
    ) -> Result<MappingOutcome, MapError> {
        (**self).map(spec, platform, base)
    }
}
