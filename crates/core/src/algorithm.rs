//! The unified mapping-algorithm interface.
//!
//! Every spatial mapper in the workspace — the paper's four-step heuristic
//! ([`SpatialMapper`](crate::SpatialMapper)) and the baseline comparators in
//! `rtsm_baselines` — implements one trait, [`MappingAlgorithm`], and
//! produces one outcome type, [`MappingOutcome`]. This is what makes the
//! benchmarks apples-to-apples and what the run-time manager
//! ([`RuntimeManager`](crate::RuntimeManager)) plugs algorithms into.

use crate::claims::{claim_for, reservation_of};
use crate::constraints::MappingConstraints;
use crate::error::MapError;
use crate::mapping::{Mapping, RouteBinding};
use crate::step4::ChannelBuffer;
use crate::trace::MapTrace;
use rtsm_app::ApplicationSpec;
use rtsm_dataflow::CsdfGraph;
use rtsm_platform::{Platform, PlatformError, PlatformState, PlatformTransaction, TileClaim};
use serde::{Deserialize, Serialize};

/// A feasible spatial mapping with everything needed to report it, compare
/// it against other algorithms' results, and commit it onto a platform —
/// the single outcome type shared by the heuristic and every baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingOutcome {
    /// The mapping (process assignments and channel routes).
    pub mapping: Mapping,
    /// Computed tile-side buffers (`B_i`), needed to commit the mapping.
    pub buffers: Vec<ChannelBuffer>,
    /// The composed CSDF graph (Figure 3), when the algorithm retains it.
    pub csdf: Option<CsdfGraph>,
    /// Total energy per period in picojoules (processing + communication).
    pub energy_pj: u64,
    /// The paper's communication cost (Σ Manhattan hops).
    pub communication_hops: u32,
    /// Whether step 4's dataflow analysis accepted the mapping (always
    /// `true` for outcomes returned via `Ok`; retained for traces).
    pub feasible: bool,
    /// Search effort: algorithm-specific count of evaluated assignments.
    pub evaluated: u64,
    /// Number of refinement attempts used (1 = first try).
    pub attempts: usize,
    /// Achieved source period `(time_ps, iterations)`.
    pub achieved_period: (u64, u64),
    /// Measured latency, when a bound was specified.
    pub latency_ps: Option<u64>,
    /// Full search trace, when the algorithm records one.
    pub trace: Option<MapTrace>,
}

impl MappingOutcome {
    /// Reserves this mapping's resources on `state`: tile claims, buffer
    /// memory, and routed-path bandwidth. Use when actually *starting* the
    /// application; [`MappingOutcome::release`] is the exact inverse.
    ///
    /// # Errors
    ///
    /// [`PlatformError`] if `state` no longer has the resources (another
    /// application claimed them since mapping); partial reservations are
    /// rolled back.
    pub fn commit(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        state: &mut PlatformState,
    ) -> Result<(), PlatformError> {
        let mut tx = PlatformTransaction::begin(platform, state);
        self.stage_commit(spec, &mut tx)?; // early return drops tx: rollback
        tx.commit();
        Ok(())
    }

    /// Stages this mapping's reservations into an open transaction —
    /// the composable form of [`MappingOutcome::commit`] that migration
    /// plans use to combine several releases and commits into one
    /// all-or-nothing unit.
    ///
    /// # Errors
    ///
    /// [`PlatformError`] if a reservation does not fit the transaction's
    /// current state. Reservations staged before the failure stay in the
    /// transaction (aborting it undoes them with everything else).
    pub fn stage_commit(
        &self,
        spec: &ApplicationSpec,
        tx: &mut PlatformTransaction<'_>,
    ) -> Result<(), PlatformError> {
        for (pid, assignment) in self.mapping.assignments() {
            let implementation = &spec.library.impls_for(pid)[assignment.impl_index];
            let claim = claim_for(spec, pid, implementation);
            tx.claim_tile(assignment.tile, &reservation_of(&claim))?;
        }
        for buffer in &self.buffers {
            tx.claim_tile(buffer.tile, &buffer_claim(buffer))?;
        }
        for (_, route) in self.mapping.routes() {
            if let RouteBinding::Path(path) = route {
                tx.allocate_path(path)?;
            }
        }
        Ok(())
    }

    /// Releases everything [`MappingOutcome::commit`] reserved (the
    /// application stopped).
    ///
    /// # Errors
    ///
    /// [`PlatformError`] if the reservations were not present; like
    /// [`MappingOutcome::commit`], partial releases are rolled back, so a
    /// failed release leaves `state` exactly as it was.
    pub fn release(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        state: &mut PlatformState,
    ) -> Result<(), PlatformError> {
        let mut tx = PlatformTransaction::begin(platform, state);
        self.stage_release(spec, &mut tx)?;
        tx.commit();
        Ok(())
    }

    /// Stages the release of this mapping's reservations into an open
    /// transaction — the inverse of [`MappingOutcome::stage_commit`].
    /// Migration plans stage the releases of every app they move *first*,
    /// so re-mapping inside the same transaction can reuse the freed
    /// resources (release-before-claim).
    ///
    /// # Errors
    ///
    /// [`PlatformError`] if a reservation is not present in the
    /// transaction's current state.
    pub fn stage_release(
        &self,
        spec: &ApplicationSpec,
        tx: &mut PlatformTransaction<'_>,
    ) -> Result<(), PlatformError> {
        for (pid, assignment) in self.mapping.assignments() {
            let implementation = &spec.library.impls_for(pid)[assignment.impl_index];
            let claim = claim_for(spec, pid, implementation);
            tx.release_tile(assignment.tile, &reservation_of(&claim))?;
        }
        for buffer in &self.buffers {
            tx.release_tile(buffer.tile, &buffer_claim(buffer))?;
        }
        for (_, route) in self.mapping.routes() {
            if let RouteBinding::Path(path) = route {
                tx.release_path(path)?;
            }
        }
        Ok(())
    }
}

/// The tile-memory claim of one computed channel buffer.
fn buffer_claim(buffer: &ChannelBuffer) -> TileClaim {
    TileClaim {
        slots: 0,
        memory_bytes: buffer.capacity_words * 4,
        cycles_per_second: 0,
        injection: 0,
        ejection: 0,
    }
}

/// A spatial-mapping algorithm: given an application, a platform, and the
/// current occupancy, either produce a feasible [`MappingOutcome`] or
/// explain why none exists.
///
/// Implementors must *not* mutate `base`; starting an application is a
/// separate, explicit step ([`MappingOutcome::commit`], or
/// [`RuntimeManager::start`](crate::RuntimeManager::start) which does both
/// atomically).
///
/// The required method is the constraint-aware
/// [`map_constrained`](MappingAlgorithm::map_constrained); the familiar
/// [`map`](MappingAlgorithm::map) is a provided wrapper passing
/// [`MappingConstraints::none`], so unconstrained callers and outputs are
/// untouched by the constraint machinery.
pub trait MappingAlgorithm {
    /// Display name for tables and reports.
    fn name(&self) -> &str;

    /// Maps `spec` onto `platform` over occupancy `base`, honouring the
    /// caller-imposed `constraints` (pinned processes, excluded tiles). A
    /// returned mapping always satisfies
    /// [`MappingConstraints::satisfied_by`].
    ///
    /// # Errors
    ///
    /// * [`MapError::NoFeasibleMapping`] when the algorithm's search
    ///   exhausts without a feasible mapping (including when the
    ///   constraints leave no room);
    /// * algorithm-specific variants such as [`MapError::InvalidSpec`] or
    ///   [`MapError::Unmappable`] where applicable.
    fn map_constrained(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        base: &PlatformState,
        constraints: &MappingConstraints,
    ) -> Result<MappingOutcome, MapError>;

    /// Maps `spec` onto `platform` over occupancy `base`, unconstrained —
    /// shorthand for [`map_constrained`](MappingAlgorithm::map_constrained)
    /// with [`MappingConstraints::none`].
    ///
    /// # Errors
    ///
    /// As for [`map_constrained`](MappingAlgorithm::map_constrained).
    fn map(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        base: &PlatformState,
    ) -> Result<MappingOutcome, MapError> {
        self.map_constrained(spec, platform, base, &MappingConstraints::none())
    }
}

impl<A: MappingAlgorithm + ?Sized> MappingAlgorithm for &A {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn map_constrained(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        base: &PlatformState,
        constraints: &MappingConstraints,
    ) -> Result<MappingOutcome, MapError> {
        (**self).map_constrained(spec, platform, base, constraints)
    }

    fn map(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        base: &PlatformState,
    ) -> Result<MappingOutcome, MapError> {
        (**self).map(spec, platform, base)
    }
}

impl<A: MappingAlgorithm + ?Sized> MappingAlgorithm for Box<A> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn map_constrained(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        base: &PlatformState,
        constraints: &MappingConstraints,
    ) -> Result<MappingOutcome, MapError> {
        (**self).map_constrained(spec, platform, base, constraints)
    }

    fn map(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        base: &PlatformState,
    ) -> Result<MappingOutcome, MapError> {
        (**self).map(spec, platform, base)
    }
}
