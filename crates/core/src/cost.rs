//! Pluggable cost models for steps 1–2.
//!
//! The paper's Table 2 uses the plain sum of channel Manhattan distances;
//! the overall objective is energy. Both are provided, plus a
//! traffic-weighted middle ground, so ablation benches can compare them.

use crate::mapping::Mapping;
use rtsm_app::ApplicationSpec;
use rtsm_platform::{EnergyModel, Platform};
use serde::{Deserialize, Serialize};

/// How step 2 scores a (complete) tile assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CostModel {
    /// Σ channel Manhattan distance — the paper's Table 2 cost.
    #[default]
    HopCount,
    /// Σ channel Manhattan distance × tokens/period.
    TrafficWeighted,
    /// Full energy objective (processing + estimated communication).
    Energy(EnergyModel),
}

impl CostModel {
    /// Cost of `mapping`; lower is better. Units depend on the model (hops,
    /// token-hops, or picojoules).
    pub fn cost(&self, mapping: &Mapping, spec: &ApplicationSpec, platform: &Platform) -> u64 {
        match self {
            CostModel::HopCount => u64::from(mapping.communication_hops(spec, platform)),
            CostModel::TrafficWeighted => spec
                .graph
                .stream_channels()
                .filter_map(|(_, ch)| {
                    let a = mapping.endpoint_tile(platform, ch.src)?;
                    let b = mapping.endpoint_tile(platform, ch.dst)?;
                    Some(u64::from(platform.manhattan(a, b)) * ch.tokens_per_period)
                })
                .sum(),
            CostModel::Energy(model) => mapping.energy_pj(spec, platform, model),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
    use rtsm_platform::paper::paper_platform;

    fn paper_initial() -> (ApplicationSpec, Platform, Mapping) {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let mut m = Mapping::new();
        let p = |n: &str| spec.graph.process_by_name(n).unwrap();
        let t = |n: &str| platform.tile_by_name(n).unwrap();
        m.assign(p("Prefix removal"), 0, t("ARM1"));
        m.assign(p("Freq. off. correction"), 0, t("ARM2"));
        m.assign(p("Inverse OFDM"), 1, t("MONTIUM1"));
        m.assign(p("Remainder"), 1, t("MONTIUM2"));
        (spec, platform, m)
    }

    #[test]
    fn hop_count_matches_table2() {
        let (spec, platform, m) = paper_initial();
        assert_eq!(CostModel::HopCount.cost(&m, &spec, &platform), 11);
    }

    #[test]
    fn traffic_weighted_counts_tokens() {
        let (spec, platform, m) = paper_initial();
        // A/D→Pfx: 1 hop × 80; Pfx→Frq: 2 × 64; Frq→iOFDM: 3 × 64;
        // iOFDM→Rem: 2 × 52; Rem→Sink: 3 × 24.
        let expected = 80 + 128 + 192 + 104 + 72;
        assert_eq!(
            CostModel::TrafficWeighted.cost(&m, &spec, &platform),
            expected
        );
    }

    #[test]
    fn energy_cost_includes_processing() {
        let (spec, platform, m) = paper_initial();
        let cost = CostModel::Energy(EnergyModel::default()).cost(&m, &spec, &platform);
        assert!(cost >= 60_000 + 62_000 + 143_000 + 76_000);
    }

    #[test]
    fn default_is_paper_mode() {
        assert_eq!(CostModel::default(), CostModel::HopCount);
    }
}
