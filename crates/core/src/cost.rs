//! Pluggable cost models for steps 1–2.
//!
//! The paper's Table 2 uses the plain sum of channel Manhattan distances;
//! the overall objective is energy. Both are provided, plus a
//! traffic-weighted middle ground, so ablation benches can compare them.

use crate::mapping::Mapping;
use rtsm_app::ApplicationSpec;
use rtsm_platform::{EnergyModel, Platform, TileId};
use serde::{Deserialize, Serialize};

/// How step 2 scores a (complete) tile assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CostModel {
    /// Σ channel Manhattan distance — the paper's Table 2 cost.
    #[default]
    HopCount,
    /// Σ channel Manhattan distance × tokens/period.
    TrafficWeighted,
    /// Full energy objective (processing + estimated communication).
    Energy(EnergyModel),
}

impl CostModel {
    /// Cost of `mapping`; lower is better. Units depend on the model (hops,
    /// token-hops, or picojoules).
    pub fn cost(&self, mapping: &Mapping, spec: &ApplicationSpec, platform: &Platform) -> u64 {
        match self {
            CostModel::HopCount => u64::from(mapping.communication_hops(spec, platform)),
            CostModel::TrafficWeighted => spec
                .graph
                .stream_channels()
                .filter_map(|(_, ch)| {
                    let a = mapping.endpoint_tile(platform, ch.src)?;
                    let b = mapping.endpoint_tile(platform, ch.dst)?;
                    Some(u64::from(platform.manhattan(a, b)) * ch.tokens_per_period)
                })
                .sum(),
            CostModel::Energy(model) => mapping.energy_pj(spec, platform, model),
        }
    }

    /// The per-channel term of this model for a channel carrying
    /// `tokens_per_period` between tiles `a` and `b` (Manhattan estimate —
    /// what steps 1–2 use before any route exists).
    ///
    /// All three models decompose as `base + Σ channel terms`, which is
    /// what makes step 2's O(degree) incremental rescoring exact: a move or
    /// swap only changes the terms of channels incident to the touched
    /// processes.
    pub fn channel_cost(
        &self,
        platform: &Platform,
        tokens_per_period: u64,
        a: TileId,
        b: TileId,
    ) -> u64 {
        let hops = platform.manhattan(a, b);
        match self {
            CostModel::HopCount => u64::from(hops),
            CostModel::TrafficWeighted => u64::from(hops) * tokens_per_period,
            CostModel::Energy(model) => model.channel_energy_pj(tokens_per_period, hops),
        }
    }

    /// The channel-independent base term of this model: zero for the
    /// distance models, the summed processing energy of the chosen
    /// implementations for [`CostModel::Energy`].
    pub fn base_cost(&self, mapping: &Mapping, spec: &ApplicationSpec) -> u64 {
        match self {
            CostModel::HopCount | CostModel::TrafficWeighted => 0,
            CostModel::Energy(_) => mapping
                .assignments()
                .map(|(p, a)| spec.library.impls_for(p)[a.impl_index].energy_pj_per_period)
                .sum(),
        }
    }

    /// Full recompute of the decomposed form: `base + Σ channel terms` over
    /// channels whose endpoints are both mapped. Equal to
    /// [`CostModel::cost`] on assignment-only mappings (no routes bound) —
    /// step 2's debug assertions hold the incremental deltas to this.
    pub fn assignment_cost(
        &self,
        mapping: &Mapping,
        spec: &ApplicationSpec,
        platform: &Platform,
    ) -> u64 {
        self.base_cost(mapping, spec)
            + spec
                .graph
                .stream_channels()
                .filter_map(|(_, ch)| {
                    let a = mapping.endpoint_tile(platform, ch.src)?;
                    let b = mapping.endpoint_tile(platform, ch.dst)?;
                    Some(self.channel_cost(platform, ch.tokens_per_period, a, b))
                })
                .sum::<u64>()
    }

    /// The state-transfer cost of reconfiguring an application from `old`
    /// to `new`: every process whose tile changed ships its
    /// implementation's memory image (in 32-bit words) between the tiles,
    /// priced by this model's per-channel term
    /// ([`CostModel::channel_cost`]) — the *same* decomposition victim
    /// ranking and step 2 use, so migration energy is not a side-band
    /// account. Returns `(processes_moved, total_cost)`; units follow the
    /// model (hops, word-hops, or picojoules for [`CostModel::Energy`]).
    ///
    /// Processes present only in one of the two mappings contribute
    /// nothing: there is no state to transfer for a process that was not
    /// running before or does not run after.
    pub fn migration_cost(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        old: &Mapping,
        new: &Mapping,
    ) -> (usize, u64) {
        let mut processes_moved = 0;
        let mut cost = 0u64;
        for (pid, old_assignment) in old.assignments() {
            let Some(new_assignment) = new.assignment(pid) else {
                continue;
            };
            if new_assignment.tile == old_assignment.tile {
                continue;
            }
            processes_moved += 1;
            let memory_words =
                spec.library.impls_for(pid)[old_assignment.impl_index].memory_bytes / 4;
            cost += self.channel_cost(
                platform,
                memory_words,
                old_assignment.tile,
                new_assignment.tile,
            );
        }
        (processes_moved, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
    use rtsm_platform::paper::paper_platform;

    fn paper_initial() -> (ApplicationSpec, Platform, Mapping) {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let mut m = Mapping::new();
        let p = |n: &str| spec.graph.process_by_name(n).unwrap();
        let t = |n: &str| platform.tile_by_name(n).unwrap();
        m.assign(p("Prefix removal"), 0, t("ARM1"));
        m.assign(p("Freq. off. correction"), 0, t("ARM2"));
        m.assign(p("Inverse OFDM"), 1, t("MONTIUM1"));
        m.assign(p("Remainder"), 1, t("MONTIUM2"));
        (spec, platform, m)
    }

    #[test]
    fn hop_count_matches_table2() {
        let (spec, platform, m) = paper_initial();
        assert_eq!(CostModel::HopCount.cost(&m, &spec, &platform), 11);
    }

    #[test]
    fn traffic_weighted_counts_tokens() {
        let (spec, platform, m) = paper_initial();
        // A/D→Pfx: 1 hop × 80; Pfx→Frq: 2 × 64; Frq→iOFDM: 3 × 64;
        // iOFDM→Rem: 2 × 52; Rem→Sink: 3 × 24.
        let expected = 80 + 128 + 192 + 104 + 72;
        assert_eq!(
            CostModel::TrafficWeighted.cost(&m, &spec, &platform),
            expected
        );
    }

    #[test]
    fn energy_cost_includes_processing() {
        let (spec, platform, m) = paper_initial();
        let cost = CostModel::Energy(EnergyModel::default()).cost(&m, &spec, &platform);
        assert!(cost >= 60_000 + 62_000 + 143_000 + 76_000);
    }

    #[test]
    fn default_is_paper_mode() {
        assert_eq!(CostModel::default(), CostModel::HopCount);
    }

    #[test]
    fn migration_cost_prices_moved_state_through_channel_terms() {
        let (spec, platform, old) = paper_initial();
        // Unchanged mapping: nothing moves, nothing is charged.
        for model in [
            CostModel::HopCount,
            CostModel::TrafficWeighted,
            CostModel::Energy(EnergyModel::default()),
        ] {
            assert_eq!(model.migration_cost(&spec, &platform, &old, &old), (0, 0));
        }
        // Swap the two ARM processes: both memory images travel the
        // ARM1↔ARM2 distance, priced exactly by the per-channel term.
        let mut new = old.clone();
        let pfx = spec.graph.process_by_name("Prefix removal").unwrap();
        let frq = spec.graph.process_by_name("Freq. off. correction").unwrap();
        let arm1 = platform.tile_by_name("ARM1").unwrap();
        let arm2 = platform.tile_by_name("ARM2").unwrap();
        new.assign(pfx, 0, arm2);
        new.assign(frq, 0, arm1);
        let model = CostModel::Energy(EnergyModel::default());
        let (moved, cost) = model.migration_cost(&spec, &platform, &old, &new);
        assert_eq!(moved, 2);
        let words = |p| spec.library.impls_for(p)[0].memory_bytes / 4;
        let expected = model.channel_cost(&platform, words(pfx), arm1, arm2)
            + model.channel_cost(&platform, words(frq), arm2, arm1);
        assert_eq!(cost, expected);
        assert!(cost > 0);
    }

    #[test]
    fn decomposition_matches_full_cost_on_unrouted_mappings() {
        let (spec, platform, m) = paper_initial();
        for model in [
            CostModel::HopCount,
            CostModel::TrafficWeighted,
            CostModel::Energy(EnergyModel::default()),
        ] {
            assert_eq!(
                model.assignment_cost(&m, &spec, &platform),
                model.cost(&m, &spec, &platform),
                "{model:?}"
            );
        }
    }
}
