//! The paper's quality hierarchy for spatial mappings (§3):
//!
//! * **adequate** — every process has an implementation available for the
//!   type of tile it is assigned to;
//! * **adherent** — adequate, and no tile or link is asked for more
//!   resources than it has;
//! * **feasible** — adherent, and the application's QoS constraints are met
//!   (established by step 4's dataflow analysis).
//!
//! `feasible ⊆ adherent ⊆ adequate` by construction; a property test in the
//! workspace checks the implication chain on random mappings.

use crate::claims::{claim_for, reservation_of};
use crate::mapping::{Mapping, RouteBinding};
use rtsm_app::ApplicationSpec;
use rtsm_platform::{routing, Platform, PlatformState};

/// True if every data-stream process is assigned to a tile whose kind has a
/// registered implementation — the paper's *adequate*.
pub fn is_adequate(mapping: &Mapping, spec: &ApplicationSpec, platform: &Platform) -> bool {
    spec.graph.stream_processes().all(|(pid, _)| {
        let Some(assignment) = mapping.assignment(pid) else {
            return false;
        };
        let impls = spec.library.impls_for(pid);
        let Some(implementation) = impls.get(assignment.impl_index) else {
            return false;
        };
        implementation.tile_kind == platform.tile(assignment.tile).kind
    })
}

/// True if the mapping is adequate and all claimed resources fit on top of
/// `base` (the resources other applications already hold) — the paper's
/// *adherent*. Routed channels are checked against link capacities; a
/// mapping whose channels are not yet routed is adherent if its tile claims
/// fit (routing feasibility is then step 3's concern).
pub fn is_adherent(
    mapping: &Mapping,
    spec: &ApplicationSpec,
    platform: &Platform,
    base: &PlatformState,
) -> bool {
    if !is_adequate(mapping, spec, platform) {
        return false;
    }
    let mut state = base.clone();
    // Tile claims must all fit (NI locally sufficient, then reserved by the
    // routed paths below).
    for (pid, assignment) in mapping.assignments() {
        if spec.graph.process(pid).is_control {
            continue;
        }
        let implementation = &spec.library.impls_for(pid)[assignment.impl_index];
        let claim = claim_for(spec, pid, implementation);
        if !state.fits_tile(platform, assignment.tile, &claim) {
            return false;
        }
        if state
            .claim_tile(platform, assignment.tile, &reservation_of(&claim))
            .is_err()
        {
            return false;
        }
    }
    // Routed channels must fit the links they reserve.
    for (_, binding) in mapping.routes() {
        if let RouteBinding::Path(path) = binding {
            if routing::allocate(platform, &mut state, path).is_err() {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
    use rtsm_platform::paper::paper_platform;

    fn paper_setup() -> (ApplicationSpec, Platform) {
        (hiperlan2_receiver(Hiperlan2Mode::Qpsk34), paper_platform())
    }

    fn paper_final(spec: &ApplicationSpec, platform: &Platform) -> Mapping {
        let mut m = Mapping::new();
        let p = |n: &str| spec.graph.process_by_name(n).unwrap();
        let t = |n: &str| platform.tile_by_name(n).unwrap();
        m.assign(p("Prefix removal"), 0, t("ARM2"));
        m.assign(p("Freq. off. correction"), 0, t("ARM1"));
        m.assign(p("Inverse OFDM"), 1, t("MONTIUM2"));
        m.assign(p("Remainder"), 1, t("MONTIUM1"));
        m
    }

    #[test]
    fn paper_final_mapping_is_adherent() {
        let (spec, platform) = paper_setup();
        let m = paper_final(&spec, &platform);
        assert!(is_adequate(&m, &spec, &platform));
        assert!(is_adherent(&m, &spec, &platform, &platform.initial_state()));
    }

    #[test]
    fn incomplete_mapping_not_adequate() {
        let (spec, platform) = paper_setup();
        let m = Mapping::new();
        assert!(!is_adequate(&m, &spec, &platform));
    }

    #[test]
    fn wrong_tile_kind_not_adequate() {
        let (spec, platform) = paper_setup();
        let mut m = paper_final(&spec, &platform);
        // Put the ARM implementation of Prefix removal on a MONTIUM tile.
        let pfx = spec.graph.process_by_name("Prefix removal").unwrap();
        m.assign(pfx, 0, platform.tile_by_name("MONTIUM1").unwrap());
        assert!(!is_adequate(&m, &spec, &platform));
    }

    #[test]
    fn double_booked_tile_not_adherent() {
        let (spec, platform) = paper_setup();
        let mut m = paper_final(&spec, &platform);
        // Two processes on MONTIUM1 (1 slot): adequate, but not adherent.
        let iofdm = spec.graph.process_by_name("Inverse OFDM").unwrap();
        m.assign(iofdm, 1, platform.tile_by_name("MONTIUM1").unwrap());
        assert!(is_adequate(&m, &spec, &platform));
        assert!(!is_adherent(
            &m,
            &spec,
            &platform,
            &platform.initial_state()
        ));
    }

    #[test]
    fn occupied_base_state_blocks_adherence() {
        let (spec, platform) = paper_setup();
        let m = paper_final(&spec, &platform);
        let mut base = platform.initial_state();
        // Another application already owns MONTIUM1's slot.
        base.claim_tile(
            &platform,
            platform.tile_by_name("MONTIUM1").unwrap(),
            &rtsm_platform::TileClaim {
                slots: 1,
                memory_bytes: 0,
                cycles_per_second: 0,
                injection: 0,
                ejection: 0,
            },
        )
        .unwrap();
        assert!(!is_adherent(&m, &spec, &platform, &base));
    }

    #[test]
    fn overloaded_route_not_adherent() {
        let (spec, platform) = paper_setup();
        let mut m = paper_final(&spec, &platform);
        // Bind one channel to a path that exceeds link capacity when taken
        // together with a pre-saturated base state.
        let ch = spec.graph.stream_channels().next().unwrap().0;
        let state = platform.initial_state();
        let from = m
            .endpoint_tile(&platform, rtsm_app::Endpoint::StreamInput)
            .unwrap();
        let pfx = spec.graph.process_by_name("Prefix removal").unwrap();
        let to = m.assignment(pfx).unwrap().tile;
        let path = routing::route(&platform, &state, from, to, 20_000_000).unwrap();
        m.bind_route(ch, RouteBinding::Path(path.clone()));
        let mut base = platform.initial_state();
        for &l in &path.links {
            base.allocate_link(&platform, l, platform.link(l).capacity)
                .unwrap();
        }
        assert!(!is_adherent(&m, &spec, &platform, &base));
    }
}
