//! Step 1: assign implementations to processes (§3.1).
//!
//! Implementations that cannot fit on any tile are discarded up front
//! ("we only consider those implementations for which an adhering mapping
//! exists"). The remaining choice is made iteratively by *desirability*:
//! the difference between a process's cheapest and second-cheapest option —
//! "if the alternative is more expensive, the desirability to map the
//! process 'now' increases". A process with a single surviving option is
//! maximally desirable; ties break on application (topological) order. The
//! chosen process takes its cheapest implementation and is packed
//! *first-fit* onto the first tile (in tile-id order) of the right type
//! with sufficient resources.

use crate::claims::{claim_for, reservation_of};
use crate::feedback::{Constraints, Feedback};
use crate::mapping::Mapping;
use crate::trace::Step1Event;
use rtsm_app::{ApplicationSpec, ProcessId};
use rtsm_platform::{Platform, PlatformState, TileId};

/// Successful step-1 result.
#[derive(Debug, Clone)]
pub struct Step1Output {
    /// The greedy mapping (assignments only; no routes yet).
    pub mapping: Mapping,
    /// `base` plus this mapping's tile reservations.
    pub working: PlatformState,
    /// Decision log.
    pub events: Vec<Step1Event>,
}

/// Step-1 dead end: a process ran out of viable options.
#[derive(Debug, Clone)]
pub struct Step1Failure {
    /// The process that could not be assigned.
    pub process: ProcessId,
    /// Feedback for the refinement driver.
    pub feedback: Vec<Feedback>,
}

/// Cost of choosing `impl_index` for step-1 purposes: the implementation's
/// processing energy (communication is unknown before tiles are fixed).
fn option_cost(spec: &ApplicationSpec, process: ProcessId, impl_index: usize) -> u64 {
    spec.library.impls_for(process)[impl_index].energy_pj_per_period
}

/// First tile (id order) of the implementation's kind that fits the claim
/// and is not forbidden.
fn first_fit(
    spec: &ApplicationSpec,
    platform: &Platform,
    state: &PlatformState,
    constraints: &Constraints,
    process: ProcessId,
    impl_index: usize,
) -> Option<TileId> {
    let implementation = &spec.library.impls_for(process)[impl_index];
    let claim = claim_for(spec, process, implementation);
    platform
        .tiles_of_kind(implementation.tile_kind)
        .find(|(tile, _)| {
            !constraints.is_tile_forbidden(process, *tile)
                && state.fits_tile(platform, *tile, &claim)
        })
        .map(|(tile, _)| tile)
}

/// Runs step 1.
///
/// # Errors
///
/// [`Step1Failure`] when a process has no viable option; its feedback
/// forbids the most recent placement so the next refinement attempt packs
/// differently.
pub fn assign_implementations(
    spec: &ApplicationSpec,
    platform: &Platform,
    base: &PlatformState,
    constraints: &Constraints,
) -> Result<Step1Output, Step1Failure> {
    let order = spec
        .graph
        .topological_order()
        .expect("validated specs are acyclic");
    let topo_position = {
        let mut pos = vec![usize::MAX; spec.graph.n_processes()];
        for (i, p) in order.iter().enumerate() {
            pos[p.index()] = i;
        }
        pos
    };

    // Static pre-filter: implementations that fit nowhere even on the bare
    // base state can never lead to an adherent mapping.
    let statically_viable = |process: ProcessId, impl_index: usize| {
        !constraints.is_impl_excluded(process, impl_index)
            && first_fit(spec, platform, base, constraints, process, impl_index).is_some()
    };

    let mut mapping = Mapping::new();
    let mut working = base.clone();
    let mut events: Vec<Step1Event> = Vec::new();
    let mut unassigned: Vec<ProcessId> = order.clone();

    while !unassigned.is_empty() {
        // Desirability of each unassigned process under the current state.
        let mut best: Option<(u64, usize, ProcessId, usize)> = None; // (desirability, topo, process, impl)
        for &process in &unassigned {
            let mut options: Vec<(u64, usize)> = spec
                .library
                .impls_for(process)
                .iter()
                .enumerate()
                .filter(|(ix, _)| statically_viable(process, *ix))
                .filter(|(ix, _)| {
                    first_fit(spec, platform, &working, constraints, process, *ix).is_some()
                })
                .map(|(ix, _)| (option_cost(spec, process, ix), ix))
                .collect();
            if options.is_empty() {
                // Dead end: the feedback forbids the most recent placement
                // (it consumed the resource this process needed).
                let mut feedback = vec![Feedback::Infeasible {
                    detail: format!(
                        "process `{}` has no viable implementation left in step 1",
                        spec.graph.process(process).name
                    ),
                }];
                if let Some(last) = events.last() {
                    feedback.push(Feedback::ForbidTile {
                        process: last.process,
                        tile: last.tile,
                    });
                }
                return Err(Step1Failure { process, feedback });
            }
            options.sort_unstable();
            let desirability = if options.len() == 1 {
                u64::MAX
            } else {
                options[1].0 - options[0].0
            };
            let topo = topo_position[process.index()];
            let candidate = (desirability, topo, process, options[0].1);
            let better = match &best {
                None => true,
                Some((d, t, _, _)) => desirability > *d || (desirability == *d && topo < *t),
            };
            if better {
                best = Some(candidate);
            }
        }
        let (desirability, _, process, impl_index) = best.expect("unassigned is non-empty");
        let tile = first_fit(spec, platform, &working, constraints, process, impl_index)
            .expect("viability was just checked");
        let implementation = &spec.library.impls_for(process)[impl_index];
        let claim = claim_for(spec, process, implementation);
        working
            .claim_tile(platform, tile, &reservation_of(&claim))
            .expect("first_fit checked the claim fits");
        mapping.assign(process, impl_index, tile);
        let options = spec
            .library
            .impls_for(process)
            .iter()
            .enumerate()
            .filter(|(ix, _)| statically_viable(process, *ix))
            .count();
        events.push(Step1Event {
            process,
            impl_index,
            tile,
            desirability,
            options,
        });
        unassigned.retain(|&p| p != process);
    }

    Ok(Step1Output {
        mapping,
        working,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
    use rtsm_platform::paper::paper_platform;
    use rtsm_platform::TileClaim;

    fn run_paper() -> (rtsm_app::ApplicationSpec, Platform, Step1Output) {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let out = assign_implementations(
            &spec,
            &platform,
            &platform.initial_state(),
            &Constraints::new(),
        )
        .expect("paper case step 1 succeeds");
        (spec, platform, out)
    }

    /// §4.4: "the 'Inverse OFDM' process is the most desirable. Thus, it is
    /// assigned … a MONTIUM. Likewise, the 'Remainder' … both remaining
    /// processes only have ARM implementations and are thus chosen per
    /// default."
    #[test]
    fn paper_assignment_order_and_tiles() {
        let (spec, platform, out) = run_paper();
        let name = |p: ProcessId| spec.graph.process(p).name.clone();
        let tile = |t: TileId| platform.tile(t).name.clone();
        let sequence: Vec<(String, String)> = out
            .events
            .iter()
            .map(|e| (name(e.process), tile(e.tile)))
            .collect();
        assert_eq!(
            sequence,
            vec![
                ("Inverse OFDM".to_string(), "MONTIUM1".to_string()),
                ("Remainder".to_string(), "MONTIUM2".to_string()),
                ("Prefix removal".to_string(), "ARM1".to_string()),
                ("Freq. off. correction".to_string(), "ARM2".to_string()),
            ]
        );
    }

    #[test]
    fn paper_initial_cost_is_eleven() {
        let (spec, platform, out) = run_paper();
        assert_eq!(out.mapping.communication_hops(&spec, &platform), 11);
    }

    #[test]
    fn desirability_ordering_matches_paper_narrative() {
        let (_, _, out) = run_paper();
        // On the 200 MHz paper platform the ARM implementations of Inverse
        // OFDM and Remainder exceed the cycle budget, so the step-1 filter
        // ("only … implementations for which an adhering mapping exists")
        // leaves them a single option each: maximal desirability, matching
        // the paper's "Inverse OFDM … is the most desirable" with the
        // application-order tie-break placing it before Remainder.
        assert_eq!(out.events[0].desirability, u64::MAX);
        assert_eq!(out.events[1].desirability, u64::MAX);
        // Pfx/Frq: also single-option by then (MONTIUMs full) → maximal.
        assert_eq!(out.events[2].desirability, u64::MAX);
        assert_eq!(out.events[3].desirability, u64::MAX);
        // The energy-gap desirability is still exercised: before the
        // MONTIUMs fill, Pfx and Frq had two options each with gaps of
        // 28 nJ and 29 nJ; the must-place processes outrank them.
        assert!(out.events[0].options >= 1);
    }

    #[test]
    fn occupied_montiums_push_everything_to_arm_failure() {
        // If both MONTIUMs are taken by another application, Inverse OFDM
        // and Remainder only have ARM options, which exceed the ARM cycle
        // budget — step 1 must fail with feedback rather than panic.
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let mut base = platform.initial_state();
        for name in ["MONTIUM1", "MONTIUM2"] {
            base.claim_tile(
                &platform,
                platform.tile_by_name(name).unwrap(),
                &TileClaim {
                    slots: 1,
                    memory_bytes: 0,
                    cycles_per_second: 0,
                    injection: 0,
                    ejection: 0,
                },
            )
            .unwrap();
        }
        let err = assign_implementations(&spec, &platform, &base, &Constraints::new())
            .expect_err("ARM-only Inverse OFDM is not viable");
        assert!(!err.feedback.is_empty());
    }

    #[test]
    fn exclusion_constraint_respected() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let pfx = spec.graph.process_by_name("Prefix removal").unwrap();
        let mut constraints = Constraints::new();
        // Exclude Prefix removal's ARM implementation (index 0): it must
        // now win a MONTIUM, displacing someone.
        constraints.absorb(&Feedback::ExcludeImplementation {
            process: pfx,
            impl_index: 0,
        });
        let out = assign_implementations(&spec, &platform, &platform.initial_state(), &constraints);
        match out {
            Ok(out) => {
                let a = out.mapping.assignment(pfx).unwrap();
                assert_eq!(a.impl_index, 1, "must pick the MONTIUM implementation");
            }
            Err(failure) => {
                // Equally acceptable: the displacement makes another process
                // unmappable, reported as feedback.
                assert!(!failure.feedback.is_empty());
            }
        }
    }

    #[test]
    fn forbidden_tile_changes_first_fit() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let iofdm = spec.graph.process_by_name("Inverse OFDM").unwrap();
        let m1 = platform.tile_by_name("MONTIUM1").unwrap();
        let mut constraints = Constraints::new();
        constraints.absorb(&Feedback::ForbidTile {
            process: iofdm,
            tile: m1,
        });
        let out = assign_implementations(&spec, &platform, &platform.initial_state(), &constraints)
            .unwrap();
        let a = out.mapping.assignment(iofdm).unwrap();
        assert_eq!(platform.tile(a.tile).name, "MONTIUM2");
    }
}
