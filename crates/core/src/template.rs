//! Design-time template library with run-time shape instantiation —
//! microsecond admission for recurring applications.
//!
//! The four-step heuristic re-derives everything from scratch on every
//! arrival, and its step 4 (CSDF composition + buffer sizing) dominates the
//! ~1.2 ms map time. Production run-time mappers split that work instead
//! (Weichslgartner et al., *A Design-Time/Run-Time Application Mapping
//! Methodology*, 2017): explore mappings once per application *class* at
//! design time, then instantiate a precomputed mapping "shape" in
//! microseconds at run time.
//!
//! [`TemplateLibrary`] caches, per application spec (keyed by a structural
//! [`spec_fingerprint`]), a bounded set of [`MappingShape`]s: tile-*type*-
//! relative placements (process → offset from an anchor tile) plus the
//! route skeleton (per-channel router counts and demands) and the
//! already-verified buffer sizing, achieved period, latency, and energy of
//! the mapping they were canonicalised from.
//!
//! At admission, [`TemplatedMapper`] matches shapes against the current
//! platform: candidate anchors come from
//! [`PlatformState::free_anchor_tiles`] (the same free-capacity notion as
//! `fragmentation()`, with failed tiles excluded), each shape is translated
//! to every anchor under the mesh's four rotations, quick-rejected on tile
//! kind / clock / health / [`MappingConstraints`], and then fit-checked by
//! staging the *exact* claims `MappingOutcome::stage_commit` would make
//! (tile reservations, buffer memory, routed paths with NI bandwidth)
//! against a scratch copy of the ledger. Channels are re-routed fresh —
//! stream endpoints (A/D, Sink) are fixed tiles, so recorded paths do not
//! translate — and a candidate is accepted only if every re-routed channel
//! traverses **exactly as many routers as the recorded route**.
//!
//! That router-count equality is what makes skipping step 4 sound: the
//! composed CSDF graph of Figure 3 depends only on the spec, the chosen
//! implementations, each assigned tile's clock, and the per-channel router
//! counts (router actors all share the NoC clock). Equal counts on
//! equal-clock tiles give an isomorphic graph, so the recorded buffer
//! sizing, achieved period, and latency transfer unchanged — the hit path
//! performs *no* dataflow analysis at all, which is why it runs in tens of
//! microseconds instead of ~1.2 ms. The property-based twin-feasibility
//! tests re-run the full step-4 check on template-admitted mappings to
//! validate exactly this argument.
//!
//! On a miss the wrapped algorithm runs as usual and its outcome is
//! *learned* back into the library (deduplicated, bounded per spec with
//! deterministic lowest-hits-then-oldest eviction), so steady-state traffic
//! converges onto the hit path. With no `TemplatedMapper` in the loop,
//! nothing here runs and fixed-seed reports are byte-for-byte unchanged.

use crate::algorithm::{MappingAlgorithm, MappingOutcome};
use crate::claims::{claim_for, reservation_of};
use crate::constraints::MappingConstraints;
use crate::error::MapError;
use crate::mapping::{Mapping, RouteBinding};
use crate::step4::ChannelBuffer;
use rtsm_app::{ApplicationSpec, Endpoint, KpnChannelId, ProcessId};
use rtsm_obs as obs;
use rtsm_platform::routing::route_with;
use rtsm_platform::{
    Coord, Platform, PlatformState, PlatformTransaction, RouteScratch, TileClaim, TileId, TileKind,
};
use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Default bound on cached shapes per application spec.
pub const DEFAULT_SHAPE_CAP: usize = 8;

/// FNV-1a, used for the structural spec fingerprint: deterministic across
/// runs and platforms, unlike `DefaultHasher`.
struct Fnv64(u64);

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

fn endpoint_code(endpoint: Endpoint) -> (u8, usize) {
    match endpoint {
        Endpoint::Process(p) => (0, p.index()),
        Endpoint::StreamInput => (1, 0),
        Endpoint::StreamOutput => (2, 0),
    }
}

/// A deterministic 64-bit structural fingerprint of an application spec —
/// the [`TemplateLibrary`] key. Two specs share a fingerprint exactly when
/// they are structurally identical (name, QoS, process network, and every
/// implementation's rates, WCET, memory, and energy), so repeated arrivals
/// of the same catalog entry hit the same shape list.
pub fn spec_fingerprint(spec: &ApplicationSpec) -> u64 {
    let mut h = Fnv64(0xcbf2_9ce4_8422_2325);
    spec.name.hash(&mut h);
    spec.qos.period_ps.hash(&mut h);
    spec.qos.max_latency_ps.hash(&mut h);
    spec.graph.n_processes().hash(&mut h);
    spec.graph.n_channels().hash(&mut h);
    for (pid, process) in spec.graph.processes() {
        process.name.hash(&mut h);
        for implementation in spec.library.impls_for(pid) {
            implementation.name.hash(&mut h);
            implementation.tile_kind.hash(&mut h);
            implementation.wcet.hash(&mut h);
            implementation.inputs.hash(&mut h);
            implementation.outputs.hash(&mut h);
            implementation.energy_pj_per_period.hash(&mut h);
            implementation.memory_bytes.hash(&mut h);
        }
    }
    for (_, ch) in spec.graph.channels() {
        endpoint_code(ch.src).hash(&mut h);
        endpoint_code(ch.dst).hash(&mut h);
        ch.tokens_per_period.hash(&mut h);
        ch.is_control.hash(&mut h);
    }
    h.finish()
}

/// One process's slot in a shape: which implementation, the tile offset
/// from the anchor, and the tile kind/clock the offset was recorded on
/// (clock equality is required for the CSDF-isomorphism argument).
#[derive(Debug, Clone, PartialEq, Eq)]
struct ShapeAssignment {
    process: ProcessId,
    impl_index: usize,
    dx: i32,
    dy: i32,
    kind: TileKind,
    clock_mhz: u32,
}

/// One channel's recorded route skeleton: same-tile or a path of exactly
/// `router_count` routers at `demand` words/second.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ShapeRoute {
    channel: KpnChannelId,
    same_tile: bool,
    router_count: u32,
    demand: u64,
}

/// One already-verified tile-side buffer (`B_i`); its tile is re-derived
/// from the consumer's placement at instantiation.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ShapeBuffer {
    channel: KpnChannelId,
    capacity_words: u64,
}

/// A canonicalised, position-independent mapping: relative placements, the
/// route skeleton, and the verified QoS results of the mapping it came
/// from. Produced by [`MappingShape::canonicalise`], instantiated by the
/// [`TemplateLibrary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingShape {
    assignments: Vec<ShapeAssignment>,
    routes: Vec<ShapeRoute>,
    buffers: Vec<ShapeBuffer>,
    energy_pj: u64,
    achieved_period: (u64, u64),
    latency_ps: Option<u64>,
}

impl MappingShape {
    /// Canonicalises a feasible outcome into a tile-type-relative shape:
    /// the first assignment (process-id order) becomes the anchor at offset
    /// `(0, 0)`. Returns `None` for outcomes with no assignments.
    pub fn canonicalise(outcome: &MappingOutcome, platform: &Platform) -> Option<MappingShape> {
        let (_, first) = outcome.mapping.assignments().next()?;
        let anchor = platform.tile(first.tile).position;
        let assignments = outcome
            .mapping
            .assignments()
            .map(|(pid, a)| {
                let tile = platform.tile(a.tile);
                ShapeAssignment {
                    process: pid,
                    impl_index: a.impl_index,
                    dx: i32::from(tile.position.x) - i32::from(anchor.x),
                    dy: i32::from(tile.position.y) - i32::from(anchor.y),
                    kind: tile.kind,
                    clock_mhz: tile.clock_mhz,
                }
            })
            .collect();
        let routes = outcome
            .mapping
            .routes()
            .map(|(cid, route)| match route {
                RouteBinding::SameTile => ShapeRoute {
                    channel: cid,
                    same_tile: true,
                    router_count: 0,
                    demand: 0,
                },
                RouteBinding::Path(path) => ShapeRoute {
                    channel: cid,
                    same_tile: false,
                    router_count: path.router_count(),
                    demand: path.demand,
                },
            })
            .collect();
        let buffers = outcome
            .buffers
            .iter()
            .map(|b| ShapeBuffer {
                channel: b.channel,
                capacity_words: b.capacity_words,
            })
            .collect();
        Some(MappingShape {
            assignments,
            routes,
            buffers,
            energy_pj: outcome.energy_pj,
            achieved_period: outcome.achieved_period,
            latency_ps: outcome.latency_ps,
        })
    }

    /// The four mesh rotations of the offset vector, deduplicated (a
    /// single-tile shape has one distinct rotation, not four).
    fn rotations(&self) -> Vec<Vec<(i32, i32)>> {
        let rotate = |k: u8, (dx, dy): (i32, i32)| match k {
            0 => (dx, dy),
            1 => (dy, -dx),
            2 => (-dx, -dy),
            _ => (-dy, dx),
        };
        let mut out: Vec<Vec<(i32, i32)>> = Vec::with_capacity(4);
        for k in 0..4 {
            let offsets: Vec<(i32, i32)> = self
                .assignments
                .iter()
                .map(|a| rotate(k, (a.dx, a.dy)))
                .collect();
            if !out.contains(&offsets) {
                out.push(offsets);
            }
        }
        out
    }

    /// Shape indices within spec bounds? Guards the (astronomically
    /// unlikely) fingerprint collision and stale libraries.
    fn indexes_into(&self, spec: &ApplicationSpec) -> bool {
        self.assignments.iter().all(|a| {
            a.process.index() < spec.graph.n_processes()
                && a.impl_index < spec.library.impls_for(a.process).len()
        }) && self
            .routes
            .iter()
            .map(|r| r.channel)
            .chain(self.buffers.iter().map(|b| b.channel))
            .all(|c| c.index() < spec.graph.n_channels())
    }
}

/// Attempts to place `shape` with `offsets` (one rotation) at `anchor`:
/// quick tile-skeleton rejects first, then the full transactional fit check
/// against a scratch copy of `base`, staging exactly what
/// `MappingOutcome::stage_commit` would claim. Returns the instantiated
/// outcome on success; `base` is never mutated.
#[allow(clippy::too_many_arguments)]
fn try_candidate(
    shape: &MappingShape,
    offsets: &[(i32, i32)],
    anchor: TileId,
    spec: &ApplicationSpec,
    platform: &Platform,
    base: &PlatformState,
    constraints: &MappingConstraints,
    scratch: &mut RouteScratch,
) -> Option<MappingOutcome> {
    let anchor_pos = platform.tile(anchor).position;
    let mut mapping = Mapping::new();
    for (sa, &(dx, dy)) in shape.assignments.iter().zip(offsets) {
        let x = i32::from(anchor_pos.x) + dx;
        let y = i32::from(anchor_pos.y) + dy;
        if x < 0 || y < 0 || x >= i32::from(platform.width()) || y >= i32::from(platform.height()) {
            return None;
        }
        let tid = platform.tile_at(Coord {
            x: x as u16,
            y: y as u16,
        })?;
        let tile = platform.tile(tid);
        if tile.kind != sa.kind
            || tile.clock_mhz != sa.clock_mhz
            || base.is_tile_failed(tid)
            || !constraints.allows(sa.process, tid)
        {
            return None;
        }
        mapping.assign(sa.process, sa.impl_index, tid);
    }

    // Transactional fit check on a scratch ledger: the same claims, in
    // kind, that committing the outcome will make. Process reservations
    // first, then fresh routes (allocated as they are found, so channels
    // of this application contend with each other exactly as in step 3),
    // then buffer memory on the consumer tiles.
    let mut probe = base.clone();
    for sa in &shape.assignments {
        let tile = mapping.assignment(sa.process).expect("assigned above").tile;
        let implementation = &spec.library.impls_for(sa.process)[sa.impl_index];
        let claim = reservation_of(&claim_for(spec, sa.process, implementation));
        probe.claim_tile(platform, tile, &claim).ok()?;
    }
    for sr in &shape.routes {
        let ch = spec.graph.channel(sr.channel);
        let from = mapping.endpoint_tile(platform, ch.src)?;
        let to = mapping.endpoint_tile(platform, ch.dst)?;
        if from == to {
            if !sr.same_tile {
                return None;
            }
            mapping.bind_route(sr.channel, RouteBinding::SameTile);
            continue;
        }
        if sr.same_tile {
            return None;
        }
        let path = route_with(platform, &probe, from, to, sr.demand, scratch).ok()?;
        // Router-count equality keeps the composed CSDF isomorphic to the
        // recorded one, so the cached sizing/period/latency stay valid.
        if path.router_count() != sr.router_count {
            return None;
        }
        let path = path.clone();
        {
            let mut tx = PlatformTransaction::begin(platform, &mut probe);
            tx.allocate_path(&path).ok()?;
            tx.commit();
        }
        mapping.bind_route(sr.channel, RouteBinding::Path(path));
    }
    let mut buffers = Vec::with_capacity(shape.buffers.len());
    for sb in &shape.buffers {
        let ch = spec.graph.channel(sb.channel);
        let tile = mapping.endpoint_tile(platform, ch.dst)?;
        let claim = TileClaim {
            slots: 0,
            memory_bytes: sb.capacity_words * 4,
            cycles_per_second: 0,
            injection: 0,
            ejection: 0,
        };
        probe.claim_tile(platform, tile, &claim).ok()?;
        buffers.push(ChannelBuffer {
            channel: sb.channel,
            capacity_words: sb.capacity_words,
            tile,
        });
    }

    let communication_hops = mapping.communication_hops(spec, platform);
    Some(MappingOutcome {
        mapping,
        buffers,
        csdf: None,
        energy_pj: shape.energy_pj,
        communication_hops,
        feasible: true,
        evaluated: 0, // candidate count filled in by the caller
        attempts: 1,
        achieved_period: shape.achieved_period,
        latency_ps: shape.latency_ps,
        trace: None,
    })
}

/// Tries every (rotation, anchor) placement of `shape` in deterministic
/// order, counting candidates into `tried`.
fn instantiate_shape(
    shape: &MappingShape,
    spec: &ApplicationSpec,
    platform: &Platform,
    base: &PlatformState,
    constraints: &MappingConstraints,
    scratch: &mut RouteScratch,
    tried: &mut u64,
) -> Option<MappingOutcome> {
    if shape.assignments.is_empty() || !shape.indexes_into(spec) {
        return None;
    }
    let anchors = base.free_anchor_tiles(platform, shape.assignments[0].kind);
    for offsets in shape.rotations() {
        for &anchor in &anchors {
            *tried += 1;
            if let Some(outcome) = try_candidate(
                shape,
                &offsets,
                anchor,
                spec,
                platform,
                base,
                constraints,
                scratch,
            ) {
                return Some(outcome);
            }
        }
    }
    None
}

/// A snapshot of the library's lifetime statistics — what the simulator
/// and benchmarks report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TemplateStats {
    /// Admissions served by instantiating a cached shape.
    pub hits: u64,
    /// Admissions that fell back to the wrapped algorithm.
    pub misses: u64,
    /// Shapes learned from the design-time seeding pass (first arrival of
    /// each spec, mapped on an empty platform).
    pub seeded: u64,
    /// Shapes currently cached, over all specs.
    pub shapes_cached: u64,
    /// Shapes evicted by the per-spec cap.
    pub evictions: u64,
    /// Shapes removed by [`TemplateLibrary::prune_unfit`] because they no
    /// longer fit a (typically degraded) platform.
    pub invalidations: u64,
}

#[derive(Debug)]
struct ShapeEntry {
    shape: MappingShape,
    hits: u64,
    seq: u64,
}

/// The per-spec shape cache (see the [module docs](self)): bounded,
/// deterministic, and usable through any [`MappingAlgorithm`] via
/// [`TemplatedMapper`].
#[derive(Debug, Default)]
pub struct TemplateLibrary {
    specs: HashMap<u64, Vec<ShapeEntry>>,
    cap: usize,
    seq: u64,
    hits: u64,
    misses: u64,
    seeded: u64,
    evictions: u64,
    invalidations: u64,
    scratch: RouteScratch,
}

impl TemplateLibrary {
    /// An empty library keeping at most `cap` shapes per spec.
    pub fn new(cap: usize) -> Self {
        TemplateLibrary {
            cap,
            ..TemplateLibrary::default()
        }
    }

    /// True once `key` has been seen (even if seeding produced no shape).
    pub fn contains(&self, key: u64) -> bool {
        self.specs.contains_key(&key)
    }

    /// Marks `key` as seen, so seeding runs once per spec.
    pub fn register(&mut self, key: u64) {
        self.specs.entry(key).or_default();
    }

    /// Learns `shape` for `key`: deduplicated against cached shapes, and
    /// bounded by the per-spec cap with deterministic eviction of the
    /// lowest-hit (then oldest) entry. Returns whether the shape was
    /// stored.
    pub fn learn(&mut self, key: u64, shape: MappingShape) -> bool {
        if self.cap == 0 {
            return false;
        }
        self.seq += 1;
        let seq = self.seq;
        let shapes = self.specs.entry(key).or_default();
        if shapes.iter().any(|s| s.shape == shape) {
            return false;
        }
        if shapes.len() >= self.cap {
            let victim = shapes
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| (s.hits, s.seq))
                .map(|(i, _)| i)
                .expect("cap >= 1 and the list is full");
            shapes.remove(victim);
            self.evictions += 1;
        }
        shapes.push(ShapeEntry {
            shape,
            hits: 0,
            seq,
        });
        true
    }

    /// Attempts to admit `spec` from the cached shapes of `key`: each shape
    /// in insertion order, over every rotation and free anchor, with the
    /// full transactional fit check. Emits [`obs::Span::TemplateMatch`]
    /// around the whole lookup. Returns `None` on miss (the caller falls
    /// back to its wrapped algorithm).
    pub fn instantiate(
        &mut self,
        key: u64,
        spec: &ApplicationSpec,
        platform: &Platform,
        base: &PlatformState,
        constraints: &MappingConstraints,
    ) -> Option<MappingOutcome> {
        let _span = obs::span(obs::Span::TemplateMatch);
        let shapes = self.specs.get_mut(&key)?;
        let scratch = &mut self.scratch;
        let mut tried = 0u64;
        for entry in shapes.iter_mut() {
            if let Some(mut outcome) = instantiate_shape(
                &entry.shape,
                spec,
                platform,
                base,
                constraints,
                scratch,
                &mut tried,
            ) {
                entry.hits += 1;
                outcome.evaluated = tried;
                return Some(outcome);
            }
        }
        None
    }

    /// Drops every cached shape of `spec` that can no longer be
    /// instantiated anywhere on (`platform`, `state`) — the invalidation
    /// hook for degraded platforms (failed tiles/links, heavy occupancy).
    /// Returns how many shapes were removed; they are counted as
    /// `invalidations` in [`TemplateStats`].
    pub fn prune_unfit(
        &mut self,
        spec: &ApplicationSpec,
        platform: &Platform,
        state: &PlatformState,
    ) -> usize {
        let key = spec_fingerprint(spec);
        let Some(shapes) = self.specs.get_mut(&key) else {
            return 0;
        };
        let scratch = &mut self.scratch;
        let before = shapes.len();
        shapes.retain(|entry| {
            let mut tried = 0u64;
            instantiate_shape(
                &entry.shape,
                spec,
                platform,
                state,
                &MappingConstraints::none(),
                scratch,
                &mut tried,
            )
            .is_some()
        });
        let removed = before - shapes.len();
        self.invalidations += removed as u64;
        removed
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> TemplateStats {
        TemplateStats {
            hits: self.hits,
            misses: self.misses,
            seeded: self.seeded,
            shapes_cached: self.specs.values().map(|s| s.len() as u64).sum(),
            evictions: self.evictions,
            invalidations: self.invalidations,
        }
    }

    /// Number of shapes cached for `key`.
    pub fn shapes_for(&self, key: u64) -> usize {
        self.specs.get(&key).map_or(0, Vec::len)
    }

    fn note_hit(&mut self) {
        self.hits += 1;
    }

    fn note_miss(&mut self) {
        self.misses += 1;
    }

    fn note_seeded(&mut self) {
        self.seeded += 1;
    }
}

/// A [`MappingAlgorithm`] adaptor that front-runs its wrapped algorithm
/// with the [`TemplateLibrary`] (see the [module docs](self)): hits are
/// admitted in tens of microseconds, misses run the wrapped algorithm and
/// are learned. `name()` delegates to the inner algorithm, so reports stay
/// comparable across templated and untemplated runs.
#[derive(Debug)]
pub struct TemplatedMapper<A> {
    inner: A,
    library: RefCell<TemplateLibrary>,
}

impl<A: MappingAlgorithm> TemplatedMapper<A> {
    /// Wraps `inner` with an empty library at [`DEFAULT_SHAPE_CAP`].
    pub fn new(inner: A) -> Self {
        TemplatedMapper::with_cap(inner, DEFAULT_SHAPE_CAP)
    }

    /// Wraps `inner` with an empty library keeping at most `cap` shapes
    /// per spec (`--template-cap`).
    pub fn with_cap(inner: A, cap: usize) -> Self {
        TemplatedMapper {
            inner,
            library: RefCell::new(TemplateLibrary::new(cap)),
        }
    }

    /// The wrapped algorithm.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Current library statistics.
    pub fn stats(&self) -> TemplateStats {
        self.library.borrow().stats()
    }

    /// Clears the library (shapes *and* statistics) back to empty, keeping
    /// the inner algorithm. Determinism reruns use this so both executions
    /// start from the same cold library.
    pub fn reset(&self) {
        let cap = self.library.borrow().cap;
        *self.library.borrow_mut() = TemplateLibrary::new(cap);
    }

    /// [`TemplateLibrary::prune_unfit`] against the wrapped library.
    pub fn prune_unfit(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        state: &PlatformState,
    ) -> usize {
        self.library.borrow_mut().prune_unfit(spec, platform, state)
    }
}

impl<A: MappingAlgorithm> MappingAlgorithm for TemplatedMapper<A> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn map_constrained(
        &self,
        spec: &ApplicationSpec,
        platform: &Platform,
        base: &PlatformState,
        constraints: &MappingConstraints,
    ) -> Result<MappingOutcome, MapError> {
        let key = spec_fingerprint(spec);

        // Design-time seeding, lazily on the first arrival of each spec:
        // one unconstrained map on an *empty* platform gives the canonical
        // uncongested shape. Runs at most once per spec, even if it fails.
        if !self.library.borrow().contains(key) {
            self.library.borrow_mut().register(key);
            if let Ok(seeded) = self.inner.map_constrained(
                spec,
                platform,
                &platform.initial_state(),
                &MappingConstraints::none(),
            ) {
                if let Some(shape) = MappingShape::canonicalise(&seeded, platform) {
                    let mut library = self.library.borrow_mut();
                    if library.learn(key, shape) {
                        library.note_seeded();
                    }
                }
            }
        }

        let attempt = self
            .library
            .borrow_mut()
            .instantiate(key, spec, platform, base, constraints);
        if let Some(outcome) = attempt {
            obs::count(obs::Counter::TemplateHit, 1);
            self.library.borrow_mut().note_hit();
            return Ok(outcome);
        }
        obs::count(obs::Counter::TemplateMiss, 1);
        self.library.borrow_mut().note_miss();

        let outcome = self
            .inner
            .map_constrained(spec, platform, base, constraints)?;
        if let Some(shape) = MappingShape::canonicalise(&outcome, platform) {
            self.library.borrow_mut().learn(key, shape);
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{MapperConfig, SpatialMapper};
    use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
    use rtsm_platform::paper::paper_platform;

    fn mapper() -> TemplatedMapper<SpatialMapper> {
        TemplatedMapper::new(SpatialMapper::new(MapperConfig::default()))
    }

    #[test]
    fn fingerprint_is_structural() {
        let a = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let b = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        assert_eq!(spec_fingerprint(&a), spec_fingerprint(&b));
        let c = hiperlan2_receiver(Hiperlan2Mode::Qam16R34);
        assert_ne!(spec_fingerprint(&a), spec_fingerprint(&c));
    }

    #[test]
    fn first_arrival_seeds_then_hits() {
        let tm = mapper();
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let state = platform.initial_state();
        let outcome = tm.map(&spec, &platform, &state).unwrap();
        let stats = tm.stats();
        assert_eq!(stats.seeded, 1, "first arrival seeds the library");
        assert_eq!(stats.hits, 1, "the seeded shape instantiates immediately");
        assert_eq!(stats.misses, 0);
        assert!(outcome.feasible);
        assert!(outcome.csdf.is_none(), "hit path skips step 4");
        // The instantiated mapping commits cleanly.
        let mut committed = state.clone();
        outcome.commit(&spec, &platform, &mut committed).unwrap();
    }

    #[test]
    fn hit_matches_heuristic_qos_results() {
        let tm = mapper();
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let state = platform.initial_state();
        let templated = tm.map(&spec, &platform, &state).unwrap();
        let heuristic = tm.inner().map(&spec, &platform, &state).unwrap();
        assert_eq!(templated.achieved_period, heuristic.achieved_period);
        assert_eq!(templated.buffers.len(), heuristic.buffers.len());
        assert_eq!(templated.energy_pj, heuristic.energy_pj);
    }

    #[test]
    fn repeated_arrivals_hit_until_capacity_runs_out() {
        let tm = mapper();
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let mut state = platform.initial_state();
        // The paper platform fits one receiver; the first admission must be
        // a hit and the second (no free anchors/capacity) a miss that also
        // fails in the inner heuristic.
        let first = tm.map(&spec, &platform, &state).unwrap();
        first.commit(&spec, &platform, &mut state).unwrap();
        assert_eq!(tm.stats().hits, 1);
        assert!(tm.map(&spec, &platform, &state).is_err());
        assert_eq!(tm.stats().misses, 1, "fallback ran and also failed");
    }

    #[test]
    fn constraints_are_honoured_on_the_hit_path() {
        let tm = mapper();
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let state = platform.initial_state();
        // Warm the library.
        tm.map(&spec, &platform, &state).unwrap();
        let pid = spec.graph.process_by_name("Inverse OFDM").unwrap();
        let montium2 = platform.tile_by_name("MONTIUM2").unwrap();
        let constraints = MappingConstraints::none().pin(pid, montium2);
        let outcome = tm
            .map_constrained(&spec, &platform, &state, &constraints)
            .unwrap();
        assert!(constraints.satisfied_by(&outcome.mapping));
    }

    #[test]
    fn failed_tiles_invalidate_cached_shapes() {
        let tm = mapper();
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let mut state = platform.initial_state();
        tm.map(&spec, &platform, &state).unwrap();
        assert!(tm.stats().shapes_cached >= 1);
        // Kill both MONTIUMs: no shape can place Inverse OFDM any more.
        state.fail_tile(platform.tile_by_name("MONTIUM1").unwrap());
        state.fail_tile(platform.tile_by_name("MONTIUM2").unwrap());
        // Admission on the degraded platform is a miss (no crash), and the
        // inner heuristic cannot map it either.
        assert!(tm.map(&spec, &platform, &state).is_err());
        assert_eq!(tm.stats().misses, 1);
        // Pruning removes the now-unfit shapes and counts invalidations.
        let removed = tm.prune_unfit(&spec, &platform, &state);
        assert!(removed >= 1);
        let stats = tm.stats();
        assert_eq!(stats.invalidations, removed as u64);
        assert_eq!(stats.shapes_cached, 0);
    }

    #[test]
    fn cap_evicts_deterministically() {
        let mut library = TemplateLibrary::new(1);
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let state = platform.initial_state();
        let key = spec_fingerprint(&spec);
        let outcome = SpatialMapper::new(MapperConfig::default())
            .map(&spec, &platform, &state)
            .unwrap();
        let shape = MappingShape::canonicalise(&outcome, &platform).unwrap();
        assert!(library.learn(key, shape.clone()));
        assert!(!library.learn(key, shape.clone()), "duplicates are dropped");
        // A distinct shape evicts the old one at cap 1.
        let mut other = shape;
        other.energy_pj += 1;
        assert!(library.learn(key, other));
        let stats = library.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(library.shapes_for(key), 1);
    }

    #[test]
    fn reset_clears_shapes_and_stats() {
        let tm = mapper();
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let state = platform.initial_state();
        tm.map(&spec, &platform, &state).unwrap();
        assert_ne!(tm.stats(), TemplateStats::default());
        tm.reset();
        assert_eq!(tm.stats(), TemplateStats::default());
    }
}
