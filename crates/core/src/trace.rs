//! Structured traces of the mapping steps — what the paper's Table 2 is
//! printed from, and what debugging hooks into.

use crate::feedback::Feedback;
use rtsm_app::ProcessId;
use rtsm_platform::TileId;
use serde::{Deserialize, Serialize};

/// One step-1 decision: a process received an implementation and a tile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Step1Event {
    /// The process assigned in this iteration.
    pub process: ProcessId,
    /// Chosen implementation (index into the process's list).
    pub impl_index: usize,
    /// First-fit tile.
    pub tile: TileId,
    /// Desirability at the moment of choice (`u64::MAX` when the process
    /// had a single remaining option).
    pub desirability: u64,
    /// Number of options the process still had.
    pub options: usize,
}

/// The kind of reassignment step 2 evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Step2Move {
    /// Move `process` to the free tile `to`.
    Move {
        /// The process moved.
        process: ProcessId,
        /// Destination tile.
        to: TileId,
    },
    /// Swap the tiles of `a` and `b` (same tile type).
    Swap {
        /// First process.
        a: ProcessId,
        /// Second process.
        b: ProcessId,
    },
}

/// One step-2 iteration: a candidate was evaluated and kept or reverted.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Step2Event {
    /// What was tried.
    pub candidate: Step2Move,
    /// Cost of the mapping *with the candidate applied*.
    pub cost: u64,
    /// Whether the candidate was kept (strict improvement) or reverted.
    pub kept: bool,
    /// The evaluated assignment: `(process, tile)` pairs in process order —
    /// the row content of Table 2.
    pub assignment: Vec<(ProcessId, TileId)>,
}

/// Trace of one complete step-2 run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Step2Trace {
    /// Cost of the initial (greedy, step-1) assignment.
    pub initial_cost: u64,
    /// The initial assignment (Table 2's first row). Empty when the search
    /// ran with trace capture off.
    pub initial_assignment: Vec<(ProcessId, TileId)>,
    /// Evaluated candidates in order. Empty when the search ran with trace
    /// capture off.
    pub events: Vec<Step2Event>,
    /// Number of trace-worthy evaluations — exactly `events.len()` when
    /// capture is on, and the same value when it is off, so search-effort
    /// counters stay identical either way.
    pub evaluations: u64,
    /// Total move/swap candidates *generated* across the search — the raw
    /// neighbourhood size before fit and constraint filtering. Constraint-
    /// aware pruning (pinned processes generate nothing) shows up here,
    /// while `evaluations` is unaffected by it.
    pub generated: u64,
    /// Final cost after the search.
    pub final_cost: u64,
}

/// Trace of one refinement attempt (steps 1–4 once through).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttemptTrace {
    /// Step-1 decisions in order.
    pub step1: Vec<Step1Event>,
    /// Step-2 search trace.
    pub step2: Step2Trace,
    /// Feedback produced by the attempt (empty on success).
    pub feedback: Vec<Feedback>,
    /// Whether the attempt produced a feasible mapping.
    pub feasible: bool,
}

/// Trace of a whole mapping run (all refinement attempts).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MapTrace {
    /// One entry per refinement attempt.
    pub attempts: Vec<AttemptTrace>,
}

impl MapTrace {
    /// The trace of the successful (last) attempt, if any attempt succeeded.
    pub fn successful_attempt(&self) -> Option<&AttemptTrace> {
        self.attempts.iter().rev().find(|a| a.feasible)
    }
}
