//! Step 4: check the application constraints (§3.4).
//!
//! The mapped application is composed into one CSDF graph — Figure 3: the
//! chosen implementations' actors, one router actor (single phase, WCET =
//! the 4-cycle round-robin arbitration bound) per router traversed by each
//! routed channel, the A/D source paced at the application period and the
//! Sink. Finite buffers are channel capacities: router-to-router buffers of
//! [`Step4Config::router_buffer_words`], the fixed Sink buffer `x`, and the
//! tile-side input buffers `B_i`, which are *computed* here (via
//! `rtsm-dataflow`'s buffer sizing, standing in for Wiggers et al. \[11\]).
//!
//! The mapping is **feasible** iff the composed graph sustains one source
//! firing per period, the computed buffers fit the consuming tiles'
//! memories, and the optional latency bound holds.
//!
//! Model note: tile-side *producer* NI buffers are sized to the largest
//! single-phase burst of the producing implementation (atomic firings
//! reserve their whole production at start, so a uniform 4-word buffer
//! would spuriously deadlock bursty producers that a cycle-accurate NI
//! would drain in flight).

use crate::feedback::Feedback;
use crate::mapping::{Mapping, RouteBinding};
use rtsm_app::{ApplicationSpec, Endpoint, KpnChannelId};
use rtsm_dataflow::{
    check_source_period, iteration_latency, size_buffers, ActorId, BufferSizingConfig, CsdfGraph,
    PhaseVec,
};
use rtsm_platform::{Platform, PlatformState, TileClaim, TileId};
use serde::{Deserialize, Serialize};

/// Configuration of the step-4 composition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Step4Config {
    /// Router input-buffer capacity in words (Figure 3's `4`).
    pub router_buffer_words: u64,
    /// The Sink's fixed buffer `x` in words; `None` derives
    /// `max(router_buffer_words, channel tokens/period)`.
    pub sink_buffer_words: Option<u64>,
    /// Warm-up and window (in source cycles) for the latency measurement.
    pub latency_window: (u64, u64),
}

impl Default for Step4Config {
    fn default() -> Self {
        Step4Config {
            router_buffer_words: 4,
            sink_buffer_words: None,
            latency_window: (4, 8),
        }
    }
}

/// A computed tile-side input buffer (Figure 3's `B_i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelBuffer {
    /// The KPN channel buffered.
    pub channel: KpnChannelId,
    /// Computed capacity in 32-bit words.
    pub capacity_words: u64,
    /// The tile whose memory holds the buffer.
    pub tile: TileId,
}

/// Outcome of step 4.
#[derive(Debug, Clone)]
pub struct Step4Result {
    /// The composed whole-application CSDF graph (Figure 3), with all
    /// computed capacities applied.
    pub csdf: CsdfGraph,
    /// The A/D source actor.
    pub source: ActorId,
    /// The Sink actor.
    pub sink: ActorId,
    /// Computed tile-side buffers (`B_1 … B_n`).
    pub buffers: Vec<ChannelBuffer>,
    /// Whether all QoS constraints hold.
    pub feasible: bool,
    /// Achieved source period, `(time_ps, iterations)` — divide to compare
    /// with the required period.
    pub achieved_period: (u64, u64),
    /// Measured end-to-end latency (only when a latency bound was given).
    pub latency_ps: Option<u64>,
    /// Feedback when infeasible (empty otherwise).
    pub feedback: Vec<Feedback>,
}

/// Composes the mapped application's CSDF graph and checks feasibility.
///
/// `working` must contain this mapping's tile reservations (buffer memory
/// is claimed on top of it and released again before returning — the caller
/// re-claims real buffers when it commits the mapping).
pub fn check_constraints(
    spec: &ApplicationSpec,
    platform: &Platform,
    mapping: &Mapping,
    working: &PlatformState,
    config: &Step4Config,
) -> Step4Result {
    let period = spec.qos.period_ps;
    let mut csdf = CsdfGraph::new();

    // --- Actors -----------------------------------------------------------
    // Source: the A/D streams samples continuously across the period
    // (Figure 3 draws it as ⟨1⟩ per sample), so it is a multi-phase actor —
    // one phase per token of its largest output channel, phase durations
    // spreading the period evenly. A single burst-firing source would
    // serialise production against NoC drainage and under-run the period.
    let source_phases = spec
        .graph
        .stream_channels()
        .filter(|(_, c)| c.src == Endpoint::StreamInput)
        .map(|(_, c)| c.tokens_per_period)
        .max()
        .unwrap_or(1)
        .max(1);
    let source = csdf.add_actor("A/D", bresenham(period, source_phases), 1);
    let noc_cycle = platform.noc().cycle_time_ps();
    let sink = csdf.add_actor("Sink", PhaseVec::single(1), noc_cycle);

    let mut process_actor = std::collections::BTreeMap::new();
    for (pid, _) in spec.graph.stream_processes() {
        let Some(assignment) = mapping.assignment(pid) else {
            return infeasible_result(
                csdf,
                source,
                sink,
                vec![Feedback::Infeasible {
                    detail: format!(
                        "process `{}` is unassigned in step 4",
                        spec.graph.process(pid).name
                    ),
                }],
            );
        };
        let implementation = &spec.library.impls_for(pid)[assignment.impl_index];
        let tile = platform.tile(assignment.tile);
        let actor = csdf.add_actor(
            implementation.name.clone(),
            implementation.wcet.clone(),
            tile.cycle_time_ps(),
        );
        process_actor.insert(pid, (actor, assignment));
    }

    // Utilisation pre-check with structured feedback: a sequential actor
    // busier than the period can never keep up; implicate its
    // implementation choice.
    for (pid, _) in spec.graph.stream_processes() {
        let (_, assignment) = process_actor[&pid];
        let implementation = &spec.library.impls_for(pid)[assignment.impl_index];
        let cycles = spec.cycles_per_period(pid, implementation);
        let busy_ps =
            implementation.wcet_per_period(cycles) * platform.tile(assignment.tile).cycle_time_ps();
        if busy_ps > period {
            return infeasible_result(
                csdf,
                source,
                sink,
                vec![
                    Feedback::Infeasible {
                        detail: format!(
                            "`{}` needs {busy_ps} ps per {period} ps period",
                            implementation.name
                        ),
                    },
                    Feedback::ExcludeImplementation {
                        process: pid,
                        impl_index: assignment.impl_index,
                    },
                ],
            );
        }
    }

    // --- Channels ---------------------------------------------------------
    // Tile-side input buffers (B_i) to size afterwards.
    let mut size_targets = Vec::new();
    let mut buffer_sites: Vec<(KpnChannelId, TileId, rtsm_dataflow::ChannelId)> = Vec::new();

    for (cid, ch) in spec.graph.stream_channels() {
        let (src_actor, src_rates) = match ch.src {
            Endpoint::Process(p) => {
                let (actor, assignment) = process_actor[&p];
                let implementation = &spec.library.impls_for(p)[assignment.impl_index];
                let port = spec
                    .graph
                    .outputs_of(p)
                    .iter()
                    .position(|c| *c == cid)
                    .expect("channel is an output of its producer");
                (actor, implementation.outputs[port].clone())
            }
            Endpoint::StreamInput => (source, bresenham(ch.tokens_per_period, source_phases)),
            Endpoint::StreamOutput => unreachable!("validated: StreamOutput never produces"),
        };
        let (dst_actor, dst_rates, dst_tile) = match ch.dst {
            Endpoint::Process(p) => {
                let (actor, assignment) = process_actor[&p];
                let implementation = &spec.library.impls_for(p)[assignment.impl_index];
                let port = spec
                    .graph
                    .inputs_of(p)
                    .iter()
                    .position(|c| *c == cid)
                    .expect("channel is an input of its consumer");
                (
                    actor,
                    implementation.inputs[port].clone(),
                    Some(assignment.tile),
                )
            }
            Endpoint::StreamOutput => (sink, PhaseVec::single(ch.tokens_per_period), None),
            Endpoint::StreamInput => unreachable!("validated: StreamInput never consumes"),
        };

        let routers: Vec<ActorId> = match mapping.route(cid) {
            Some(RouteBinding::Path(path)) => path
                .routers
                .iter()
                .map(|coord| {
                    csdf.add_actor(
                        format!("R{coord}"),
                        PhaseVec::single(platform.noc().hop_latency_cycles),
                        noc_cycle,
                    )
                })
                .collect(),
            Some(RouteBinding::SameTile) | None => Vec::new(),
        };

        // Producer-side NI buffer: double-buffered against the largest
        // production burst, so a producer can fill one burst while the NoC
        // drains the previous one.
        let ni_capacity = config.router_buffer_words.max(2 * src_rates.max());
        let one = PhaseVec::single(1);
        if routers.is_empty() {
            // Direct edge; capacity sized below (or sink x).
            let edge = csdf
                .add_channel_full(src_actor, dst_actor, src_rates, dst_rates, 0, None)
                .expect("rates validated against actor phases");
            match dst_tile {
                Some(tile) => {
                    size_targets.push(edge);
                    buffer_sites.push((cid, tile, edge));
                }
                None => {
                    let x = config
                        .sink_buffer_words
                        .unwrap_or(config.router_buffer_words.max(ch.tokens_per_period));
                    csdf.channel_mut(edge).capacity = Some(x.max(ch.tokens_per_period));
                }
            }
        } else {
            let first = csdf
                .add_channel_full(
                    src_actor,
                    routers[0],
                    src_rates,
                    one.clone(),
                    0,
                    Some(ni_capacity),
                )
                .expect("rates validated against actor phases");
            let _ = first;
            for pair in routers.windows(2) {
                csdf.add_channel_full(
                    pair[0],
                    pair[1],
                    one.clone(),
                    one.clone(),
                    0,
                    Some(config.router_buffer_words),
                )
                .expect("router rates are single-phase");
            }
            let last = csdf
                .add_channel_full(
                    *routers.last().expect("non-empty"),
                    dst_actor,
                    one.clone(),
                    dst_rates,
                    0,
                    None,
                )
                .expect("rates validated against actor phases");
            match dst_tile {
                Some(tile) => {
                    size_targets.push(last);
                    buffer_sites.push((cid, tile, last));
                }
                None => {
                    let x = config
                        .sink_buffer_words
                        .unwrap_or(config.router_buffer_words.max(ch.tokens_per_period));
                    csdf.channel_mut(last).capacity = Some(x.max(ch.tokens_per_period));
                }
            }
        }
    }

    // --- Buffer sizing (B_i) and throughput check --------------------------
    let sizing = match size_buffers(
        csdf.clone(),
        &BufferSizingConfig {
            source,
            period,
            channels: size_targets,
            max_sweeps: 3,
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            return infeasible_result(
                csdf,
                source,
                sink,
                vec![Feedback::Infeasible {
                    detail: format!("buffer sizing failed: {e}"),
                }],
            );
        }
    };
    rtsm_dataflow::apply_sizing(&mut csdf, &sizing);

    let mut buffers = Vec::new();
    for (cid, tile, edge) in &buffer_sites {
        let capacity = sizing.capacity_of(*edge).expect("edge was a sizing target");
        buffers.push(ChannelBuffer {
            channel: *cid,
            capacity_words: capacity,
            tile: *tile,
        });
    }

    // Buffer memory must fit the consuming tiles (4 bytes per word).
    let mut feedback = Vec::new();
    let mut probe = working.clone();
    for buffer in &buffers {
        let claim = TileClaim {
            slots: 0,
            memory_bytes: buffer.capacity_words * 4,
            cycles_per_second: 0,
            injection: 0,
            ejection: 0,
        };
        if probe.claim_tile(platform, buffer.tile, &claim).is_err() {
            feedback.push(Feedback::BufferOverflow {
                tile: buffer.tile,
                needed_bytes: buffer.capacity_words * 4,
            });
            if let Some((pid, _)) = spec
                .graph
                .stream_processes()
                .find(|(p, _)| mapping.assignment(*p).map(|a| a.tile) == Some(buffer.tile))
            {
                feedback.push(Feedback::ForbidTile {
                    process: pid,
                    tile: buffer.tile,
                });
            }
        }
    }

    let (throughput_ok, achieved) = match check_source_period(&csdf, source, period) {
        Ok((ok, tp)) => (ok, (tp.period, tp.iterations)),
        Err(e) => {
            feedback.push(Feedback::Infeasible {
                detail: format!("throughput analysis failed: {e}"),
            });
            (false, (u64::MAX, 1))
        }
    };
    if !throughput_ok && feedback.is_empty() {
        feedback.push(Feedback::Infeasible {
            detail: format!(
                "achieved period {}/{} exceeds required {period}",
                achieved.0, achieved.1
            ),
        });
    }

    // Latency bound, when specified.
    let mut latency_ps = None;
    if let Some(bound) = spec.qos.max_latency_ps {
        match iteration_latency(
            &csdf,
            source,
            sink,
            config.latency_window.0,
            config.latency_window.1,
        ) {
            Ok(lat) => {
                latency_ps = Some(lat);
                if lat > bound {
                    feedback.push(Feedback::Infeasible {
                        detail: format!("latency {lat} ps exceeds bound {bound} ps"),
                    });
                }
            }
            Err(e) => feedback.push(Feedback::Infeasible {
                detail: format!("latency analysis failed: {e}"),
            }),
        }
    }

    Step4Result {
        csdf,
        source,
        sink,
        buffers,
        feasible: feedback.is_empty(),
        achieved_period: achieved,
        latency_ps,
        feedback,
    }
}

/// Distributes `total` over `phases` values as evenly as integer division
/// allows (Bresenham spreading): the first `total % phases` positions get
/// one extra unit. Sums to `total` exactly.
fn bresenham(total: u64, phases: u64) -> PhaseVec {
    debug_assert!(phases >= 1);
    let q = total / phases;
    let r = total % phases;
    let values: Vec<u64> = (0..phases).map(|i| q + u64::from(i < r)).collect();
    PhaseVec::from_slice(&values)
}

fn infeasible_result(
    csdf: CsdfGraph,
    source: ActorId,
    sink: ActorId,
    feedback: Vec<Feedback>,
) -> Step4Result {
    Step4Result {
        csdf,
        source,
        sink,
        buffers: Vec::new(),
        feasible: false,
        achieved_period: (u64::MAX, 1),
        latency_ps: None,
        feedback,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::feedback::Constraints;
    use crate::step1::assign_implementations;
    use crate::step2::{improve_assignment, Step2Config};
    use crate::step3::route_channels;
    use rtsm_app::hiperlan2::{hiperlan2_receiver, Hiperlan2Mode};
    use rtsm_platform::paper::paper_platform;

    fn full_pipeline(
        mode: Hiperlan2Mode,
    ) -> (rtsm_app::ApplicationSpec, Platform, Mapping, PlatformState) {
        let spec = hiperlan2_receiver(mode);
        let platform = paper_platform();
        let constraints = Constraints::new();
        let out = assign_implementations(&spec, &platform, &platform.initial_state(), &constraints)
            .unwrap();
        let mut mapping = out.mapping;
        let mut working = out.working;
        improve_assignment(
            &spec,
            &platform,
            &constraints,
            &mut mapping,
            &mut working,
            &CostModel::HopCount,
            &Step2Config::default(),
        );
        route_channels(&spec, &platform, &mut mapping, &mut working).unwrap();
        (spec, platform, mapping, working)
    }

    #[test]
    fn paper_mapping_is_feasible() {
        let (spec, platform, mapping, working) = full_pipeline(Hiperlan2Mode::Qpsk34);
        let result = check_constraints(
            &spec,
            &platform,
            &mapping,
            &working,
            &Step4Config::default(),
        );
        assert!(result.feasible, "feedback: {:?}", result.feedback);
        // Achieved period = required period exactly (the A/D is the
        // bottleneck by construction).
        assert_eq!(
            result.achieved_period.0,
            4_000_000 * result.achieved_period.1
        );
    }

    #[test]
    fn figure3_structure_twelve_routers_four_buffers() {
        let (spec, platform, mapping, working) = full_pipeline(Hiperlan2Mode::Qpsk34);
        let result = check_constraints(
            &spec,
            &platform,
            &mapping,
            &working,
            &Step4Config::default(),
        );
        let routers = result
            .csdf
            .actors()
            .filter(|(_, a)| a.name.starts_with("R("))
            .count();
        assert_eq!(routers, 12, "Figure 3 has 12 router actors");
        assert_eq!(result.buffers.len(), 4, "B1..B4");
        for b in &result.buffers {
            assert!(b.capacity_words >= 1);
        }
        // 4 process actors + A/D + Sink + 12 routers.
        assert_eq!(result.csdf.n_actors(), 18);
    }

    #[test]
    fn all_modes_feasible_on_paper_platform() {
        for mode in Hiperlan2Mode::ALL {
            let (spec, platform, mapping, working) = full_pipeline(mode);
            let result = check_constraints(
                &spec,
                &platform,
                &mapping,
                &working,
                &Step4Config::default(),
            );
            assert!(
                result.feasible,
                "mode {}: {:?}",
                mode.name(),
                result.feedback
            );
        }
    }

    #[test]
    fn buffers_cover_consumer_bursts() {
        let (spec, platform, mapping, working) = full_pipeline(Hiperlan2Mode::Qpsk34);
        let result = check_constraints(
            &spec,
            &platform,
            &mapping,
            &working,
            &Step4Config::default(),
        );
        for buffer in &result.buffers {
            let ch = spec.graph.channel(buffer.channel);
            if let Endpoint::Process(p) = ch.dst {
                let a = mapping.assignment(p).unwrap();
                let implementation = &spec.library.impls_for(p)[a.impl_index];
                let port = spec
                    .graph
                    .inputs_of(p)
                    .iter()
                    .position(|c| *c == buffer.channel)
                    .unwrap();
                assert!(
                    buffer.capacity_words >= implementation.inputs[port].max(),
                    "buffer below burst size"
                );
            }
        }
    }

    #[test]
    fn unassigned_process_is_infeasible_with_feedback() {
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let result = check_constraints(
            &spec,
            &platform,
            &Mapping::new(),
            &platform.initial_state(),
            &Step4Config::default(),
        );
        assert!(!result.feasible);
        assert!(!result.feedback.is_empty());
    }

    #[test]
    fn overloaded_implementation_yields_exclusion_feedback() {
        // Force Inverse OFDM onto an ARM (impossible at 200 MHz): step 4
        // must produce ExcludeImplementation feedback.
        let spec = hiperlan2_receiver(Hiperlan2Mode::Qpsk34);
        let platform = paper_platform();
        let mut mapping = Mapping::new();
        let p = |n: &str| spec.graph.process_by_name(n).unwrap();
        let t = |n: &str| platform.tile_by_name(n).unwrap();
        mapping.assign(p("Prefix removal"), 0, t("ARM1"));
        mapping.assign(p("Freq. off. correction"), 1, t("MONTIUM1"));
        mapping.assign(p("Inverse OFDM"), 0, t("ARM2")); // ARM impl: 4370 cc
        mapping.assign(p("Remainder"), 1, t("MONTIUM2"));
        let result = check_constraints(
            &spec,
            &platform,
            &mapping,
            &platform.initial_state(),
            &Step4Config::default(),
        );
        assert!(!result.feasible);
        assert!(result.feedback.iter().any(|f| matches!(
            f,
            Feedback::ExcludeImplementation { process, .. }
                if *process == p("Inverse OFDM")
        )));
    }

    #[test]
    fn latency_bound_checked_when_present() {
        let (mut spec, platform, mapping, working) = full_pipeline(Hiperlan2Mode::Qpsk34);
        // Absurdly tight bound: 1 ps.
        spec.qos.max_latency_ps = Some(1);
        let result = check_constraints(
            &spec,
            &platform,
            &mapping,
            &working,
            &Step4Config::default(),
        );
        assert!(!result.feasible);
        assert!(result.latency_ps.is_some());
        // Generous bound: 10 periods.
        spec.qos.max_latency_ps = Some(40_000_000);
        let result = check_constraints(
            &spec,
            &platform,
            &mapping,
            &working,
            &Step4Config::default(),
        );
        assert!(result.feasible, "feedback: {:?}", result.feedback);
    }
}
